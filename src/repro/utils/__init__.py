"""Shared utilities: seeded randomness and Zipf/Heaps law math.

These helpers keep every stochastic component of the library
deterministic given an explicit seed, and provide the power-law
machinery the synthetic corpus generator and its validation tests
are built on.
"""

from repro.utils.rand import derive_rng, derive_seed, ensure_rng
from repro.utils.zipf import (
    fit_heaps,
    fit_zipf,
    heaps_vocabulary_size,
    zipf_cdf,
    zipf_probabilities,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "ensure_rng",
    "fit_heaps",
    "fit_zipf",
    "heaps_vocabulary_size",
    "zipf_cdf",
    "zipf_probabilities",
]
