"""Deterministic randomness plumbing.

Every stochastic component of the library accepts either a seed or a
:class:`numpy.random.Generator`.  The helpers here normalise between the
two and derive independent child streams from a parent stream, so that
an experiment seeded once produces the same corpora, the same query
sequences, and the same learning curves on every run.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a
    new generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator, or None, got {type(rng).__name__}")


def derive_seed(seed: int, *labels: str | int) -> int:
    """Derive a stable child seed from ``seed`` and a label path.

    The derivation hashes the parent seed together with the labels, so
    sibling components (e.g. per-database samplers in one experiment)
    receive independent, reproducible streams regardless of the order in
    which they are constructed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Return a generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(seed, *labels))
