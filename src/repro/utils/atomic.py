"""Crash-safe file writes.

The durability primitive under every on-disk artifact the library
produces (language models, store manifests, sampler checkpoints):
write the full content to a temporary file in the *same directory*,
``fsync`` it, then atomically :func:`os.replace` it over the target.
A crash at any instant leaves either the old file or the new file —
never a torn mixture — and a failed write never clobbers the target.

These functions are re-exported by :mod:`repro.store`, which owns the
public persistence API; they live here (the dependency-free bottom
layer) so :mod:`repro.lm.io` can use them without a package cycle.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]


def fsync_directory(path: str | Path) -> None:
    """Flush a directory entry to disk (best effort).

    After :func:`os.replace`, the *rename itself* lives in the
    directory; fsyncing it makes the publish durable across power
    loss.  Platforms that cannot fsync a directory are silently
    skipped — atomicity (old-or-new, never torn) holds regardless.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically publish ``data`` at ``path`` (temp file + rename).

    The temporary file is created next to the target so the final
    :func:`os.replace` stays within one filesystem (a cross-device
    rename is not atomic).  On any failure the temporary file is
    removed and the target is left exactly as it was.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    fsync_directory(directory)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically publish ``text`` at ``path`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
