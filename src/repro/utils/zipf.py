"""Zipf and Heaps law utilities.

The paper's analysis leans on two empirical laws of text:

* **Zipf's law** — the frequency of the *r*-th most frequent term is
  proportional to ``1 / r**s`` (s near 1).  The paper cites it to argue
  that the important vocabulary of a database is frequent and therefore
  reachable by sampling, and to justify comparing term *rankings* rather
  than raw frequencies (Section 4.3.3).
* **Heaps' law** — the vocabulary of a text of ``n`` tokens grows like
  ``k * n**beta`` (beta typically 0.4-0.6).  The paper cites it to argue
  that database *size* cannot be estimated by sampling (Section 3).

The synthetic corpus generator uses :func:`zipf_probabilities` to shape
term distributions, and the test suite uses :func:`fit_zipf` and
:func:`fit_heaps` to verify that generated corpora actually obey both
laws, which is what makes the corpus substitution defensible.
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(size: int, exponent: float = 1.0) -> np.ndarray:
    """Return a normalised Zipfian probability vector of ``size`` ranks.

    ``p[r] ∝ 1 / (r + 1) ** exponent`` for rank ``r`` starting at 0.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def zipf_cdf(size: int, exponent: float = 1.0) -> np.ndarray:
    """Return the cumulative distribution of :func:`zipf_probabilities`.

    Useful for fast inverse-transform sampling with ``np.searchsorted``.
    """
    return np.cumsum(zipf_probabilities(size, exponent))


def heaps_vocabulary_size(tokens: int, k: float = 30.0, beta: float = 0.5) -> int:
    """Predicted vocabulary size for a text of ``tokens`` tokens."""
    if tokens < 0:
        raise ValueError(f"tokens must be non-negative, got {tokens}")
    if tokens == 0:
        return 0
    return max(1, int(round(k * tokens**beta)))


def fit_zipf(frequencies: np.ndarray, skip_top: int = 0) -> tuple[float, float]:
    """Fit a Zipf exponent to observed term ``frequencies``.

    Frequencies are sorted descending, optionally skipping the very top
    ranks (function words deviate from the power law), and a straight
    line is fit to log-frequency vs. log-rank.  Returns ``(exponent,
    r_squared)`` where the exponent is the *negated* slope, so a classic
    Zipfian text yields an exponent near 1.
    """
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    freqs = freqs[skip_top:]
    freqs = freqs[freqs > 0]
    if freqs.size < 3:
        raise ValueError("need at least 3 positive frequencies to fit Zipf's law")
    log_rank = np.log(np.arange(1, freqs.size + 1, dtype=np.float64) + skip_top)
    log_freq = np.log(freqs)
    slope, intercept = np.polyfit(log_rank, log_freq, 1)
    predicted = slope * log_rank + intercept
    residual = np.sum((log_freq - predicted) ** 2)
    total = np.sum((log_freq - log_freq.mean()) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return float(-slope), float(r_squared)


def fit_heaps(token_counts: np.ndarray, vocab_sizes: np.ndarray) -> tuple[float, float]:
    """Fit Heaps' law ``V = k * n**beta`` to a vocabulary growth curve.

    ``token_counts`` and ``vocab_sizes`` are parallel arrays of running
    token totals and distinct-term totals.  Returns ``(k, beta)``.
    """
    tokens = np.asarray(token_counts, dtype=np.float64)
    vocab = np.asarray(vocab_sizes, dtype=np.float64)
    if tokens.shape != vocab.shape:
        raise ValueError("token_counts and vocab_sizes must have the same shape")
    mask = (tokens > 0) & (vocab > 0)
    if mask.sum() < 3:
        raise ValueError("need at least 3 positive points to fit Heaps' law")
    slope, intercept = np.polyfit(np.log(tokens[mask]), np.log(vocab[mask]), 1)
    return float(np.exp(intercept)), float(slope)
