"""Latency statistics: percentiles over recorded samples.

Shared by the serve-bench harness (:mod:`repro.serving.bench`) and the
gateway load generator (:mod:`repro.gateway.loadgen`): both record the
wall time of every individual operation and summarize the distribution
as p50/p95/p99, because a serving system is judged by its tail, not
its mean — one overloaded queue shows up in p99 long before it moves
the average.

Percentiles use linear interpolation between closest ranks (the same
convention as ``numpy.percentile``'s default), computed in pure python
so a handful of samples never pays an array conversion.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["latency_summary", "percentile"]

#: The percentiles every latency report carries, in report order.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation).

    ``q`` is in [0, 100].  Raises :class:`ValueError` on an empty
    sample set — a percentile of nothing is a bug upstream, not 0.0.
    """
    if not samples:
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def latency_summary(samples: Sequence[float]) -> Mapping[str, float]:
    """p50/p95/p99 + mean/min/max of per-operation latencies, in seconds.

    Keys: ``count``, ``mean``, ``min``, ``max``, ``p50``, ``p95``,
    ``p99``.  Empty input yields a zeroed summary (``count`` 0) so
    callers reporting a level that completed nothing stay uniform.
    """
    if not samples:
        return {
            "count": 0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            **{f"p{int(q)}": 0.0 for q in REPORT_PERCENTILES},
        }
    summary = {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }
    for q in REPORT_PERCENTILES:
        summary[f"p{int(q)}"] = percentile(samples, q)
    return summary
