"""The GlOSS family of database selection algorithms.

GlOSS (Gravano, García-Molina & Tomasic — the "Glossary-of-Servers
Server") estimates, from per-database term statistics, how *good* each
database is for a query:

* **bGlOSS** (boolean model): under a term-independence assumption, the
  expected number of documents in database ``i`` matching *all* query
  terms is ``|db_i| · Π_t (df_t / |db_i|)``.
* **vGlOSS** (vector-space model, the ``Max(0)`` estimator): the
  goodness of a database is the total similarity mass its documents are
  expected to contribute, estimated as ``Σ_t df_t · avg_w(t)`` where we
  use the term's average within-document frequency as its average
  weight.

Both consume nothing beyond df/ctf and a document count — the document
count of a *learned* model being the number of documents sampled, the
same sample-size scaling argument the paper makes in Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dbselect.base import DatabaseRanking, analyze_query, finish_ranking
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class GlossParameters:
    """The GlOSS selectors' parameter dataclass (shared registry idiom).

    Both GlOSS estimators are parameter-free — the class exists so
    :func:`~repro.dbselect.registry.make_selector` can treat every
    selector uniformly (a params dataclass per algorithm family).
    """


class BGlossSelector:
    """bGlOSS: expected number of documents matching all query terms.

    Parameters
    ----------
    params:
        Accepted for registry uniformity (GlOSS has no constants).
    analyzer:
        Query analysis pipeline (raw tokens if ``None``).
    """

    def __init__(
        self,
        params: GlossParameters | None = None,
        *,
        analyzer: Analyzer | None = None,
    ) -> None:
        self.params = params or GlossParameters()
        self.analyzer = analyzer

    def rank(self, query: str, models: Mapping[str, LanguageModel]) -> DatabaseRanking:
        """Rank ``models`` for ``query`` by estimated conjunctive matches."""
        if not models:
            raise ValueError("no database models to rank")
        terms = analyze_query(query, self.analyzer)
        scores: dict[str, float] = {}
        for name, model in models.items():
            num_docs = model.documents_seen
            if not terms or num_docs == 0:
                scores[name] = 0.0
                continue
            estimate = float(num_docs)
            for term in terms:
                estimate *= model.df(term) / num_docs
            scores[name] = estimate
        return finish_ranking(query, scores)


class VGlossSelector:
    """vGlOSS Max(0): total expected similarity mass for the query.

    Parameters
    ----------
    params:
        Accepted for registry uniformity (GlOSS has no constants).
    analyzer:
        Query analysis pipeline (raw tokens if ``None``).
    """

    def __init__(
        self,
        params: GlossParameters | None = None,
        *,
        analyzer: Analyzer | None = None,
    ) -> None:
        self.params = params or GlossParameters()
        self.analyzer = analyzer

    def rank(self, query: str, models: Mapping[str, LanguageModel]) -> DatabaseRanking:
        """Rank ``models`` for ``query`` by ``Σ_t df_t · avg_tf_t``."""
        if not models:
            raise ValueError("no database models to rank")
        terms = analyze_query(query, self.analyzer)
        scores: dict[str, float] = {}
        for name, model in models.items():
            scores[name] = sum(model.df(term) * model.avg_tf(term) for term in terms)
        return finish_ranking(query, scores)
