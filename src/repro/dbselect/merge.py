"""Result merging: one ranked list from many databases' results.

Database selection is only half of federated search: once the selected
databases have each run the query, their per-database document scores
must be merged into a single ranking, even though every database scored
against its own collection statistics.  Three standard mergers:

* :class:`CoriMerger` — the CORI merge formula (Callan et al.): min-max
  normalise document scores within each database and collection scores
  across databases, then weight documents by their database's quality:
  ``D'' = (D' + 0.4 · D' · C') / 1.4``.
* :class:`RawScoreMerger` — trust raw scores across databases (the
  naive baseline; fails when databases' score scales differ).
* :class:`RoundRobinMerger` — interleave the per-database lists in
  database-rank order (scale-free but quality-blind).

All mergers share two rules.  **Participation**: only databases present
in the ``ranking`` argument contribute results — a result list from a
database the selector never ranked (stale fan-out, a misrouted reply)
is dropped rather than merged unscored.  **Deduplication**: a document
returned by several databases (overlapping collections replicate
content across servers) appears once in the merged list, keeping its
best-scoring provenance, so copies never eat top-``n`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro.dbselect.base import DatabaseRanking
from repro.index.search import SearchResult


@dataclass(frozen=True)
class MergedResult:
    """One document in the merged ranking, with provenance."""

    doc_id: str
    database: str
    score: float


class ResultMerger(Protocol):
    """Merges per-database result lists under a database ranking."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        """Return the top ``n`` merged results."""
        ...  # pragma: no cover - protocol


def _dedupe_best(merged: Sequence[MergedResult]) -> list[MergedResult]:
    """Keep the best-scoring occurrence of each ``doc_id``.

    ``merged`` must already be sorted best-first (score desc, then the
    deterministic tie-break), so the first occurrence of a document is
    the provenance to keep.
    """
    seen: set[str] = set()
    unique: list[MergedResult] = []
    for item in merged:
        if item.doc_id in seen:
            continue
        seen.add(item.doc_id)
        unique.append(item)
    return unique


def _minmax(values: Sequence[float]) -> list[float]:
    low = min(values)
    high = max(values)
    if high == low:
        return [1.0 for _ in values]
    return [(value - low) / (high - low) for value in values]


class CoriMerger:
    """The CORI merge: document score weighted by collection score."""

    def __init__(self, collection_weight: float = 0.4) -> None:
        if collection_weight < 0:
            raise ValueError("collection_weight must be non-negative")
        self.collection_weight = collection_weight

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        """Normalise within-database and across-database, then combine."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        collection_scores = {entry.name: entry.score for entry in ranking.entries}
        participating = [name for name in results if name in collection_scores and results[name]]
        if not participating:
            return []
        normalised_collection = dict(
            zip(participating, _minmax([collection_scores[name] for name in participating]))
        )
        merged: list[MergedResult] = []
        weight = self.collection_weight
        for name in participating:
            doc_scores = _minmax([result.score for result in results[name]])
            c_norm = normalised_collection[name]
            for result, d_norm in zip(results[name], doc_scores):
                final = (d_norm + weight * d_norm * c_norm) / (1.0 + weight)
                merged.append(MergedResult(doc_id=result.doc_id, database=name, score=final))
        merged.sort(key=lambda item: (-item.score, item.database, item.doc_id))
        return _dedupe_best(merged)[:n]


class RawScoreMerger:
    """Merge by raw scores — correct only if scales are comparable."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        ranked = set(ranking.names)
        merged = [
            MergedResult(doc_id=result.doc_id, database=name, score=result.score)
            for name, result_list in results.items()
            if name in ranked
            for result in result_list
        ]
        merged.sort(key=lambda item: (-item.score, item.database, item.doc_id))
        return _dedupe_best(merged)[:n]


class RoundRobinMerger:
    """Interleave per-database lists in database-rank order."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        ordered = [name for name in ranking.names if results.get(name)]
        merged: list[MergedResult] = []
        seen: set[str] = set()
        depth = 0
        while len(merged) < n:
            advanced = False
            for position, name in enumerate(ordered):
                result_list = results[name]
                if depth >= len(result_list):
                    continue
                advanced = True
                result = result_list[depth]
                if result.doc_id in seen:
                    # A copy already emitted from a better-ranked slot;
                    # interleaving continues without burning a slot on it.
                    continue
                seen.add(result.doc_id)
                # Score encodes (depth, db-rank) so the list order is
                # reconstructible from scores alone.
                merged.append(
                    MergedResult(
                        doc_id=result.doc_id,
                        database=name,
                        score=-(depth * len(ordered) + position),
                    )
                )
                if len(merged) == n:
                    break
            if not advanced:
                break
            depth += 1
        return merged
