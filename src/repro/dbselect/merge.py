"""Result merging: one ranked list from many databases' results.

Database selection is only half of federated search: once the selected
databases have each run the query, their per-database document scores
must be merged into a single ranking, even though every database scored
against its own collection statistics.  Three standard mergers:

* :class:`CoriMerger` — the CORI merge formula (Callan et al.): min-max
  normalise document scores within each database and collection scores
  across databases, then weight documents by their database's quality:
  ``D'' = (D' + 0.4 · D' · C') / 1.4``.
* :class:`RawScoreMerger` — trust raw scores across databases (the
  naive baseline; fails when databases' score scales differ).
* :class:`RoundRobinMerger` — interleave the per-database lists in
  database-rank order (scale-free but quality-blind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro.dbselect.base import DatabaseRanking
from repro.index.search import SearchResult


@dataclass(frozen=True)
class MergedResult:
    """One document in the merged ranking, with provenance."""

    doc_id: str
    database: str
    score: float


class ResultMerger(Protocol):
    """Merges per-database result lists under a database ranking."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        """Return the top ``n`` merged results."""
        ...  # pragma: no cover - protocol


def _minmax(values: Sequence[float]) -> list[float]:
    low = min(values)
    high = max(values)
    if high == low:
        return [1.0 for _ in values]
    return [(value - low) / (high - low) for value in values]


class CoriMerger:
    """The CORI merge: document score weighted by collection score."""

    def __init__(self, collection_weight: float = 0.4) -> None:
        if collection_weight < 0:
            raise ValueError("collection_weight must be non-negative")
        self.collection_weight = collection_weight

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        """Normalise within-database and across-database, then combine."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        collection_scores = {entry.name: entry.score for entry in ranking.entries}
        participating = [name for name in results if name in collection_scores and results[name]]
        if not participating:
            return []
        normalised_collection = dict(
            zip(participating, _minmax([collection_scores[name] for name in participating]))
        )
        merged: list[MergedResult] = []
        weight = self.collection_weight
        for name in participating:
            doc_scores = _minmax([result.score for result in results[name]])
            c_norm = normalised_collection[name]
            for result, d_norm in zip(results[name], doc_scores):
                final = (d_norm + weight * d_norm * c_norm) / (1.0 + weight)
                merged.append(MergedResult(doc_id=result.doc_id, database=name, score=final))
        merged.sort(key=lambda item: (-item.score, item.database, item.doc_id))
        return merged[:n]


class RawScoreMerger:
    """Merge by raw scores — correct only if scales are comparable."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        merged = [
            MergedResult(doc_id=result.doc_id, database=name, score=result.score)
            for name, result_list in results.items()
            for result in result_list
        ]
        merged.sort(key=lambda item: (-item.score, item.database, item.doc_id))
        return merged[:n]


class RoundRobinMerger:
    """Interleave per-database lists in database-rank order."""

    def merge(
        self,
        ranking: DatabaseRanking,
        results: Mapping[str, Sequence[SearchResult]],
        n: int,
    ) -> list[MergedResult]:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        ordered = [name for name in ranking.names if results.get(name)]
        merged: list[MergedResult] = []
        depth = 0
        while len(merged) < n:
            emitted = False
            for position, name in enumerate(ordered):
                result_list = results[name]
                if depth < len(result_list):
                    result = result_list[depth]
                    # Score encodes (depth, db-rank) so the list order is
                    # reconstructible from scores alone.
                    merged.append(
                        MergedResult(
                            doc_id=result.doc_id,
                            database=name,
                            score=-(depth * len(ordered) + position),
                        )
                    )
                    emitted = True
                    if len(merged) == n:
                        break
            if not emitted:
                break
            depth += 1
        return merged
