"""Kullback-Leibler divergence database ranking.

A language-modeling selector that post-dates the paper but became a
standard baseline (e.g. Xu & Croft, SIGIR 1999; Si et al., CIKM 2002):
score database ``i`` by the query likelihood under the database's
smoothed unigram model,

.. code-block:: text

    score(q, i) = Σ_t log( λ · p(t | db_i) + (1 - λ) · p(t | G) )

where ``p(t | db_i) = ctf_t / tokens_i`` and ``G`` is the union of all
database models (the background).  Ranking by query log-likelihood is
rank-equivalent to ranking by negative KL divergence from the query's
empirical distribution, hence the name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.dbselect.base import DatabaseRanking, analyze_query, finish_ranking
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class KlParameters:
    """The KL selector's constants, in the shared parameter-dataclass idiom.

    Parameters
    ----------
    smoothing:
        ``λ`` — the mixture weight of the database model against the
        background model (Jelinek-Mercer smoothing).
    """

    smoothing: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing < 1.0:
            raise ValueError("smoothing must be in (0, 1)")


class KlSelector:
    """Smoothed query-likelihood (negative-KL) ranking.

    Parameters
    ----------
    params:
        The selector constants (default :class:`KlParameters`).
    smoothing:
        Legacy keyword form of ``params.smoothing``; still accepted so
        pre-registry call sites keep working (mutually exclusive with
        ``params``).
    analyzer:
        Query analysis pipeline (raw tokens if ``None``).
    """

    def __init__(
        self,
        params: KlParameters | None = None,
        *,
        smoothing: float | None = None,
        analyzer: Analyzer | None = None,
    ) -> None:
        if params is not None and smoothing is not None:
            raise ValueError("pass params or smoothing, not both")
        if params is None:
            params = KlParameters() if smoothing is None else KlParameters(smoothing)
        self.params = params
        self.analyzer = analyzer

    @property
    def smoothing(self) -> float:
        """``λ``, the database-vs-background mixture weight."""
        return self.params.smoothing

    def rank(self, query: str, models: Mapping[str, LanguageModel]) -> DatabaseRanking:
        """Rank ``models`` for ``query`` by smoothed query likelihood."""
        if not models:
            raise ValueError("no database models to rank")
        terms = analyze_query(query, self.analyzer)
        background_tokens = sum(model.tokens_seen for model in models.values())
        background_ctf = {
            term: sum(model.ctf(term) for model in models.values()) for term in set(terms)
        }
        floor = 1.0 / max(background_tokens, 1) / 10.0
        scores: dict[str, float] = {}
        for name, model in models.items():
            if not terms:
                scores[name] = 0.0
                continue
            tokens = model.tokens_seen or 1
            log_likelihood = 0.0
            for term in terms:
                p_db = model.ctf(term) / tokens
                p_background = (
                    background_ctf[term] / background_tokens if background_tokens else 0.0
                )
                probability = (
                    self.smoothing * p_db + (1.0 - self.smoothing) * p_background
                )
                log_likelihood += math.log(max(probability, floor))
            scores[name] = log_likelihood
        return finish_ranking(query, scores)
