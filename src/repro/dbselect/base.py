"""Common types for database selection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class RankedDatabase:
    """One entry of a database ranking."""

    name: str
    score: float


@dataclass(frozen=True)
class DatabaseRanking:
    """A full ranking of databases for one query."""

    query: str
    entries: tuple[RankedDatabase, ...]

    @property
    def names(self) -> list[str]:
        """Database names in rank order."""
        return [entry.name for entry in self.entries]

    def top(self, n: int) -> list[str]:
        """The top ``n`` database names."""
        return self.names[:n]


class DatabaseSelector(Protocol):
    """Ranks databases, given per-database language models."""

    def rank(
        self, query: str, models: Mapping[str, LanguageModel]
    ) -> DatabaseRanking:
        """Rank the databases in ``models`` for ``query``."""
        ...  # pragma: no cover - protocol


def analyze_query(query: str, analyzer: Analyzer | None) -> Sequence[str]:
    """Analyze a query with ``analyzer`` (raw tokens if ``None``)."""
    return (analyzer or Analyzer.raw()).analyze(query)


def finish_ranking(query: str, scores: Mapping[str, float]) -> DatabaseRanking:
    """Build a deterministic ranking: score desc, then name asc."""
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return DatabaseRanking(
        query=query,
        entries=tuple(RankedDatabase(name=name, score=score) for name, score in ordered),
    )
