"""Selection-quality evaluation: the R_n methodology.

Following Gravano et al. and the CORI evaluation tradition, a database
ranking is scored against the *optimal* ranking for the query:

.. code-block:: text

    R_n = Σ_{i ≤ n} rel(σ(i))  /  Σ_{i ≤ n} rel(σ*(i))

where ``rel(d)`` is the number of relevant documents in database ``d``,
``σ`` the ranking under evaluation, and ``σ*`` the ranking by true
relevant-document counts.  ``R_n = 1`` means the top-``n`` cut is as
good as any top-``n`` cut could be.

The synthetic corpora carry a topical relevance oracle: a document is
relevant to a topic-``t`` query iff it was generated with primary topic
``t`` (see :mod:`repro.synth.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dbselect.base import DatabaseRanking


def recall_at_n(
    ranking: DatabaseRanking, relevant_counts: Mapping[str, int], n: int
) -> float:
    """The R_n score of ``ranking`` given true per-database relevance.

    Databases missing from ``relevant_counts`` contribute zero relevant
    documents.  If no database holds any relevant document, R_n is
    defined as 1.0 (every ranking is trivially optimal).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    optimal = sorted(relevant_counts.values(), reverse=True)[:n]
    best = sum(optimal)
    if best == 0:
        return 1.0
    achieved = sum(relevant_counts.get(name, 0) for name in ranking.top(n))
    return achieved / best


@dataclass(frozen=True)
class SelectionEvaluation:
    """Mean R_n over a query set, for a sweep of n values."""

    label: str
    num_queries: int
    mean_recall: dict[int, float]

    def as_row(self) -> dict[str, object]:
        """Flatten for tabular reporting."""
        row: dict[str, object] = {"label": self.label, "queries": self.num_queries}
        for n, value in sorted(self.mean_recall.items()):
            row[f"R@{n}"] = round(value, 4)
        return row


def evaluate_rankings(
    label: str,
    rankings: Sequence[DatabaseRanking],
    relevance: Sequence[Mapping[str, int]],
    n_values: Sequence[int] = (1, 2, 5, 10),
) -> SelectionEvaluation:
    """Average :func:`recall_at_n` over parallel rankings/relevance maps."""
    if len(rankings) != len(relevance):
        raise ValueError("rankings and relevance must be parallel")
    if not rankings:
        raise ValueError("need at least one ranking to evaluate")
    mean_recall: dict[int, float] = {}
    for n in n_values:
        total = sum(
            recall_at_n(ranking, counts, n)
            for ranking, counts in zip(rankings, relevance)
        )
        mean_recall[n] = total / len(rankings)
    return SelectionEvaluation(
        label=label, num_queries=len(rankings), mean_recall=mean_recall
    )
