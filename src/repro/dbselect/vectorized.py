"""Vectorized CORI: the database-selection hot path, compiled to numpy.

The scalar :class:`~repro.dbselect.cori.CoriSelector` re-walks every
model for every query — O(databases² · terms) per query because the
``cf`` statistic (how many databases contain a term) is itself a scan.
A selection *service* answers the same formula over the same models
thousands of times between model refreshes, so :class:`CoriScorer`
compiles the models once per model epoch into term-statistics arrays:

* ``df`` — a ``databases × vocabulary`` document-frequency matrix;
* ``cf`` — per-term database frequency (one ``(df > 0).sum`` at
  compile time);
* ``cw`` — per-database token counts and their mean.

Scoring a query is then a gather of the query terms' columns plus a
handful of array operations, independent of how the models are stored.
The formula constants come from the same
:class:`~repro.dbselect.cori.CoriParameters` the scalar selector uses,
and ``tests/test_cori_scorer.py`` sweeps random synthetic model sets
asserting both implementations produce identical rankings with scores
within 1e-9 — the speedup is never bought with changed results.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.dbselect.base import DatabaseRanking, analyze_query, finish_ranking
from repro.dbselect.cori import CoriParameters, mean_collection_weight
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer

__all__ = ["CoriScorer"]


class CoriScorer:
    """CORI ranking over models compiled to term-statistics matrices.

    Construction is the per-model-epoch compile step; :meth:`rank` (and
    the allocation-light :meth:`score_terms`) are the per-query hot
    path.  A scorer is immutable after construction — when models
    change, compile a fresh scorer (the serving frontend does this
    whenever the service's model epoch moves).

    Parameters
    ----------
    models:
        Name → language model, as handed to any selector's ``rank``.
    params:
        Belief-formula constants (default :class:`CoriParameters`),
        shared with the scalar :class:`~repro.dbselect.cori.CoriSelector`.
    analyzer:
        Query analysis pipeline (raw tokens if ``None``).
    """

    def __init__(
        self,
        models: Mapping[str, LanguageModel],
        params: CoriParameters | None = None,
        *,
        analyzer: Analyzer | None = None,
    ) -> None:
        if not models:
            raise ValueError("no database models to rank")
        self.params = params or CoriParameters()
        self.analyzer = analyzer
        self.names: tuple[str, ...] = tuple(models)
        self.num_databases = len(models)
        mean_cw = mean_collection_weight(models)
        # Column index per known term, over the union vocabulary.
        self._column: dict[str, int] = {}
        for model in models.values():
            for term in model:
                if term not in self._column:
                    self._column[term] = len(self._column)
        df = np.zeros((self.num_databases, len(self._column)), dtype=np.float64)
        for row, model in enumerate(models.values()):
            for stats in model.items():
                df[row, self._column[stats.term]] = stats.df
        self._df = df
        self._cf = (df > 0).sum(axis=0).astype(np.float64)
        cw = np.array(
            [model.tokens_seen or 1 for model in models.values()], dtype=np.float64
        )
        # The T-component denominator's per-database constant,
        # df_base + df_scale * cw / mean_cw, grouped exactly as the
        # scalar selector computes it so results stay bit-comparable.
        self._t_denominator_base = (
            self.params.df_base + self.params.df_scale * cw / mean_cw
        )[:, np.newaxis]
        self._i_scale = 1.0 / math.log(self.num_databases + 1.0)
        self._i_numerator = self.num_databases + 0.5

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct terms across all compiled models."""
        return len(self._column)

    def score_terms(self, terms: Sequence[str]) -> np.ndarray:
        """Scores for every database given pre-analyzed query ``terms``.

        Returns a float64 vector aligned with :attr:`names`.  Terms no
        model contains contribute the default belief to every database,
        exactly like the scalar path's ``df == 0 or cf == 0`` branch.
        """
        params = self.params
        if not terms:
            return np.zeros(self.num_databases, dtype=np.float64)
        columns = [self._column.get(term, -1) for term in terms]
        known = [column for column in columns if column >= 0]
        if not known:
            return np.full(self.num_databases, params.default_belief, dtype=np.float64)
        df = self._df[:, known]
        t_component = df / (df + self._t_denominator_base)
        i_component = np.log(self._i_numerator / self._cf[known]) * self._i_scale
        beliefs = np.where(
            df > 0,
            params.default_belief
            + (1.0 - params.default_belief) * t_component * i_component,
            params.default_belief,
        )
        # Unknown terms contribute default_belief to every database;
        # fold them in as a constant instead of materializing columns.
        unknown = len(columns) - len(known)
        total = beliefs.sum(axis=1) + params.default_belief * unknown
        return total / len(columns)

    def rank(
        self, query: str, models: Mapping[str, LanguageModel] | None = None
    ) -> DatabaseRanking:
        """Rank the compiled databases for ``query``.

        ``models`` is accepted (and ignored) so the scorer satisfies the
        :class:`~repro.dbselect.base.DatabaseSelector` protocol and can
        replace a scalar selector anywhere — its models are the ones it
        was compiled from.
        """
        terms = analyze_query(query, self.analyzer)
        return self.rank_terms(query, terms)

    def rank_terms(self, query: str, terms: Sequence[str]) -> DatabaseRanking:
        """Rank using pre-analyzed ``terms`` (the cached-analysis path)."""
        scores = self.score_terms(terms)
        return finish_ranking(
            query, {name: float(score) for name, score in zip(self.names, scores)}
        )
