"""The selector registry: one construction surface for every algorithm.

The five selection algorithms grew up with divergent constructor
signatures — CORI takes belief constants, KL a smoothing weight, GlOSS
nothing, ReDDE a sample corpus — which forced every harness (CLI,
serving, experiments) to hand-wire each class.  The registry unifies
them behind two idioms:

* every algorithm family has a **frozen parameter dataclass**
  (:class:`~repro.dbselect.cori.CoriParameters`,
  :class:`~repro.dbselect.kl.KlParameters`,
  :class:`~repro.dbselect.gloss.GlossParameters`,
  :class:`~repro.dbselect.redde.ReddeParameters`) validating its
  constants in ``__post_init__``;
* :func:`make_selector` constructs any selector from its registry name
  and an optional params instance, type-checked against the family.

Direct construction keeps working — the factory is sugar over the
constructors, not a replacement — and equivalence is pinned by tests:
``make_selector(name, params)`` ranks identically to building the
class by hand.
"""

from __future__ import annotations

from typing import Mapping

from repro.corpus.document import Document
from repro.dbselect.base import DatabaseSelector
from repro.dbselect.cori import CoriParameters, CoriSelector
from repro.dbselect.gloss import BGlossSelector, GlossParameters, VGlossSelector
from repro.dbselect.kl import KlParameters, KlSelector
from repro.dbselect.redde import ReddeParameters, ReddeSelector
from repro.text.analyzer import Analyzer

__all__ = ["SELECTOR_REGISTRY", "SelectorParameters", "make_selector", "selector_names"]

#: Any selector family's parameter dataclass.
SelectorParameters = CoriParameters | KlParameters | GlossParameters | ReddeParameters

#: Registry name → (selector class, its parameter dataclass).
SELECTOR_REGISTRY: dict[str, tuple[type, type]] = {
    "cori": (CoriSelector, CoriParameters),
    "kl": (KlSelector, KlParameters),
    "bgloss": (BGlossSelector, GlossParameters),
    "vgloss": (VGlossSelector, GlossParameters),
    "redde": (ReddeSelector, ReddeParameters),
}


def selector_names() -> tuple[str, ...]:
    """The registered selector names, sorted (CLI choices, docs)."""
    return tuple(sorted(SELECTOR_REGISTRY))


def make_selector(
    name: str,
    params: SelectorParameters | None = None,
    *,
    analyzer: Analyzer | None = None,
    samples: Mapping[str, list[Document]] | None = None,
    estimated_sizes: Mapping[str, float] | None = None,
) -> DatabaseSelector:
    """Construct a database selector from its registry name.

    Parameters
    ----------
    name:
        One of :func:`selector_names` (``cori``, ``kl``, ``bgloss``,
        ``vgloss``, ``redde``).
    params:
        The family's parameter dataclass (defaults per family); a
        params instance of the wrong family raises ``TypeError``.
    analyzer:
        Query analysis pipeline, passed through to every family.
    samples, estimated_sizes:
        ReDDE's data inputs — the sampled documents its central index
        is built from (required for ``redde``, rejected elsewhere) and
        optional per-database size estimates.
    """
    try:
        selector_cls, params_cls = SELECTOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; registered: {', '.join(selector_names())}"
        ) from None
    if params is not None and not isinstance(params, params_cls):
        raise TypeError(
            f"selector {name!r} takes {params_cls.__name__}, "
            f"got {type(params).__name__}"
        )
    if name == "redde":
        if samples is None:
            raise ValueError(
                "selector 'redde' needs samples (database name -> sampled documents)"
            )
        return ReddeSelector(
            samples,
            params,  # type: ignore[arg-type]
            estimated_sizes=estimated_sizes,
            analyzer=analyzer,
        )
    if samples is not None or estimated_sizes is not None:
        raise ValueError(f"selector {name!r} does not take samples/estimated_sizes")
    return selector_cls(params, analyzer=analyzer)
