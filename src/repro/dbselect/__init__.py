"""Database selection algorithms — the consumers of language models.

The paper's motivation (Sections 1-2): given language models for many
databases, a selection algorithm ranks the databases by their likelihood
of satisfying a query.  This package implements the era's standard
algorithms so the repo can demonstrate, end to end, that *learned*
language models drive selection about as well as *actual* ones (the
claim the paper defers to follow-on work, reproduced here as extension
experiment Ext-1):

* :class:`CoriSelector` — the CORI inference-net ranking (Callan,
  Lu & Croft, SIGIR 1995), the algorithm behind the paper's own group —
  and :class:`CoriScorer`, the same formula compiled to numpy
  term-statistics matrices for the serving hot path (both share one
  :class:`CoriParameters`);
* :class:`BGlossSelector` / :class:`VGlossSelector` — boolean and
  vector-space GlOSS (Gravano, García-Molina & Tomasic);
* :class:`KlSelector` — Kullback-Leibler divergence ranking, a later
  standard baseline;
* :func:`recall_at_n` and :class:`SelectionEvaluation` — the R_n
  evaluation methodology comparing a ranking to the best possible one.

Every selector is constructible two ways: directly, or through the
:func:`make_selector` registry factory by name (``cori``, ``kl``,
``bgloss``, ``vgloss``, ``redde``) with the family's frozen parameter
dataclass — the single construction surface the CLI and serving layers
build on.
"""

from repro.dbselect.base import DatabaseRanking, DatabaseSelector, RankedDatabase
from repro.dbselect.cori import CoriParameters, CoriSelector
from repro.dbselect.evaluate import SelectionEvaluation, evaluate_rankings, recall_at_n
from repro.dbselect.gloss import BGlossSelector, GlossParameters, VGlossSelector
from repro.dbselect.kl import KlParameters, KlSelector
from repro.dbselect.redde import ReddeParameters, ReddeSelector
from repro.dbselect.registry import make_selector, selector_names
from repro.dbselect.vectorized import CoriScorer

__all__ = [
    "BGlossSelector",
    "CoriParameters",
    "CoriScorer",
    "CoriSelector",
    "DatabaseRanking",
    "DatabaseSelector",
    "GlossParameters",
    "KlParameters",
    "KlSelector",
    "RankedDatabase",
    "ReddeParameters",
    "ReddeSelector",
    "SelectionEvaluation",
    "VGlossSelector",
    "evaluate_rankings",
    "make_selector",
    "recall_at_n",
    "selector_names",
]
