"""The CORI database selection algorithm.

CORI (Callan, Lu & Croft, "Searching Distributed Collections with
Inference Networks", SIGIR 1995) ranks database ``i`` for query term
``t`` with an INQUERY-style belief:

.. code-block:: text

    T = df / (df + 50 + 150 * cw_i / mean_cw)
    I = log((C + 0.5) / cf_t) / log(C + 1.0)
    belief(t, i) = b + (1 - b) * T * I

where ``df`` is the term's document frequency in database ``i``,
``cw_i`` the database's total word count, ``mean_cw`` the mean word
count over all ``C`` databases, ``cf_t`` the number of databases whose
model contains ``t``, and ``b`` the default belief (0.4).  A query's
score is the mean belief over its terms.

The statistics CORI consumes — df per term and total word count — are
exactly what a learned language model provides (``df`` and
``tokens_seen``), which is why query-based sampling plugs straight into
it.  When models are learned from samples of different sizes, the
``cw`` statistics are sample sizes rather than collection sizes; the
paper (Section 3) argues the resulting scaling is comparable, and the
Ext-1 experiment measures how well that holds.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.dbselect.base import DatabaseRanking, analyze_query, finish_ranking
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


class CoriSelector:
    """CORI ranking over per-database language models."""

    def __init__(
        self,
        default_belief: float = 0.4,
        df_base: float = 50.0,
        df_scale: float = 150.0,
        analyzer: Analyzer | None = None,
    ) -> None:
        if not 0.0 <= default_belief < 1.0:
            raise ValueError("default_belief must be in [0, 1)")
        self.default_belief = default_belief
        self.df_base = df_base
        self.df_scale = df_scale
        self.analyzer = analyzer

    def rank(self, query: str, models: Mapping[str, LanguageModel]) -> DatabaseRanking:
        """Rank ``models`` for ``query``; empty queries score all zero."""
        if not models:
            raise ValueError("no database models to rank")
        terms = analyze_query(query, self.analyzer)
        num_databases = len(models)
        mean_cw = sum(model.tokens_seen for model in models.values()) / num_databases
        if mean_cw <= 0:
            mean_cw = 1.0
        scores: dict[str, float] = {}
        for name, model in models.items():
            if not terms:
                scores[name] = 0.0
                continue
            beliefs = []
            for term in terms:
                cf = sum(1 for m in models.values() if term in m)
                beliefs.append(self._belief(term, model, cf, num_databases, mean_cw))
            scores[name] = sum(beliefs) / len(beliefs)
        return finish_ranking(query, scores)

    def _belief(
        self,
        term: str,
        model: LanguageModel,
        cf: int,
        num_databases: int,
        mean_cw: float,
    ) -> float:
        df = model.df(term)
        if df == 0 or cf == 0:
            return self.default_belief
        cw = model.tokens_seen or 1
        t_component = df / (df + self.df_base + self.df_scale * cw / mean_cw)
        i_component = math.log((num_databases + 0.5) / cf) / math.log(num_databases + 1.0)
        return self.default_belief + (1.0 - self.default_belief) * t_component * i_component
