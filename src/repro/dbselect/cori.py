"""The CORI database selection algorithm.

CORI (Callan, Lu & Croft, "Searching Distributed Collections with
Inference Networks", SIGIR 1995) ranks database ``i`` for query term
``t`` with an INQUERY-style belief:

.. code-block:: text

    T = df / (df + 50 + 150 * cw_i / mean_cw)
    I = log((C + 0.5) / cf_t) / log(C + 1.0)
    belief(t, i) = b + (1 - b) * T * I

where ``df`` is the term's document frequency in database ``i``,
``cw_i`` the database's total word count, ``mean_cw`` the mean word
count over all ``C`` databases, ``cf_t`` the number of databases whose
model contains ``t``, and ``b`` the default belief (0.4).  A query's
score is the mean belief over its terms.

The statistics CORI consumes — df per term and total word count — are
exactly what a learned language model provides (``df`` and
``tokens_seen``), which is why query-based sampling plugs straight into
it.  When models are learned from samples of different sizes, the
``cw`` statistics are sample sizes rather than collection sizes; the
paper (Section 3) argues the resulting scaling is comparable, and the
Ext-1 experiment measures how well that holds.

Two implementations share these formulas (and one
:class:`CoriParameters`): the scalar :class:`CoriSelector` here, which
walks the models term by term, and the vectorized
:class:`~repro.dbselect.vectorized.CoriScorer`, which compiles the
models into numpy term-statistics matrices once and scores every
database in a handful of array operations — the serving hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.dbselect.base import DatabaseRanking, analyze_query, finish_ranking
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class CoriParameters:
    """The CORI belief-formula constants, shared by every implementation.

    Parameters
    ----------
    default_belief:
        ``b`` — the belief assigned to a term absent from a database's
        model (and the floor every present term builds on).
    df_base, df_scale:
        The ``50`` and ``150`` of the T-component denominator
        ``df + df_base + df_scale * cw / mean_cw``.
    """

    default_belief: float = 0.4
    df_base: float = 50.0
    df_scale: float = 150.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.default_belief < 1.0:
            raise ValueError("default_belief must be in [0, 1)")
        if self.df_base < 0 or self.df_scale < 0:
            raise ValueError("df_base and df_scale must be non-negative")


def mean_collection_weight(models: Mapping[str, LanguageModel]) -> float:
    """Mean ``tokens_seen`` over the models (1.0 if degenerate).

    Shared by the scalar and vectorized implementations so both derive
    bit-identical ``mean_cw`` values from the same model set.
    """
    mean_cw = sum(model.tokens_seen for model in models.values()) / len(models)
    if mean_cw <= 0:
        return 1.0
    return mean_cw


class CoriSelector:
    """CORI ranking over per-database language models (scalar reference).

    Parameters
    ----------
    params:
        The belief-formula constants (default :class:`CoriParameters`).
    analyzer:
        Query analysis pipeline (raw tokens if ``None``).
    """

    def __init__(
        self,
        params: CoriParameters | None = None,
        *,
        analyzer: Analyzer | None = None,
    ) -> None:
        self.params = params or CoriParameters()
        self.analyzer = analyzer

    def rank(self, query: str, models: Mapping[str, LanguageModel]) -> DatabaseRanking:
        """Rank ``models`` for ``query``; empty queries score all zero."""
        if not models:
            raise ValueError("no database models to rank")
        terms = analyze_query(query, self.analyzer)
        num_databases = len(models)
        mean_cw = mean_collection_weight(models)
        scores: dict[str, float] = {}
        for name, model in models.items():
            if not terms:
                scores[name] = 0.0
                continue
            beliefs = []
            for term in terms:
                cf = sum(1 for m in models.values() if term in m)
                beliefs.append(self._belief(term, model, cf, num_databases, mean_cw))
            scores[name] = sum(beliefs) / len(beliefs)
        return finish_ranking(query, scores)

    def _belief(
        self,
        term: str,
        model: LanguageModel,
        cf: int,
        num_databases: int,
        mean_cw: float,
    ) -> float:
        df = model.df(term)
        params = self.params
        if df == 0 or cf == 0:
            return params.default_belief
        cw = model.tokens_seen or 1
        t_component = df / (df + params.df_base + params.df_scale * cw / mean_cw)
        i_component = math.log((num_databases + 0.5) / cf) / math.log(num_databases + 1.0)
        return params.default_belief + (1.0 - params.default_belief) * t_component * i_component
