"""The ReDDE database selection algorithm.

ReDDE — Relevant Document Distribution Estimation (Si & Callan, SIGIR
2003) — is the second-generation selector built directly on the
artifacts query-based sampling produces:

1. index the **union of the sampled documents** centrally (the same
   union Sections 7-8 of the 1999 paper exploit);
2. run the user query against that central sample index;
3. let each top-ranked sample document *vote* for its source database,
   weighted by how many collection documents it represents — the
   database's (estimated) size divided by its sample size;
4. rank databases by accumulated votes.

Because the votes pass through real retrieval over real sampled text,
ReDDE captures term co-occurrence that df/ctf summaries cannot — the
reason it outperformed CORI on skewed-size testbeds.  Its inputs here
are exactly `SamplingRun.documents` and :mod:`repro.sizeest` estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.corpus.collection import Corpus
from repro.corpus.document import Document
from repro.dbselect.base import DatabaseRanking, finish_ranking
from repro.index.inverted import InvertedIndex
from repro.index.scoring import Scorer
from repro.index.search import SearchEngine
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class ReddeParameters:
    """The ReDDE selector's constants (shared registry idiom).

    Parameters
    ----------
    top_n:
        How deep in the central-sample ranking votes are counted.
    """

    top_n: int = 50

    def __post_init__(self) -> None:
        if self.top_n <= 0:
            raise ValueError("top_n must be positive")


class ReddeSelector:
    """ReDDE ranking over a central index of sampled documents.

    Parameters
    ----------
    samples:
        Database name → that database's sampled documents
        (``SamplingRun.documents``).  Document ids must be unique
        across databases (true for any real federation).
    params:
        The selector constants (default :class:`ReddeParameters`).
    estimated_sizes:
        Database name → estimated collection size in documents (from
        :mod:`repro.sizeest`, or ground truth in oracle experiments).
        Databases missing an estimate fall back to their sample size
        (i.e. an unscaled vote).
    top_n:
        Legacy keyword form of ``params.top_n`` (ReDDE's single
        parameter; the original used a rank threshold proportional to
        the estimated total collection size — a fixed depth is the
        common simplification).  Mutually exclusive with ``params``.
    analyzer:
        Pipeline for the central sample index (default Inquery-style).
    """

    def __init__(
        self,
        samples: Mapping[str, list[Document]],
        params: ReddeParameters | None = None,
        *,
        estimated_sizes: Mapping[str, float] | None = None,
        top_n: int | None = None,
        analyzer: Analyzer | None = None,
        scorer: Scorer | None = None,
    ) -> None:
        if not samples:
            raise ValueError("need at least one database sample")
        if params is not None and top_n is not None:
            raise ValueError("pass params or top_n, not both")
        if params is None:
            params = ReddeParameters() if top_n is None else ReddeParameters(top_n)
        self.params = params
        self._source_of: dict[str, str] = {}
        union = Corpus(name="redde-union")
        for name, documents in samples.items():
            for document in documents:
                union.add(document)
                self._source_of[document.doc_id] = name
        if len(union) == 0:
            raise ValueError("samples contain no documents")
        self._sample_sizes = {name: len(documents) for name, documents in samples.items()}
        self._databases = list(samples)
        estimated_sizes = dict(estimated_sizes or {})
        self._scale = {
            name: (
                estimated_sizes.get(name, float(self._sample_sizes[name]))
                / self._sample_sizes[name]
                if self._sample_sizes[name]
                else 0.0
            )
            for name in self._databases
        }
        self._engine = SearchEngine(
            InvertedIndex(union, analyzer or Analyzer.inquery_style()), scorer
        )

    @property
    def top_n(self) -> int:
        """The central-ranking vote depth (``params.top_n``)."""
        return self.params.top_n

    def rank(self, query: str, models: Mapping[str, object] | None = None) -> DatabaseRanking:
        """Rank the sampled databases for ``query``.

        ``models`` is accepted (and ignored) so ReDDE satisfies the
        :class:`~repro.dbselect.base.DatabaseSelector` protocol and can
        be swapped into harnesses built around model-based selectors —
        its "model" is the central sample index it already owns.
        """
        results = self._engine.search(query, n=self.top_n)
        votes = {name: 0.0 for name in self._databases}
        for result in results:
            source = self._source_of[result.doc_id]
            votes[source] += self._scale[source]
        return finish_ranking(query, votes)
