"""The corpus generator: topics → documents → a :class:`Corpus`.

Each document draws a length from a lognormal distribution (matching
the long-tailed document lengths of news/abstract corpora), draws most
tokens from its *primary* topic and the remainder from one secondary
topic (controlled by ``purity`` — 1.0 gives perfectly single-topic
documents), and renders tokens into sentence-cased prose so the
downstream tokenizer does real work.

Documents record the primary topic's name in ``Document.topic``; the
selection-accuracy extension experiment uses that as a relevance
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.corpus.collection import Corpus
from repro.corpus.document import Document
from repro.synth.topics import TopicModel
from repro.utils.rand import ensure_rng


@runtime_checkable
class TopicSpaceLike(Protocol):
    """What the generator needs of a topic space.

    :class:`~repro.synth.topics.TopicSpace` is the standard provider;
    the scenario testbed substitutes hand-built spaces (e.g. the
    disjoint cluster blocks of :mod:`repro.scenarios.cluster`).
    """

    def __len__(self) -> int:
        """Number of topics."""
        ...  # pragma: no cover - protocol

    def __getitem__(self, index: int) -> TopicModel:
        """The ``index``-th topic model."""
        ...  # pragma: no cover - protocol

    def decode(self, word_ids: np.ndarray) -> list[str]:
        """Map an array of word ids back to word strings."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class GeneratorConfig:
    """Document-level shape of a generated corpus.

    Parameters
    ----------
    num_documents:
        Corpus size in documents.
    mean_doc_length:
        Mean tokens per document (lognormal mean).
    doc_length_sigma:
        Lognormal sigma of document lengths.
    min_doc_length:
        Hard floor on tokens per document.
    purity:
        Fraction of tokens drawn from the document's primary topic; the
        rest come from one secondary topic.
    topic_skew:
        Zipf exponent of the topic-popularity distribution; 0 gives
        equally likely topics, larger values make a few topics dominate.
    sentence_words:
        (low, high) bounds on words per rendered sentence.
    """

    num_documents: int = 1000
    mean_doc_length: float = 150.0
    doc_length_sigma: float = 0.5
    min_doc_length: int = 10
    purity: float = 0.85
    topic_skew: float = 0.3
    sentence_words: tuple[int, int] = (8, 20)

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.mean_doc_length <= 0:
            raise ValueError("mean_doc_length must be positive")
        if self.min_doc_length <= 0:
            raise ValueError("min_doc_length must be positive")
        if not 0.0 <= self.purity <= 1.0:
            raise ValueError("purity must be in [0, 1]")
        low, high = self.sentence_words
        if low <= 0 or high < low:
            raise ValueError("sentence_words must satisfy 0 < low <= high")


class CorpusGenerator:
    """Generates a deterministic corpus from a topic space."""

    def __init__(
        self,
        topic_space: TopicSpaceLike,
        config: GeneratorConfig = GeneratorConfig(),
        seed: int = 0,
    ) -> None:
        self.topic_space = topic_space
        self.config = config
        self.seed = seed

    def generate(self, name: str = "synthetic") -> Corpus:
        """Generate the full corpus."""
        rng = ensure_rng(self.seed)
        config = self.config
        num_topics = len(self.topic_space)

        topic_weights = self._topic_popularity(num_topics, config.topic_skew)
        primary_topics = rng.choice(num_topics, size=config.num_documents, p=topic_weights)
        lengths = self._document_lengths(rng)

        corpus = Corpus(name=name)
        for doc_index in range(config.num_documents):
            primary = int(primary_topics[doc_index])
            tokens = self._document_tokens(primary, int(lengths[doc_index]), rng)
            words = self.topic_space.decode(tokens)
            text = self._render(words, rng)
            title = self._title(primary, rng)
            corpus.add(
                Document(
                    doc_id=f"{name}-{doc_index:06d}",
                    text=text,
                    title=title,
                    topic=self.topic_space[primary].name,
                )
            )
        return corpus

    @staticmethod
    def _topic_popularity(num_topics: int, skew: float) -> np.ndarray:
        ranks = np.arange(1, num_topics + 1, dtype=np.float64)
        weights = ranks**-skew
        return weights / weights.sum()

    def _document_lengths(self, rng: np.random.Generator) -> np.ndarray:
        config = self.config
        sigma = config.doc_length_sigma
        # Parameterize so the lognormal *mean* equals mean_doc_length.
        mu = np.log(config.mean_doc_length) - sigma**2 / 2.0
        lengths = rng.lognormal(mean=mu, sigma=sigma, size=config.num_documents)
        return np.maximum(np.round(lengths), config.min_doc_length).astype(np.int64)

    def _document_tokens(
        self, primary: int, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        num_topics = len(self.topic_space)
        primary_count = length
        secondary_count = 0
        secondary = primary
        if num_topics > 1 and self.config.purity < 1.0:
            secondary_count = int(rng.binomial(length, 1.0 - self.config.purity))
            primary_count = length - secondary_count
            if secondary_count:
                secondary = int(rng.integers(num_topics - 1))
                if secondary >= primary:
                    secondary += 1
        tokens = [self.topic_space[primary].sample(primary_count, rng)]
        if secondary_count:
            tokens.append(self.topic_space[secondary].sample(secondary_count, rng))
        combined = np.concatenate(tokens)
        rng.shuffle(combined)
        return combined

    def _render(self, words: list[str], rng: np.random.Generator) -> str:
        low, high = self.config.sentence_words
        sentences: list[str] = []
        position = 0
        while position < len(words):
            take = int(rng.integers(low, high + 1))
            chunk = words[position : position + take]
            position += take
            sentence = " ".join(chunk)
            sentences.append(sentence[0].upper() + sentence[1:] + ".")
        return " ".join(sentences)

    def _title(self, primary: int, rng: np.random.Generator) -> str:
        length = int(rng.integers(3, 8))
        tokens = self.topic_space[primary].sample(length, rng)
        return " ".join(self.topic_space.decode(tokens)).title()
