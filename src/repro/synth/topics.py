"""Topic-mixture unigram language models for corpus generation.

Each :class:`TopicModel` is a unigram distribution over the shared
synthetic vocabulary, assembled from four weighted word classes:

* the **stopword block** (high total weight, mild internal skew — as in
  English, a handful of function words dominate running text);
* the **shared content block** (one global Zipfian ordering all topics
  agree on — the cross-topic core vocabulary);
* the **topic block** (a per-topic sample of content words given a
  strong boost in its own Zipfian order — what makes topics *about*
  something); and
* the **noise block** (numbers, short tokens).

The number of topics and the weight/size of the topic block are the
homogeneity knobs: CACM-like corpora use few topics with small boosts,
TREC-like corpora use many topics with strong boosts, reproducing the
paper's "very heterogeneous" vs. "homogeneous" contrast (Table 1).

Sampling is vectorised: a topic precomputes a concatenated word-id
array and the CDF of its mixture, so drawing ``n`` tokens is one
``searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.vocabulary import SyntheticVocabulary
from repro.utils.rand import ensure_rng
from repro.utils.zipf import zipf_probabilities


@dataclass(frozen=True)
class MixtureWeights:
    """Relative weight of each word class in a topic's unigram model."""

    stopwords: float = 0.44
    shared: float = 0.34
    topic: float = 0.20
    noise: float = 0.02

    def __post_init__(self) -> None:
        values = (self.stopwords, self.shared, self.topic, self.noise)
        if any(v < 0 for v in values):
            raise ValueError("mixture weights must be non-negative")
        if sum(values) <= 0:
            raise ValueError("mixture weights must not all be zero")


class TopicModel:
    """A single topic's unigram distribution, ready for fast sampling."""

    def __init__(self, name: str, word_ids: np.ndarray, probabilities: np.ndarray) -> None:
        if word_ids.shape != probabilities.shape:
            raise ValueError("word_ids and probabilities must be parallel")
        self.name = name
        self.word_ids = word_ids.astype(np.int64)
        total = probabilities.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError("probabilities must sum to a positive finite value")
        self._cdf = np.cumsum(probabilities / total)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` word ids from the topic distribution."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        uniforms = rng.random(n)
        positions = np.searchsorted(self._cdf, uniforms, side="right")
        positions = np.minimum(positions, len(self.word_ids) - 1)
        return self.word_ids[positions]

    def probability_of(self, word_id: int) -> float:
        """Total probability mass the topic assigns to ``word_id``.

        A word can appear both in the shared block and in the topic
        block; this sums all its slots.  Intended for tests and
        diagnostics, not for inner loops.
        """
        pdf = np.diff(self._cdf, prepend=0.0)
        return float(pdf[self.word_ids == word_id].sum())

    def dense_pdf(self, vocabulary_size: int | None = None) -> np.ndarray:
        """The distribution as a dense vector over word ids.

        Entry ``w`` is the total probability the topic assigns to word
        id ``w`` (slots in different blocks summed, as in
        :meth:`probability_of`, but for every word at once).  The probe
        generator (:mod:`repro.classify.probes`) consumes these to find
        each topic's distinctive vocabulary.
        """
        if vocabulary_size is None:
            vocabulary_size = int(self.word_ids.max()) + 1
        pdf = np.diff(self._cdf, prepend=0.0)
        dense = np.zeros(vocabulary_size, dtype=np.float64)
        np.add.at(dense, self.word_ids, pdf)
        return dense


class TopicSpace:
    """All topics of one synthetic corpus, sharing a vocabulary.

    Parameters
    ----------
    vocabulary:
        The word list (defines the id space: stopwords, then content,
        then noise).
    num_topics:
        How many topics to create.
    topic_vocab_size:
        How many content words each topic boosts.
    weights:
        Class mixture weights (see :class:`MixtureWeights`).
    zipf_stop, zipf_shared, zipf_topic:
        Internal Zipf exponents of the three main blocks.
    shared_jitter:
        Sigma of a per-topic lognormal perturbation applied to the
        shared block's probabilities.  Zero makes frequent words
        perfectly topic-neutral; realistic text has topically
        *correlated* frequent words ("stocks and bonds" in the WSJ —
        the paper's own explanation for why frequency-based query
        selection samples narrowly, Section 5.2), which a positive
        jitter reproduces.
    boost_alignment:
        Strength of the correlation between a topic's *boost block* and
        the globally frequent shared words, decaying with topic index.
        With alignment > 0, early (popular — the generator's topic_skew
        favours low indices) topics preferentially boost words from the
        top of the shared frequency order, as a finance-heavy newspaper
        makes finance words globally frequent.  This is the second half
        of the real-text property behind the paper's Figure 3 result:
        the documents ranked highest for globally frequent terms
        cluster in the popular topics, so frequency-based query
        selection yields a topically narrow sample.
    pinned_front:
        The first ``pinned_front`` content words keep their list position
        at the *top* of the shared frequency order instead of being
        permuted.  Profiles that inject domain terms (the
        Microsoft-support corpus of Table 4) pin them so they are
        genuinely frequent.
    always_boost:
        The first ``always_boost`` content words are included in *every*
        topic's boost block (concentrating them in topical documents and
        raising their average term frequency, which is what Table 4's
        avg-tf ranking surfaces).
    seed:
        Seed for topic-membership draws.
    """

    def __init__(
        self,
        vocabulary: SyntheticVocabulary,
        num_topics: int,
        topic_vocab_size: int = 600,
        weights: MixtureWeights = MixtureWeights(),
        zipf_stop: float = 0.85,
        zipf_shared: float = 1.05,
        zipf_topic: float = 0.95,
        shared_jitter: float = 0.0,
        boost_alignment: float = 0.0,
        pinned_front: int = 0,
        always_boost: int = 0,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {num_topics}")
        content_size = len(vocabulary.content)
        if topic_vocab_size > content_size:
            raise ValueError(
                f"topic_vocab_size {topic_vocab_size} exceeds content vocabulary {content_size}"
            )
        if shared_jitter < 0:
            raise ValueError("shared_jitter must be non-negative")
        if boost_alignment < 0:
            raise ValueError("boost_alignment must be non-negative")
        if not 0 <= pinned_front <= content_size:
            raise ValueError("pinned_front out of range")
        if not 0 <= always_boost <= topic_vocab_size:
            raise ValueError("always_boost must fit within topic_vocab_size")
        self.vocabulary = vocabulary
        self.words: list[str] = vocabulary.all_words()
        rng = ensure_rng(seed)

        stop_count = len(vocabulary.stopwords)
        noise_count = len(vocabulary.noise)
        stop_ids = np.arange(stop_count, dtype=np.int64)
        # A single global "importance order" for shared content, common to
        # every topic: this is the corpus-wide core vocabulary.  Pinned
        # words stay at the top; the rest are permuted.
        tail = pinned_front + rng.permutation(content_size - pinned_front)
        shared_order = np.concatenate([np.arange(pinned_front, dtype=np.int64), tail])
        shared_ids = stop_count + shared_order
        noise_ids = stop_count + content_size + np.arange(noise_count, dtype=np.int64)

        stop_probs = zipf_probabilities(stop_count, zipf_stop)
        shared_probs = zipf_probabilities(content_size, zipf_shared)
        topic_probs = zipf_probabilities(topic_vocab_size, zipf_topic)
        noise_probs = (
            zipf_probabilities(noise_count, 1.0) if noise_count else np.empty(0)
        )

        self.topics: list[TopicModel] = []
        boosted = np.arange(always_boost, dtype=np.int64)
        for topic_index in range(num_topics):
            free_slots = topic_vocab_size - always_boost
            if boost_alignment > 0:
                # Draw boost members preferring the top of the shared
                # frequency order, with strength decaying in topic index
                # (popular topics own the globally frequent vocabulary).
                alpha = boost_alignment / (1.0 + topic_index)
                positions = np.arange(1, content_size - always_boost + 1, dtype=np.float64)
                draw_weights = positions**-alpha
                draw_weights /= draw_weights.sum()
                drawn_positions = rng.choice(
                    content_size - always_boost,
                    size=free_slots,
                    replace=False,
                    p=draw_weights,
                )
                # Positions index the shared frequency order; map back to
                # content-list word indices.
                unpinned = shared_order[always_boost:] if always_boost else shared_order
                drawn = unpinned[drawn_positions]
            else:
                drawn = always_boost + rng.choice(
                    content_size - always_boost, size=free_slots, replace=False
                )
            # Boosted words interleave with the topic's own draws so both
            # get high in-topic ranks.
            members_list: list[int] = []
            boost_cursor = 0
            drawn_cursor = 0
            for slot in range(topic_vocab_size):
                boost_turn = boost_cursor < always_boost and (
                    slot % 2 == 0 or drawn_cursor >= free_slots
                )
                if boost_turn:
                    members_list.append(int(boosted[boost_cursor]))
                    boost_cursor += 1
                else:
                    members_list.append(int(drawn[drawn_cursor]))
                    drawn_cursor += 1
            members = np.asarray(members_list, dtype=np.int64)
            topic_ids = stop_count + members
            word_ids = np.concatenate([stop_ids, shared_ids, topic_ids, noise_ids])
            topic_shared_probs = shared_probs
            if shared_jitter > 0:
                factors = rng.lognormal(mean=0.0, sigma=shared_jitter, size=content_size)
                jittered = shared_probs * factors
                topic_shared_probs = jittered * (shared_probs.sum() / jittered.sum())
            probabilities = np.concatenate(
                [
                    weights.stopwords * stop_probs,
                    weights.shared * topic_shared_probs,
                    weights.topic * topic_probs,
                    weights.noise * noise_probs,
                ]
            )
            self.topics.append(
                TopicModel(f"topic{topic_index:03d}", word_ids, probabilities)
            )

    def __len__(self) -> int:
        return len(self.topics)

    def __getitem__(self, index: int) -> TopicModel:
        return self.topics[index]

    def decode(self, word_ids: np.ndarray) -> list[str]:
        """Map an array of word ids back to word strings."""
        return [self.words[i] for i in word_ids]
