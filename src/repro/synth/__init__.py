"""Synthetic corpus generation.

The paper evaluates on CACM, WSJ88, and TREC-123 — corpora we cannot
redistribute.  This package generates substitutes with the same
*statistical shape*, which is all query-based sampling dynamics depend
on:

* term frequencies follow **Zipf's law** with the real 418-word stoplist
  occupying the top ranks (so stopword handling matters exactly as in
  the paper);
* vocabulary growth follows **Heaps' law** (verified by tests), so
  percentage-learned curves behave like the paper's Figure 1a;
* a fraction of content words come in **morphological families**
  (``report, reports, reported, reporting``), so Porter stemming
  conflates terms just as it does on English;
* documents are drawn from **topic mixtures**; the number of topics and
  their vocabulary overlap control homogeneity, reproducing the
  CACM-homogeneous vs. TREC-heterogeneous contrast that drives the
  paper's Figure 2 and Table 2 results.

:mod:`repro.synth.profiles` defines named, scaled profiles for all four
databases the paper uses (the three of Table 1 plus the Microsoft
support database of Table 4).
"""

from repro.synth.generator import CorpusGenerator, GeneratorConfig
from repro.synth.profiles import (
    CorpusProfile,
    cacm_like,
    mssupport_like,
    paper_testbed,
    trec123_like,
    wsj88_like,
)
from repro.synth.topics import TopicModel, TopicSpace
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig

__all__ = [
    "CorpusGenerator",
    "CorpusProfile",
    "GeneratorConfig",
    "SyntheticVocabulary",
    "TopicModel",
    "TopicSpace",
    "VocabularyConfig",
    "cacm_like",
    "mssupport_like",
    "paper_testbed",
    "trec123_like",
    "wsj88_like",
]
