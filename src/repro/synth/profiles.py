"""Named corpus profiles mirroring the paper's test databases.

The paper's Table 1 characterises three corpora:

====================  ========  ===========  ============  ============  ==================
Corpus                Bytes     Documents    Unique terms  Total terms   Variety
====================  ========  ===========  ============  ============  ==================
CACM                  2 MB      3,204        ~6.5 K        ~117 K        homogeneous
WSJ88                 104 MB    39,904       ~123 K        ~9.7 M        heterogeneous
TREC-123              3.2 GB    1,078,166    ~1.1 M        ~280 M        very heterogeneous
====================  ========  ===========  ============  ============  ==================

We reproduce the *relationships* at laptop scale: CACM-like is small,
short-document, and nearly single-topic; WSJ-like is ~4× larger in
documents with long documents and moderate topical spread; TREC-like is
~15× CACM in documents (scalable) with the widest topical spread.
Default scaled sizes are 3,204 / 12,000 / 48,000 documents; pass
``scale`` to :meth:`CorpusProfile.build` to grow or shrink every profile
proportionally (vocabulary scales with the square root of the token
count, per Heaps' law).

A fourth profile mimics the Microsoft Customer Support web database of
the paper's Table 4, with real product terms injected as frequent,
topically concentrated vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.corpus.collection import Corpus
from repro.synth.generator import CorpusGenerator, GeneratorConfig
from repro.synth.topics import MixtureWeights, TopicSpace
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig
from repro.utils.rand import derive_seed

#: Product / support vocabulary for the Microsoft-support-like corpus
#: (drawn from the paper's Table 4).
MSSUPPORT_DOMAIN_TERMS: tuple[str, ...] = (
    "microsoft", "excel", "foxpro", "windows", "access", "word", "office",
    "visual", "basic", "server", "printer", "setup", "database", "dialog",
    "menu", "file", "error", "message", "command", "mail", "internet",
    "version", "beta", "software", "application", "product", "project",
    "user", "users", "settings", "select", "print", "code", "field",
    "table", "text", "object", "service", "articles", "box", "name",
    "information", "data", "works",
)


@dataclass(frozen=True)
class CorpusProfile:
    """A named recipe for building a synthetic corpus.

    ``variety`` echoes Table 1's qualitative label and is controlled by
    ``num_topics`` / ``topic_vocab_size`` / the topic mixture weight.
    """

    name: str
    description: str
    variety: str
    vocabulary: VocabularyConfig
    generator: GeneratorConfig
    num_topics: int
    topic_vocab_size: int
    weights: MixtureWeights = MixtureWeights()
    pinned_front: int = 0
    always_boost: int = 0
    zipf_stop: float = 0.85
    zipf_shared: float = 1.05
    zipf_topic: float = 0.95
    shared_jitter: float = 0.0
    boost_alignment: float = 0.0

    def scaled(self, scale: float) -> "CorpusProfile":
        """Return a copy with document count and vocabulary rescaled.

        Document count scales linearly; vocabulary scales with the
        square root of the token count (Heaps' law with beta = 0.5).
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if scale == 1.0:
            return self
        num_documents = max(50, int(round(self.generator.num_documents * scale)))
        vocab_scale = math.sqrt(scale)
        content_size = max(
            self.topic_vocab_size + 1,
            int(round(self.vocabulary.content_size * vocab_scale)),
        )
        return replace(
            self,
            generator=replace(self.generator, num_documents=num_documents),
            vocabulary=replace(self.vocabulary, content_size=content_size),
        )

    def topic_space(self, seed: int = 0, scale: float = 1.0) -> TopicSpace:
        """The topic mixture :meth:`build` generates documents from.

        Deterministic in ``(seed, scale)`` and shared with
        :meth:`build`, so a consumer holding only the profile name and
        the generation seed — the topic-probe generator
        (:mod:`repro.classify.probes`) classifying a federation built
        from this profile — can reconstruct the exact
        :class:`~repro.synth.topics.TopicModel` set the documents came
        from.
        """
        profile = self.scaled(scale)
        vocabulary = SyntheticVocabulary(
            profile.vocabulary, seed=derive_seed(seed, profile.name, "vocab")
        )
        return TopicSpace(
            vocabulary,
            num_topics=profile.num_topics,
            topic_vocab_size=profile.topic_vocab_size,
            weights=profile.weights,
            zipf_stop=profile.zipf_stop,
            zipf_shared=profile.zipf_shared,
            zipf_topic=profile.zipf_topic,
            shared_jitter=profile.shared_jitter,
            boost_alignment=profile.boost_alignment,
            pinned_front=profile.pinned_front,
            always_boost=profile.always_boost,
            seed=derive_seed(seed, profile.name, "topics"),
        )

    def build(self, seed: int = 0, scale: float = 1.0) -> Corpus:
        """Generate the corpus deterministically from ``seed``."""
        profile = self.scaled(scale)
        generator = CorpusGenerator(
            profile.topic_space(seed=seed),
            profile.generator,
            seed=derive_seed(seed, profile.name, "docs"),
        )
        return generator.generate(name=profile.name)


def cacm_like() -> CorpusProfile:
    """Small, homogeneous corpus of scientific abstracts (CACM analogue)."""
    return CorpusProfile(
        name="cacm",
        description="Small homogeneous corpus of titles/abstracts (CACM analogue)",
        variety="homogeneous",
        vocabulary=VocabularyConfig(content_size=9_000),
        generator=GeneratorConfig(
            num_documents=3_204,
            mean_doc_length=45.0,
            doc_length_sigma=0.6,
            min_doc_length=8,
            purity=0.9,
            topic_skew=0.2,
        ),
        num_topics=2,
        topic_vocab_size=400,
        weights=MixtureWeights(stopwords=0.42, shared=0.42, topic=0.14, noise=0.02),
        zipf_shared=1.20,
    )


def wsj88_like() -> CorpusProfile:
    """Medium, heterogeneous newspaper corpus (WSJ 1988 analogue)."""
    return CorpusProfile(
        name="wsj88",
        description="Medium heterogeneous newspaper corpus (WSJ88 analogue)",
        variety="heterogeneous",
        vocabulary=VocabularyConfig(content_size=40_000),
        generator=GeneratorConfig(
            num_documents=12_000,
            mean_doc_length=160.0,
            doc_length_sigma=0.7,
            min_doc_length=15,
            purity=0.85,
            topic_skew=0.35,
        ),
        num_topics=12,
        topic_vocab_size=800,
        weights=MixtureWeights(stopwords=0.44, shared=0.32, topic=0.22, noise=0.02),
        zipf_shared=1.15,
        zipf_topic=1.00,
        shared_jitter=0.8,
        boost_alignment=1.2,
    )


def trec123_like() -> CorpusProfile:
    """Large, very heterogeneous multi-source corpus (TREC-123 analogue)."""
    return CorpusProfile(
        name="trec123",
        description="Large very heterogeneous multi-source corpus (TREC-123 analogue)",
        variety="very heterogeneous",
        vocabulary=VocabularyConfig(content_size=120_000),
        generator=GeneratorConfig(
            num_documents=48_000,
            mean_doc_length=140.0,
            doc_length_sigma=0.8,
            min_doc_length=12,
            purity=0.82,
            topic_skew=0.4,
        ),
        num_topics=40,
        topic_vocab_size=1_200,
        weights=MixtureWeights(stopwords=0.44, shared=0.30, topic=0.24, noise=0.02),
        zipf_shared=1.32,
        zipf_topic=1.12,
        shared_jitter=0.8,
        boost_alignment=1.2,
    )


def mssupport_like() -> CorpusProfile:
    """Tech-support corpus with injected product vocabulary (Table 4)."""
    domain = MSSUPPORT_DOMAIN_TERMS
    return CorpusProfile(
        name="mssupport",
        description="Technical support knowledge base (Microsoft-support analogue)",
        variety="heterogeneous",
        vocabulary=VocabularyConfig(content_size=15_000, domain_terms=domain),
        generator=GeneratorConfig(
            num_documents=6_000,
            mean_doc_length=120.0,
            doc_length_sigma=0.6,
            min_doc_length=12,
            purity=0.85,
            topic_skew=0.3,
        ),
        num_topics=8,
        topic_vocab_size=500,
        weights=MixtureWeights(stopwords=0.42, shared=0.30, topic=0.26, noise=0.02),
        pinned_front=len(domain),
        always_boost=len(domain),
    )


#: Named profile registry (used by the CLI and the experiment testbed).
PROFILES_BY_NAME = {
    "cacm": cacm_like,
    "wsj88": wsj88_like,
    "trec123": trec123_like,
    "mssupport": mssupport_like,
}


def paper_testbed(seed: int = 0, scale: float = 1.0) -> dict[str, Corpus]:
    """Build the three Table 1 corpora keyed by profile name."""
    return {
        profile.name: profile.build(seed=seed, scale=scale)
        for profile in (cacm_like(), wsj88_like(), trec123_like())
    }
