"""Synthetic vocabulary construction.

Builds the word list a synthetic corpus draws from.  Three word classes
matter to the reproduction:

* **Stopwords** — the library's real 418-word stoplist, placed at the
  top of the frequency distribution so that (as in English) roughly
  40-50% of running text is stopwords and the paper's "stopwords were
  discarded before comparison" protocol has teeth.
* **Content words** — pronounceable synthetic words generated
  deterministically from an index (no collisions), a configurable
  fraction of which are expanded into *morphological families* with
  regular suffixes so the Porter stemmer conflates them, as it would on
  English.
* **Noise tokens** — numbers and 1-2 letter tokens, which exercise the
  paper's query-term eligibility rules (no numbers, 3+ characters).

Domain terms (e.g. ``excel``, ``foxpro`` for the Microsoft-support
corpus of Table 4) can be injected at chosen positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.text.stopwords import INQUERY_STOPWORDS
from repro.utils.rand import ensure_rng

_ONSETS = (
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
    "n", "p", "r", "s", "t", "v", "w", "z", "br", "cr",
    "dr", "fl", "gr", "pl", "pr", "sl", "sp", "st", "str", "tr",
)
_VOWELS = ("a", "e", "i", "o", "u", "ai", "ea", "io", "ou")
_CODAS = ("", "n", "r", "s", "t", "l", "m", "nd", "rk", "st")

_FAMILY_SUFFIXES = ("", "s", "ed", "ing", "ation")


def synthesize_word(index: int) -> str:
    """Return the ``index``-th word of the deterministic word sequence.

    Words are built from consonant-vowel-coda syllables via mixed-radix
    decoding of ``index``, so distinct indices yield distinct words and
    the sequence never depends on random state.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    per_syllable = len(_ONSETS) * len(_VOWELS) * len(_CODAS)
    syllables = []
    remaining = index
    while True:
        code = remaining % per_syllable
        remaining //= per_syllable
        onset = _ONSETS[code % len(_ONSETS)]
        code //= len(_ONSETS)
        vowel = _VOWELS[code % len(_VOWELS)]
        code //= len(_VOWELS)
        coda = _CODAS[code]
        syllables.append(onset + vowel + coda)
        if remaining == 0:
            break
        remaining -= 1
    return "".join(reversed(syllables))


@dataclass(frozen=True)
class VocabularyConfig:
    """Shape of a synthetic vocabulary.

    Parameters
    ----------
    content_size:
        Number of content words (before noise tokens).
    family_fraction:
        Fraction of content positions filled by members of
        morphological families rather than isolated lemmas.
    noise_numbers:
        How many purely numeric tokens to include.
    noise_short:
        How many 1-2 character tokens to include.
    domain_terms:
        Words injected verbatim at the *front* of the content block
        (i.e. the most frequent content words) — used by the
        Microsoft-support profile.
    """

    content_size: int = 20_000
    family_fraction: float = 0.3
    noise_numbers: int = 60
    noise_short: int = 30
    domain_terms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.content_size <= 0:
            raise ValueError("content_size must be positive")
        if not 0.0 <= self.family_fraction <= 1.0:
            raise ValueError("family_fraction must be in [0, 1]")


class SyntheticVocabulary:
    """The word list (and class boundaries) a generator samples from.

    Attributes
    ----------
    stopwords:
        The stopword block (always the full library stoplist, sorted
        by a fixed arbitrary-but-deterministic order).
    content:
        The content block: domain terms first, then synthetic lemmas and
        family members.
    noise:
        Numeric and short tokens.
    """

    def __init__(self, config: VocabularyConfig = VocabularyConfig(), seed: int = 0) -> None:
        self.config = config
        rng = ensure_rng(seed)
        self.stopwords: list[str] = sorted(INQUERY_STOPWORDS)
        rng.shuffle(self.stopwords)  # fixed by seed; breaks alphabetical artifacts
        self.content: list[str] = self._build_content(config, rng)
        taken = set(self.stopwords) | set(self.content)
        self.noise: list[str] = self._build_noise(config, rng, taken)

    @staticmethod
    def _build_content(config: VocabularyConfig, rng: np.random.Generator) -> list[str]:
        seen: set[str] = set(INQUERY_STOPWORDS)
        words: list[str] = []
        for term in config.domain_terms:
            if term not in seen:
                seen.add(term)
                words.append(term)
        next_index = 0
        while len(words) < config.content_size:
            lemma = synthesize_word(next_index)
            next_index += 1
            if lemma in seen:
                continue
            expand_family = rng.random() < config.family_fraction
            forms = [lemma + suffix for suffix in _FAMILY_SUFFIXES] if expand_family else [lemma]
            for form in forms:
                if form in seen or len(words) >= config.content_size:
                    continue
                seen.add(form)
                words.append(form)
        return words

    @staticmethod
    def _build_noise(
        config: VocabularyConfig, rng: np.random.Generator, taken: set[str]
    ) -> list[str]:
        noise: list[str] = []
        numbers = rng.choice(np.arange(1, 10_000), size=config.noise_numbers, replace=False)
        noise.extend(str(int(n)) for n in numbers)
        alphabet = list("abcdefghijklmnopqrstuvwxyz")
        shorts: set[str] = set()
        while len(shorts) < config.noise_short:
            length = int(rng.integers(1, 3))
            word = "".join(rng.choice(alphabet, size=length))
            if word not in taken:
                shorts.add(word)
        noise.extend(sorted(shorts))
        return noise

    @property
    def size(self) -> int:
        """Total number of distinct words across all classes."""
        return len(self.stopwords) + len(self.content) + len(self.noise)

    def all_words(self) -> list[str]:
        """Every word, stopwords first, then content, then noise."""
        return self.stopwords + self.content + self.noise
