"""End-to-end size estimation against a live server."""

from __future__ import annotations

from repro.backend import HitCountingDatabase, SearchableDatabase
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.sizeest.capture import (
    CaptureRecaptureResult,
    collect_capture_samples,
    schnabel,
    schumacher_eschmeyer,
)
from repro.sizeest.resample import sample_resample
from repro.utils.rand import derive_seed

_CAPTURE_METHODS = {
    "schnabel": schnabel,
    "schumacher_eschmeyer": schumacher_eschmeyer,
}


def estimate_database_size(
    server: HitCountingDatabase,
    bootstrap: QueryTermSelector,
    method: str = "sample_resample",
    sample_documents: int = 100,
    num_capture_samples: int = 4,
    num_probes: int = 10,
    seed: int = 0,
) -> float:
    """Estimate ``server``'s document count using only its search surface.

    ``method`` is ``"sample_resample"`` (recommended), ``"schnabel"``,
    or ``"schumacher_eschmeyer"``.  ``sample_documents`` is the total
    sampling budget; capture-recapture splits it across
    ``num_capture_samples`` episodes.
    """
    if method == "sample_resample":
        sampler = QueryBasedSampler(
            server,
            bootstrap=bootstrap,
            stopping=MaxDocuments(sample_documents),
            config=SamplerConfig(keep_documents=False),
            seed=derive_seed(seed, "sizeest", "resample"),
        )
        run = sampler.run()
        return sample_resample(
            server, run.model, num_probes=num_probes, seed=derive_seed(seed, "probes")
        ).estimate
    if method in _CAPTURE_METHODS:
        per_sample = max(10, sample_documents // num_capture_samples)
        samples = collect_capture_samples(
            server,
            bootstrap,
            num_samples=num_capture_samples,
            docs_per_sample=per_sample,
            seed=seed,
        )
        return float(_CAPTURE_METHODS[method](samples))
    raise ValueError(
        f"unknown method {method!r}; choose sample_resample, schnabel, "
        "or schumacher_eschmeyer"
    )


def capture_recapture_report(
    server: SearchableDatabase, bootstrap: QueryTermSelector, sample_documents: int = 100,
    num_capture_samples: int = 4, seed: int = 0,
) -> dict[str, CaptureRecaptureResult]:
    """Both multi-sample capture estimators from one set of episodes."""
    per_sample = max(10, sample_documents // num_capture_samples)
    samples = collect_capture_samples(
        server,
        bootstrap,
        num_samples=num_capture_samples,
        docs_per_sample=per_sample,
        seed=seed,
    )
    drawn = sum(len(sample) for sample in samples)
    distinct = len(set().union(*samples))
    report = {}
    for name, estimator in _CAPTURE_METHODS.items():
        try:
            estimate = float(estimator(samples))
        except ValueError:
            # No recaptures at all: the data is consistent with an
            # unboundedly large population — exactly how capture-
            # recapture degenerates on big databases (Ext-5's finding).
            estimate = float("inf")
        report[name] = CaptureRecaptureResult(
            estimate=estimate,
            num_samples=num_capture_samples,
            documents_drawn=drawn,
            distinct_documents=distinct,
        )
    return report
