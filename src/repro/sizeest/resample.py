"""The sample-resample size estimator (Si & Callan, SIGIR 2003).

Given a sample of documents from a database and the database's
observable hit counts:

1. pick probe terms that occur in the sample;
2. for each probe ``t``: the sample says ``t`` occurs in
   ``df_sample(t)`` of ``|sample|`` documents, so its true document
   frequency should be about the same *fraction* of the database —
   and the database reveals the true df as the hit count of a one-term
   query: ``N̂_t = hits(t) · |sample| / df_sample(t)``;
3. aggregate over probes with the median (individual probes are noisy;
   the median resists the skew of burst terms).

The estimator needs nothing unobservable: a sample the service already
collected, and the "about N results" counter every search service
exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

import numpy as np

from repro.lm.model import LanguageModel
from repro.sampling.selection import is_eligible_query_term
from repro.utils.rand import ensure_rng


@dataclass(frozen=True)
class SampleResampleEstimate:
    """A size estimate with its per-probe detail."""

    estimate: float
    probe_estimates: tuple[float, ...]
    probe_terms: tuple[str, ...]


def _pick_probes(
    sample_model: LanguageModel,
    num_probes: int,
    min_sample_df: int,
    rng: np.random.Generator,
) -> list[str]:
    candidates = [
        term
        for term in sample_model
        if sample_model.df(term) >= min_sample_df and is_eligible_query_term(term)
    ]
    if not candidates:
        raise ValueError(
            f"no probe candidates with sample df >= {min_sample_df}; sample too small"
        )
    candidates.sort()
    if len(candidates) <= num_probes:
        return candidates
    indices = rng.choice(len(candidates), size=num_probes, replace=False)
    return [candidates[i] for i in sorted(indices)]


def sample_resample(
    server,
    sample_model: LanguageModel,
    num_probes: int = 10,
    min_sample_df: int = 2,
    seed: int | np.random.Generator = 0,
) -> SampleResampleEstimate:
    """Estimate ``server``'s document count from a prior sample.

    Parameters
    ----------
    server:
        Must expose ``hit_count(query) -> int`` (the observable match
        counter; see :meth:`repro.index.server.DatabaseServer.hit_count`).
    sample_model:
        The learned language model of a query-based sample of the
        server (its ``documents_seen`` is the sample size).
    num_probes:
        Probe terms to average over.
    min_sample_df:
        Probes must occur in at least this many sample documents — a
        df-1 probe gives an estimate quantised to multiples of the
        sample size.
    """
    if sample_model.documents_seen <= 0:
        raise ValueError("sample_model has no documents; sample the server first")
    rng = ensure_rng(seed)
    probes = _pick_probes(sample_model, num_probes, min_sample_df, rng)
    sample_size = sample_model.documents_seen
    estimates = []
    used = []
    for term in probes:
        hits = server.hit_count(term)
        if hits <= 0:
            # The client tokenization admitted a term the server's index
            # dropped (e.g. a server-side stopword); skip it.
            continue
        estimates.append(hits * sample_size / sample_model.df(term))
        used.append(term)
    if not estimates:
        raise ValueError("every probe failed on the server; cannot estimate size")
    return SampleResampleEstimate(
        estimate=float(median(estimates)),
        probe_estimates=tuple(estimates),
        probe_terms=tuple(used),
    )
