"""Database size estimation — the paper's open problem, made concrete.

Section 3 of the paper: *"One important piece of information that
appears difficult to acquire by sampling is the size of the database"*
— vocabulary growth (Heaps' law) never saturates, so counting terms
tells you nothing about document counts.  Follow-on work solved it with
two families of estimators, both implemented here:

* **Capture-recapture** over document ids (Liu, Yu & Meng 2002;
  Shokouhi, Zobel, Scholer & Tahaghoghi 2006): draw several independent
  samples, count recaptured documents, invert the overlap probability.
  :func:`lincoln_petersen` (two samples), :func:`schnabel` and
  :func:`schumacher_eschmeyer` (multi-sample).  Query-based samples are
  not uniform — ranking bias makes popular documents more catchable
  (inflating recaptures), while topically divergent query sequences
  make episodes *avoid* each other (deflating them) — so these
  estimators carry a large, direction-unstable bias.  The bench (Ext-5)
  quantifies it.
* **Sample-resample** (Si & Callan, SIGIR 2003): pick a term from the
  sampled documents, ask the database how many documents match it (the
  "about N results" count every search service reports), and scale:
  ``N̂ = hits(t) · |sample| / df_sample(t)``.  Far more accurate,
  because it never needs the sample to be unbiased in *which* documents
  it contains — only representative in which *terms* it contains.

:func:`estimate_database_size` orchestrates either method end to end
against a live server.
"""

from repro.sizeest.capture import (
    CaptureRecaptureResult,
    collect_capture_samples,
    lincoln_petersen,
    schnabel,
    schumacher_eschmeyer,
)
from repro.sizeest.resample import SampleResampleEstimate, sample_resample
from repro.sizeest.orchestrate import capture_recapture_report, estimate_database_size

__all__ = [
    "CaptureRecaptureResult",
    "SampleResampleEstimate",
    "capture_recapture_report",
    "collect_capture_samples",
    "estimate_database_size",
    "lincoln_petersen",
    "sample_resample",
    "schnabel",
    "schumacher_eschmeyer",
]
