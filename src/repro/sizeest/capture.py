"""Capture-recapture estimators over document-id samples.

The ecology playbook: mark the fish you catch, release, catch again,
and infer the pond's population from how many marked fish reappear.
Here a "catch" is one query-based sampling run's set of document ids.

All estimators assume captures are independent and uniform.  Query-
based samples violate both assumptions — ranking bias makes popular
documents far more catchable, while topically divergent query sequences
make episodes avoid each other — so estimates carry a large bias whose
direction depends on which effect dominates.  That unreliability is a
*finding* (reproduced by benchmark Ext-5, and the reason sample-resample
won out in the literature), not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.utils.rand import derive_seed


@dataclass(frozen=True)
class CaptureRecaptureResult:
    """An estimate plus the sampling effort that produced it."""

    estimate: float
    num_samples: int
    documents_drawn: int
    distinct_documents: int


def lincoln_petersen(sample_a: set[str], sample_b: set[str]) -> float:
    """The two-sample Lincoln-Petersen estimator (Chapman-corrected).

    ``N̂ = (n₁+1)(n₂+1)/(m+1) - 1`` where ``m`` is the recapture count.
    The Chapman correction keeps the estimator finite when the samples
    do not overlap at all.
    """
    if not sample_a or not sample_b:
        raise ValueError("both samples must be non-empty")
    recaptured = len(sample_a & sample_b)
    return (len(sample_a) + 1) * (len(sample_b) + 1) / (recaptured + 1) - 1


def schnabel(samples: Sequence[set[str]]) -> float:
    """The Schnabel multi-sample estimator.

    ``N̂ = Σ_t C_t·M_t / (Σ_t R_t + 1)`` where, at sampling event *t*,
    ``C_t`` is the catch size, ``M_t`` the number of previously marked
    documents, and ``R_t`` the recaptures in the catch (the +1 is the
    usual bias correction).
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples")
    marked: set[str] = set()
    numerator = 0.0
    recaptures = 0
    for sample in samples:
        if not sample:
            raise ValueError("samples must be non-empty")
        numerator += len(sample) * len(marked)
        recaptures += len(sample & marked)
        marked |= sample
    return numerator / (recaptures + 1)


def schumacher_eschmeyer(samples: Sequence[set[str]]) -> float:
    """The Schumacher-Eschmeyer regression estimator.

    ``N̂ = Σ_t C_t·M_t² / Σ_t R_t·M_t`` — a least-squares fit of the
    recapture proportion against the marked fraction, more stable than
    Schnabel when catch sizes vary.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples")
    marked: set[str] = set()
    numerator = 0.0
    denominator = 0.0
    for sample in samples:
        if not sample:
            raise ValueError("samples must be non-empty")
        numerator += len(sample) * len(marked) ** 2
        denominator += len(sample & marked) * len(marked)
        marked |= sample
    if denominator == 0:
        raise ValueError("no recaptures: samples are disjoint, estimate undefined")
    return numerator / denominator


def collect_capture_samples(
    server,
    bootstrap: QueryTermSelector,
    num_samples: int = 4,
    docs_per_sample: int = 50,
    docs_per_query: int = 4,
    seed: int = 0,
) -> list[set[str]]:
    """Run ``num_samples`` independent sampling episodes; return id sets.

    Episodes differ only in their random seed, which changes the query
    sequence and therefore the documents captured.
    """
    if num_samples < 2:
        raise ValueError("need at least two capture samples")
    samples: list[set[str]] = []
    for index in range(num_samples):
        sampler = QueryBasedSampler(
            server,
            bootstrap=bootstrap,
            stopping=MaxDocuments(docs_per_sample),
            config=SamplerConfig(docs_per_query=docs_per_query),
            seed=derive_seed(seed, "capture", index),
        )
        run = sampler.run()
        samples.append({document.doc_id for document in run.documents})
    return samples
