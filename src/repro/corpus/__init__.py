"""Document collections.

The unit the paper samples is the *full-text document*; a database is a
corpus of them behind a search interface.  This package provides the
:class:`Document` and :class:`Corpus` containers, corpus statistics (the
rows of the paper's Table 1), file readers (JSONL, plain directories,
and TREC SGML so real TREC data can be dropped in where available), and
deterministic corpus partitioning used to build multi-database testbeds.
"""

from repro.corpus.collection import Corpus, CorpusStats
from repro.corpus.document import Document
from repro.corpus.readers import (
    read_directory,
    read_jsonl,
    read_trec_sgml,
    write_jsonl,
    write_trec_sgml,
)
from repro.corpus.split import partition_round_robin, partition_by_topic, partition_chunks

__all__ = [
    "Corpus",
    "CorpusStats",
    "Document",
    "partition_by_topic",
    "partition_chunks",
    "partition_round_robin",
    "read_directory",
    "read_jsonl",
    "read_trec_sgml",
    "write_jsonl",
    "write_trec_sgml",
]
