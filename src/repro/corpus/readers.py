"""Corpus readers and writers.

Three on-disk formats are supported:

* **JSONL** — one JSON object per line with ``doc_id``/``text`` and
  optional ``title``/``topic``.  The library's native interchange
  format; synthetic corpora round-trip through it.
* **Plain directories** — every ``*.txt`` file becomes a document whose
  id is the file stem.  Convenient for ad-hoc collections.
* **TREC SGML** — the ``<DOC><DOCNO>…`` format of the TREC CDs the paper
  used (WSJ88 and TREC-123 are distributed this way).  If a user has
  real TREC data, they can drop it in and rerun every experiment on it.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterator

from repro.corpus.collection import Corpus
from repro.corpus.document import Document

_DOC_PATTERN = re.compile(r"<DOC>(.*?)</DOC>", re.DOTALL | re.IGNORECASE)
_DOCNO_PATTERN = re.compile(r"<DOCNO>\s*(.*?)\s*</DOCNO>", re.DOTALL | re.IGNORECASE)
_TEXT_PATTERN = re.compile(r"<TEXT>(.*?)</TEXT>", re.DOTALL | re.IGNORECASE)
_TITLE_PATTERN = re.compile(r"<(?:HL|TITLE|HEAD)>(.*?)</(?:HL|TITLE|HEAD)>", re.DOTALL | re.IGNORECASE)
_TAG_PATTERN = re.compile(r"<[^>]+>")


def read_jsonl(path: str | Path, name: str | None = None) -> Corpus:
    """Load a corpus from a JSONL file."""
    path = Path(path)
    corpus = Corpus(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if "doc_id" not in record or "text" not in record:
                raise ValueError(f"{path}:{line_number}: record needs 'doc_id' and 'text'")
            corpus.add(
                Document(
                    doc_id=str(record["doc_id"]),
                    text=str(record["text"]),
                    title=str(record.get("title", "")),
                    topic=record.get("topic"),
                )
            )
    return corpus


def write_jsonl(corpus: Corpus, path: str | Path) -> None:
    """Write ``corpus`` to a JSONL file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for document in corpus:
            record: dict[str, object] = {"doc_id": document.doc_id, "text": document.text}
            if document.title:
                record["title"] = document.title
            if document.topic is not None:
                record["topic"] = document.topic
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")


def read_directory(path: str | Path, pattern: str = "*.txt", name: str | None = None) -> Corpus:
    """Load every file matching ``pattern`` under ``path`` as a document."""
    path = Path(path)
    if not path.is_dir():
        raise NotADirectoryError(f"{path} is not a directory")
    corpus = Corpus(name=name or path.name)
    for file_path in sorted(path.glob(pattern)):
        corpus.add(Document(doc_id=file_path.stem, text=file_path.read_text(encoding="utf-8")))
    return corpus


def _iter_trec_documents(raw: str) -> Iterator[Document]:
    for match in _DOC_PATTERN.finditer(raw):
        body = match.group(1)
        docno_match = _DOCNO_PATTERN.search(body)
        if docno_match is None:
            raise ValueError("TREC <DOC> block without <DOCNO>")
        doc_id = docno_match.group(1)
        text_match = _TEXT_PATTERN.search(body)
        if text_match is not None:
            text = text_match.group(1)
        else:
            # Some TREC sources put prose directly in the DOC body.
            text = _DOCNO_PATTERN.sub("", body)
        title_match = _TITLE_PATTERN.search(body)
        title = _TAG_PATTERN.sub(" ", title_match.group(1)).strip() if title_match else ""
        yield Document(doc_id=doc_id, text=_TAG_PATTERN.sub(" ", text).strip(), title=title)


def write_trec_sgml(corpus: Corpus, path: str | Path) -> None:
    """Write ``corpus`` as a TREC SGML file.

    The complement of :func:`read_trec_sgml`, so any corpus —
    including synthetic ones — can be exchanged with tools that speak
    the TREC CD format.  Topic labels have no TREC field and are not
    preserved; titles map to ``<HL>``.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for document in corpus:
            handle.write("<DOC>\n")
            handle.write(f"<DOCNO> {document.doc_id} </DOCNO>\n")
            if document.title:
                handle.write(f"<HL> {document.title} </HL>\n")
            handle.write("<TEXT>\n")
            handle.write(document.text)
            handle.write("\n</TEXT>\n</DOC>\n")


def read_trec_sgml(path: str | Path, name: str | None = None) -> Corpus:
    """Load a corpus from a TREC SGML file (or directory of them)."""
    path = Path(path)
    corpus = Corpus(name=name or path.stem)
    files = sorted(path.iterdir()) if path.is_dir() else [path]
    for file_path in files:
        if file_path.is_dir():
            continue
        raw = file_path.read_text(encoding="utf-8", errors="replace")
        for document in _iter_trec_documents(raw):
            corpus.add(document)
    return corpus
