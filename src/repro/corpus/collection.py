"""The :class:`Corpus` container and its statistics.

A :class:`Corpus` is an ordered, id-addressable collection of
:class:`~repro.corpus.document.Document` objects.  :class:`CorpusStats`
computes the quantities reported in the paper's Table 1 — size in
bytes, size in documents, unique terms, and total terms — under a given
analyzer, so the same corpus can be described both "raw" and "as
indexed".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.corpus.document import Document
from repro.text.analyzer import Analyzer


class Corpus:
    """An ordered collection of documents with O(1) id lookup."""

    def __init__(self, documents: Iterable[Document] = (), name: str = "corpus") -> None:
        self.name = name
        self._documents: list[Document] = []
        self._by_id: dict[str, int] = {}
        for document in documents:
            self.add(document)

    def add(self, document: Document) -> None:
        """Append ``document``; raises on duplicate ids."""
        if document.doc_id in self._by_id:
            raise ValueError(f"duplicate doc_id {document.doc_id!r} in corpus {self.name!r}")
        self._by_id[document.doc_id] = len(self._documents)
        self._documents.append(document)

    def get(self, doc_id: str) -> Document:
        """Return the document with ``doc_id`` (KeyError if absent)."""
        return self._documents[self._by_id[doc_id]]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def doc_ids(self) -> list[str]:
        """Document ids in corpus order."""
        return [document.doc_id for document in self._documents]

    def topics(self) -> set[str]:
        """The set of topic labels present (empty for unlabeled corpora)."""
        return {d.topic for d in self._documents if d.topic is not None}

    def stats(self, analyzer: Analyzer | None = None) -> "CorpusStats":
        """Compute Table 1-style statistics under ``analyzer``.

        With no analyzer, raw case-folded tokens are counted.
        """
        analyzer = analyzer or Analyzer.raw()
        vocabulary: set[str] = set()
        total_terms = 0
        total_bytes = 0
        for document in self._documents:
            terms = analyzer.analyze(document.text)
            vocabulary.update(terms)
            total_terms += len(terms)
            total_bytes += document.size_bytes
        return CorpusStats(
            name=self.name,
            size_bytes=total_bytes,
            num_documents=len(self._documents),
            unique_terms=len(vocabulary),
            total_terms=total_terms,
        )


@dataclass(frozen=True)
class CorpusStats:
    """One row of the paper's Table 1."""

    name: str
    size_bytes: int
    num_documents: int
    unique_terms: int
    total_terms: int

    @property
    def mean_document_length(self) -> float:
        """Average terms per document (0.0 for an empty corpus)."""
        if self.num_documents == 0:
            return 0.0
        return self.total_terms / self.num_documents

    def as_row(self) -> dict[str, object]:
        """Render as a Table 1 row dictionary."""
        return {
            "name": self.name,
            "size_bytes": self.size_bytes,
            "size_documents": self.num_documents,
            "size_unique_terms": self.unique_terms,
            "size_total_terms": self.total_terms,
        }
