"""The :class:`Document` value object."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Document:
    """A full-text document.

    Parameters
    ----------
    doc_id:
        Stable unique identifier within its corpus.
    text:
        The full body text.  This is what a database returns to the
        sampling client, and the only thing the client may analyze.
    title:
        Optional display title.
    topic:
        Optional topic label.  Synthetic generators record the topic a
        document was drawn from; the selection-accuracy extension
        experiment uses it as a relevance oracle.  Real corpora leave it
        ``None``.
    """

    doc_id: str
    text: str
    title: str = ""
    topic: str | None = None
    metadata: dict[str, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")

    @property
    def size_bytes(self) -> int:
        """UTF-8 size of the document body (Table 1's byte accounting)."""
        return len(self.text.encode("utf-8"))

    def __len__(self) -> int:
        return len(self.text)
