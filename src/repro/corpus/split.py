"""Deterministic corpus partitioning.

Multi-database experiments (the selection-accuracy extension, and any
user building a federated testbed) need one big corpus split into many
databases.  Three standard TREC-testbed splits are provided:

* **round-robin** — documents dealt to ``k`` databases in turn, giving
  content-homogeneous databases of near-equal size;
* **chunks** — contiguous slices, mimicking "by source/date" splits;
* **by topic** — one database per topic label, giving topically skewed
  databases, the regime where database selection is interesting.
"""

from __future__ import annotations

from collections import defaultdict

from repro.corpus.collection import Corpus


def partition_round_robin(corpus: Corpus, k: int, prefix: str | None = None) -> list[Corpus]:
    """Deal documents to ``k`` corpora in round-robin order."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    prefix = prefix or corpus.name
    parts = [Corpus(name=f"{prefix}-rr{i}") for i in range(k)]
    for index, document in enumerate(corpus):
        parts[index % k].add(document)
    return parts


def partition_chunks(corpus: Corpus, k: int, prefix: str | None = None) -> list[Corpus]:
    """Split into ``k`` contiguous, near-equal chunks."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    prefix = prefix or corpus.name
    n = len(corpus)
    parts = []
    start = 0
    for i in range(k):
        end = start + (n - start) // (k - i)
        part = Corpus((corpus[j] for j in range(start, end)), name=f"{prefix}-chunk{i}")
        parts.append(part)
        start = end
    return parts


def partition_by_topic(corpus: Corpus, prefix: str | None = None) -> list[Corpus]:
    """One corpus per topic label, sorted by topic name.

    Documents without a topic label go to a ``-misc`` corpus.
    """
    prefix = prefix or corpus.name
    buckets: dict[str, list] = defaultdict(list)
    for document in corpus:
        buckets[document.topic if document.topic is not None else "misc"].append(document)
    return [
        Corpus(documents, name=f"{prefix}-{topic}")
        for topic, documents in sorted(buckets.items())
    ]
