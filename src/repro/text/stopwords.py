"""An Inquery-style stoplist.

The paper's databases all use "the default stopword list of the Inquery
IR system, which contained 418 very frequent and/or closed-class words"
(Section 4.1).  The original list is not reprinted in the paper, so this
module provides a list of the same size (exactly 418 words) and the same
character: closed-class English function words plus a handful of very
frequent general verbs and quantifiers.

The synthetic corpus generator (:mod:`repro.synth`) places these words
at the top of its frequency distribution, so the interplay the paper
relies on — stopwords dominate raw text but are excluded from language
model comparisons — is reproduced faithfully.
"""

from __future__ import annotations

_STOPWORD_TEXT = """
a able about above according across actually after afterwards again against all almost alone along
already also although always am among amongst an and another any anybody anyhow anyone anything
anyway anywhere are around as aside ask asked asks at away b back be became because become becomes
becoming been before beforehand began begin beginning begins behind being below beside besides best
better between beyond both but by c came can cannot cant certain certainly come comes could d did
do does doing done down downwards during e each either else elsewhere ends enough especially etc
even ever every everybody everyone everything everywhere example except f far few fewer following
for former formerly forth found from further furthermore g gave get gets getting give given gives
go goes going gone got gotten h had hardly has have having he hence her here hereafter hereby
herein hereupon hers herself him himself his hither how however i if in indeed instead into inward
is it its itself j just k keep kept know known l largely last lately later latter latterly least
less lest let lets like likely little m made mainly make makes making many may maybe me meanwhile
might mine more moreover most mostly much must my myself n namely near nearly necessary neither
never nevertheless next no nobody none nonetheless noone nor not nothing now nowhere o of off
often oh on once one ones only onto or other others otherwise ought our ours ourselves out outside
over overall own p particular particularly per perhaps please plus possible probably q quite r
rather really regarding relatively respectively right s said same say saying says second see seem
seemed seeming seems seen several shall she should since so some somebody somehow someone something
sometime sometimes somewhat somewhere soon still such sure t take taken taking tell than that the
their theirs them themselves then thence there thereafter thereby therefore therein thereupon
these they thing things think third this thorough thoroughly those though three through throughout
thru thus to together too took toward towards tried tries truly try trying twice two u under
unless unlike unlikely until unto up upon us use used useful uses using usually v various very via
viz vs w want wants was way we well went were what whatever when whence whenever where whereafter
whereas whereby wherein whereupon wherever whether which while whither who whoever whole whom whose
why will with within without would x y yes yet you your yours yourself yourselves z
"""

#: The 418-word default stoplist, mirroring Inquery's list size.
INQUERY_STOPWORDS: frozenset[str] = frozenset(_STOPWORD_TEXT.split())


def is_stopword(term: str) -> bool:
    """True if ``term`` (case-insensitively) is on the default stoplist."""
    return term.lower() in INQUERY_STOPWORDS
