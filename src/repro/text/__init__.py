"""Text analysis substrate.

Reproduces the indexing machinery the paper takes for granted: a
tokenizer, an Inquery-style stoplist, the Porter stemmer, and an
:class:`Analyzer` pipeline that composes them.  Two independent
analyzers matter in this system:

* the **database's analyzer** (typically stopping + stemming, mimicking
  Inquery's index) defines the *actual* language model, and
* the **sampling client's analyzer** (typically neither) defines the
  *learned* language model built from retrieved raw document text.

Keeping them separate reproduces the paper's premise that every remote
database indexes its own way and the selection service cannot rely on
any of it (Sections 2.2 and 4.1).
"""

from repro.text.analyzer import Analyzer
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import INQUERY_STOPWORDS, is_stopword
from repro.text.tokenizer import Tokenizer, tokenize

__all__ = [
    "Analyzer",
    "INQUERY_STOPWORDS",
    "PorterStemmer",
    "Tokenizer",
    "is_stopword",
    "stem",
    "tokenize",
]
