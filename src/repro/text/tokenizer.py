"""Tokenization and case folding.

The paper's databases are full-text IR systems; their index terms are
lower-cased words.  The tokenizer here is deliberately simple and
deterministic: maximal runs of ASCII letters and digits, lower-cased,
with optional filters for minimum length and purely numeric tokens.

The same class serves two roles with different settings:

* indexing a database (keep everything, including numbers, so the
  *actual* language model is faithful to the raw text), and
* screening candidate *query* terms, where the paper requires terms of
  3+ characters that are not numbers (Section 4.4) — that rule lives in
  :mod:`repro.sampling.selection`, built on :func:`Tokenizer.is_word`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")
_NUMERIC_PATTERN = re.compile(r"^[0-9]+$")


def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` with default settings (lowercase word/number runs)."""
    return Tokenizer().tokenize(text)


@dataclass(frozen=True)
class Tokenizer:
    """Configurable regex tokenizer.

    Parameters
    ----------
    lowercase:
        Fold tokens to lower case (on by default; every system in the
        paper case-folds).
    min_length:
        Drop tokens shorter than this many characters.
    drop_numeric:
        Drop tokens consisting solely of digits.
    """

    lowercase: bool = True
    min_length: int = 1
    drop_numeric: bool = False

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens of ``text`` one at a time."""
        for match in _TOKEN_PATTERN.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if len(token) < self.min_length:
                continue
            if self.drop_numeric and _NUMERIC_PATTERN.match(token):
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens of ``text``."""
        return list(self.iter_tokens(text))

    @staticmethod
    def is_numeric(token: str) -> bool:
        """True if ``token`` consists solely of digits."""
        return bool(_NUMERIC_PATTERN.match(token))

    @staticmethod
    def is_word(token: str) -> bool:
        """True if ``token`` is a single well-formed token (no spaces/punct)."""
        match = _TOKEN_PATTERN.fullmatch(token)
        return match is not None
