"""Tokenization and case folding.

The paper's databases are full-text IR systems; their index terms are
lower-cased words.  The tokenizer here is deliberately simple and
deterministic: maximal runs of ASCII letters and digits, lower-cased,
with optional filters for minimum length and purely numeric tokens.

The same class serves two roles with different settings:

* indexing a database (keep everything, including numbers, so the
  *actual* language model is faithful to the raw text), and
* screening candidate *query* terms, where the paper requires terms of
  3+ characters that are not numbers (Section 4.4) — that rule lives in
  :mod:`repro.sampling.selection`, built on :func:`Tokenizer.is_word`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")
_NUMERIC_PATTERN = re.compile(r"^[0-9]+$")


def _byte_table(lowercase: bool) -> bytes:
    """A 256-entry translate table isolating ``[A-Za-z0-9]+`` runs.

    Every byte outside the ASCII alphanumerics maps to a space, so
    ``bytes.translate(table).split()`` yields exactly the token runs of
    :data:`_TOKEN_PATTERN`; with ``lowercase`` the table also folds
    ``A-Z`` to ``a-z`` in the same pass.
    """
    table = bytearray(b" " * 256)
    for code in range(128):
        char = chr(code)
        if char.isalnum():
            table[code] = ord(char.lower()) if lowercase else code
    return bytes(table)


_FOLD_TABLE = _byte_table(lowercase=True)
_PLAIN_TABLE = _byte_table(lowercase=False)


def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` with default settings (lowercase word/number runs)."""
    return Tokenizer().tokenize(text)


@dataclass(frozen=True)
class Tokenizer:
    """Configurable regex tokenizer.

    Parameters
    ----------
    lowercase:
        Fold tokens to lower case (on by default; every system in the
        paper case-folds).
    min_length:
        Drop tokens shorter than this many characters.
    drop_numeric:
        Drop tokens consisting solely of digits.
    """

    lowercase: bool = True
    min_length: int = 1
    drop_numeric: bool = False

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens of ``text`` one at a time."""
        for match in _TOKEN_PATTERN.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if len(token) < self.min_length:
                continue
            if self.drop_numeric and _NUMERIC_PATTERN.match(token):
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens of ``text``.

        Produces exactly the tokens of :meth:`iter_tokens`, but via a
        single C-level ``findall`` plus bulk filters rather than a
        per-token generator — the hot path for index construction and
        document ingestion.
        """
        tokens = _TOKEN_PATTERN.findall(text)
        if self.lowercase:
            tokens = list(map(str.lower, tokens))
        if self.min_length > 1:
            min_length = self.min_length
            tokens = [token for token in tokens if len(token) >= min_length]
        if self.drop_numeric:
            numeric = _NUMERIC_PATTERN.match
            tokens = [token for token in tokens if not numeric(token)]
        return tokens

    def raw_tokens(self, text: str) -> list[str]:
        """The unnormalized token runs of ``text`` (no case folding or filters).

        Batch consumers (the index builder) pair this with
        :meth:`normalize` so each *distinct* raw token is normalized
        once instead of once per occurrence.
        """
        return _TOKEN_PATTERN.findall(text)

    def token_bytes(self, text: str) -> list[bytes]:
        """The token runs of ``text`` as ASCII byte strings, case-folded.

        The bulk-ingestion counterpart of :meth:`raw_tokens`: one
        ``encode`` / ``translate`` / ``split`` pipeline, all C-level,
        instead of a regex scan.  Token boundaries are identical to
        :data:`_TOKEN_PATTERN` — the translate table maps every
        non-alphanumeric byte to a space, and non-ASCII characters
        (token boundaries to the ASCII-only pattern) encode to ``"?"``,
        also a boundary.  Case folding (when ``lowercase`` is set)
        happens in the same table, so ``token.decode("ascii")`` on each
        result equals the corresponding :meth:`raw_tokens` token after
        the lowercase step of :meth:`normalize`.  Length and numeric
        filters still apply downstream via :meth:`normalize`.
        """
        table = _FOLD_TABLE if self.lowercase else _PLAIN_TABLE
        return text.encode("ascii", "replace").translate(table).split()

    def normalize(self, token: str) -> str | None:
        """Apply this tokenizer's per-token normalization and filters.

        Exactly the per-token step of :meth:`iter_tokens` for a token
        already produced by :meth:`raw_tokens`; ``None`` if the token is
        filtered out (too short, or numeric under ``drop_numeric``).
        """
        if self.lowercase:
            token = token.lower()
        if len(token) < self.min_length:
            return None
        if self.drop_numeric and _NUMERIC_PATTERN.match(token):
            return None
        return token

    @staticmethod
    def is_numeric(token: str) -> bool:
        """True if ``token`` consists solely of digits."""
        return bool(_NUMERIC_PATTERN.match(token))

    @staticmethod
    def is_word(token: str) -> bool:
        """True if ``token`` is a single well-formed token (no spaces/punct)."""
        match = _TOKEN_PATTERN.fullmatch(token)
        return match is not None
