"""The :class:`Analyzer` pipeline: tokenize → stop → stem.

An analyzer turns raw document text into the index terms a particular
system would store.  The library instantiates at least two per
experiment:

* ``Analyzer.inquery_style()`` — stopword removal + Porter stemming,
  used by :class:`repro.index.DatabaseServer` to build each database's
  *actual* index and language model, mimicking the paper's Inquery
  configuration (Section 4.1); and
* ``Analyzer.raw()`` — case-folded tokens only, used by the sampling
  client to build the *learned* language model from retrieved text
  ("Stopwords were not discarded … Suffixes were not removed").

:meth:`Analyzer.project_term` supports the paper's comparison protocol:
before scoring, learned terms are stemmed and server-side stopwords are
dropped so both models speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.text.stemmer import PorterStemmer, stem as _cached_stem
from repro.text.stopwords import INQUERY_STOPWORDS
from repro.text.tokenizer import Tokenizer

#: Sentinel distinguishing "never analyzed" from a memoized ``None``.
_UNSEEN: Any = object()


@dataclass(frozen=True)
class Analyzer:
    """A text-to-index-terms pipeline.

    Parameters
    ----------
    tokenizer:
        The tokenizer producing candidate terms.
    stopwords:
        Terms removed after tokenization (empty set disables stopping).
    stem:
        Apply the Porter stemmer to surviving terms.
    """

    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    stopwords: frozenset[str] = frozenset()
    stem: bool = False

    _stemmer: PorterStemmer = field(default_factory=PorterStemmer, repr=False, compare=False)
    # Memo of token -> analyzed term (None: stopped), shared across all
    # analyze() calls on this instance.  Stopping and stemming depend
    # only on the token, so entries never change once computed; a
    # concurrent duplicate computation is benign (idempotent value).
    _token_memo: dict[str, str | None] = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def inquery_style(cls) -> "Analyzer":
        """Stopping + stemming, as the paper's databases index."""
        return cls(stopwords=INQUERY_STOPWORDS, stem=True)

    @classmethod
    def raw(cls) -> "Analyzer":
        """Case-folded tokens only — the sampling client's view."""
        return cls()

    @classmethod
    def stopped(cls) -> "Analyzer":
        """Stopword removal without stemming (used by summarization)."""
        return cls(stopwords=INQUERY_STOPWORDS)

    def analyze(self, text: str) -> list[str]:
        """Return the index terms of ``text``."""
        tokens = self.tokenizer.tokenize(text)
        if not self.stopwords and not self.stem:
            # The raw pipeline is the identity on tokens — the sampling
            # client's hot path costs one findall, nothing per token.
            return tokens
        memo = self._token_memo
        memo_get = memo.get
        terms = []
        append = terms.append
        for token in tokens:
            term = memo_get(token, _UNSEEN)
            if term is _UNSEEN:
                term = memo[token] = self.analyze_token(token)
            if term is not None:
                append(term)
        return terms

    def analyze_token(self, token: str) -> str | None:
        """Map one token already produced by this analyzer's tokenizer.

        Exactly the per-token step of :meth:`analyze` (no case folding
        — the tokenizer owns that); ``None`` if the token is stopped.
        Lets batch consumers like the index builder analyze each
        distinct token once instead of once per occurrence.
        """
        if token in self.stopwords:
            return None
        if self.stem:
            return _cached_stem(token)
        return token

    def project_term(self, term: str) -> str | None:
        """Map a single already-tokenized ``term`` through this pipeline.

        Returns ``None`` if the term would be discarded (stopword).  Used
        to project a learned vocabulary into a database's term space for
        fair comparison (paper Section 4.1).
        """
        term = term.lower()
        if term in self.stopwords:
            return None
        if self.stem:
            term = _cached_stem(term)
        return term
