"""The Porter stemming algorithm.

A faithful implementation of M. F. Porter's 1980 suffix-stripping
algorithm ("An algorithm for suffix stripping", *Program* 14(3)).  The
paper's databases index stemmed terms, and the evaluation protocol stems
the learned vocabulary before comparing it to the actual one (Section
4.1), so the stemmer is load-bearing for every metric in the repo.

The implementation follows the original paper's five steps.  Notation:
a *consonant* (c) is a letter other than a, e, i, o, u, and other than y
preceded by a consonant; anything else is a *vowel* (v).  Every word has
the form ``[C](VC){m}[V]`` where ``m`` is the word's *measure*.
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` or the module function."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lower-cased first)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- character classification ------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The m in [C](VC){m}[V]: the number of VC sequences."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem)):
            is_cons = cls._is_consonant(stem, i)
            if is_cons and previous_was_vowel:
                m += 1
            previous_was_vowel = not is_cons
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """consonant-vowel-consonant ending where the final consonant
        is not w, x, or y — the *o* condition of the original paper."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- rule application ---------------------------------------------------

    @classmethod
    def _replace(cls, word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
        """If ``word`` ends with ``suffix`` and the remaining stem has
        measure > ``min_measure``, return the rewritten word, else None."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if cls._measure(stem) > min_measure:
            return stem + replacement
        return word  # suffix matched but condition failed: rule consumed

    # -- steps --------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion"):
            stem = word[:-3]
            if stem.endswith(("s", "t")) and self._measure(stem) > 1:
                return stem
            # fall through to plain suffixes only if "ion" itself is not
            # matched by a longer suffix below ("ation" handled in step 2)
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1:
                return stem
            if m == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if word.endswith("ll") and self._measure(word) > 1:
            return word[:-1]
        return word


_DEFAULT = PorterStemmer()


@lru_cache(maxsize=1_000_000)
def stem(word: str) -> str:
    """Stem ``word`` with a shared default :class:`PorterStemmer`.

    Memoized: corpora contain each distinct word many times, and the
    stemmer is by far the hottest function during indexing.
    """
    return _DEFAULT.stem(word)
