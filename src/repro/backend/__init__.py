"""Typed backend protocols: the seam between clients and databases.

The paper's architecture rests on one assumption about a remote text
database: *"each database is capable of running queries and returning
documents that match the queries"* (Section 3).  Everything the repo
builds — sampling, size estimation, staleness probing, federation —
talks to databases through that narrow surface, and richer behaviour
(cooperative STARTS exports, evaluation-only ground truth) is layered
on top as optional capabilities.

This package makes those capability tiers *explicit* as
:class:`typing.Protocol` types, so every consumer annotates against an
interface instead of a concrete class or ad-hoc duck typing:

* :class:`SearchableDatabase` — ``run_query``; the minimal surface the
  paper assumes, and all a :class:`~repro.sampling.sampler.QueryBasedSampler`
  may use.
* :class:`HitCountingDatabase` — adds ``hit_count`` ("about N
  results"), the observable the sample–resample size estimator
  (:mod:`repro.sizeest`) is built on.
* :class:`CooperativeDatabase` — adds ``starts_export``, the
  cooperative-protocol route of :mod:`repro.starts`.
* :class:`EvaluableDatabase` — adds ground truth
  (``actual_language_model`` / ``num_documents``); the experiment
  harness scores against it, a sampler must never touch it.

All protocols are ``runtime_checkable``, so a service can validate the
objects handed to it at construction time (:func:`require_searchable`)
instead of failing deep inside a query.  Wrappers that interpose on the
seam — fault injectors, retrying clients, future caches and shards —
satisfy :class:`SearchableDatabase` themselves, which is what makes
them freely composable and observable (see :mod:`repro.obs`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.corpus.document import Document
from repro.lm.model import LanguageModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.search import SearchEngine

__all__ = [
    "CooperativeDatabase",
    "EvaluableDatabase",
    "HitCountingDatabase",
    "RetrievableDatabase",
    "SearchableDatabase",
    "backend_capabilities",
    "missing_capabilities",
    "require_searchable",
]


@runtime_checkable
class SearchableDatabase(Protocol):
    """The minimal database surface the paper assumes (Section 3).

    ``run_query`` may raise any
    :class:`~repro.sampling.transport.ServerError` — remote databases
    fail.  The sampler records such queries as failed instead of
    crashing, and stops with ``"database_unreachable"`` when the error
    signals the database is gone for good (a
    :class:`~repro.sampling.transport.CircuitOpenError`, or a wrapper
    whose ``unreachable`` attribute is true).
    """

    def run_query(self, query: str, max_docs: int) -> list[Document]:
        """Run a query; return up to ``max_docs`` full documents."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class HitCountingDatabase(SearchableDatabase, Protocol):
    """A searchable database that also reports match counts.

    Most real search services show "about N results" next to the
    result list; it is part of the observable search surface, not
    ground-truth access.
    """

    def hit_count(self, query: str) -> int:
        """Number of documents matching ``query``."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class CooperativeDatabase(SearchableDatabase, Protocol):
    """A searchable database that can export its own statistics.

    ``starts_export`` returns a STARTS-style text export of the
    database's (claimed) language model.  It may raise
    :class:`~repro.starts.servers.CooperationRefused` — cooperation is
    optional, and the export may even be forged
    (:class:`~repro.starts.servers.MisrepresentingServer`); acquisition
    policies decide how much to trust it.
    """

    def starts_export(self) -> str:
        """The database's own (claimed) STARTS export."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class RetrievableDatabase(SearchableDatabase, Protocol):
    """A searchable database whose ranked-retrieval engine is reachable.

    Federated *search* (as opposed to sampling) issues full ranked
    queries and merges the scored results; that needs the database's
    :class:`~repro.index.search.SearchEngine`, a strictly richer
    surface than ``run_query``.  A service validates this capability
    lazily — only databases actually selected for retrieval need it.
    """

    @property
    def engine(self) -> "SearchEngine":
        """The database's ranked-retrieval engine."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class EvaluableDatabase(SearchableDatabase, Protocol):
    """A searchable database whose ground truth is inspectable.

    Only the experiment harness may use these members — they exist so
    learned models can be scored, never so samplers can cheat.
    """

    def actual_language_model(self) -> LanguageModel:
        """The database's true language model (its index)."""
        ...  # pragma: no cover - protocol

    @property
    def num_documents(self) -> int:
        """True corpus size."""
        ...  # pragma: no cover - protocol


#: The member names behind each optional capability tier.
_CAPABILITY_MEMBERS: dict[str, tuple[str, ...]] = {
    "searchable": ("run_query",),
    "hit_counting": ("hit_count",),
    "cooperative": ("starts_export",),
    "retrievable": ("engine",),
    "evaluable": ("actual_language_model", "num_documents"),
}


def missing_capabilities(obj: object, protocol: type) -> list[str]:
    """Member names ``obj`` lacks for ``protocol`` (empty = conforms).

    Runtime protocol checks only confirm member *presence*; this helper
    names what is absent, for error messages that say more than
    "isinstance failed".
    """
    required: tuple[str, ...]
    if protocol is SearchableDatabase:
        required = _CAPABILITY_MEMBERS["searchable"]
    elif protocol is HitCountingDatabase:
        required = _CAPABILITY_MEMBERS["searchable"] + _CAPABILITY_MEMBERS["hit_counting"]
    elif protocol is CooperativeDatabase:
        required = _CAPABILITY_MEMBERS["searchable"] + _CAPABILITY_MEMBERS["cooperative"]
    elif protocol is RetrievableDatabase:
        required = _CAPABILITY_MEMBERS["searchable"] + _CAPABILITY_MEMBERS["retrievable"]
    elif protocol is EvaluableDatabase:
        required = _CAPABILITY_MEMBERS["searchable"] + _CAPABILITY_MEMBERS["evaluable"]
    else:
        raise TypeError(f"not a backend protocol: {protocol!r}")
    return [name for name in required if not hasattr(obj, name)]


def backend_capabilities(obj: object) -> tuple[str, ...]:
    """The capability tiers ``obj`` satisfies, in a stable order."""
    tiers = []
    if isinstance(obj, SearchableDatabase):
        tiers.append("searchable")
    if isinstance(obj, HitCountingDatabase):
        tiers.append("hit_counting")
    if isinstance(obj, CooperativeDatabase):
        tiers.append("cooperative")
    if isinstance(obj, RetrievableDatabase):
        tiers.append("retrievable")
    if isinstance(obj, EvaluableDatabase):
        tiers.append("evaluable")
    return tuple(tiers)


def require_searchable(obj: object, name: str | None = None) -> SearchableDatabase:
    """Validate that ``obj`` satisfies :class:`SearchableDatabase`.

    Raises a ``TypeError`` naming the offending object and the member
    it lacks, so misconfigured services fail at construction instead of
    deep inside a query.  Returns ``obj`` (narrowed) on success.
    """
    if isinstance(obj, SearchableDatabase):
        return obj
    label = name or getattr(obj, "name", None) or type(obj).__name__
    missing = missing_capabilities(obj, SearchableDatabase)
    raise TypeError(
        f"database {label!r} ({type(obj).__name__}) does not satisfy "
        f"SearchableDatabase: missing {', '.join(missing)}"
    )
