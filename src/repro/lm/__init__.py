"""Language models and the paper's evaluation metrics.

A *language model* in this paper's sense (Section 2.1) is a partial
representation of a full-text database: its vocabulary plus frequency
statistics — document frequency (df) and collection term frequency
(ctf).  :class:`LanguageModel` supports incremental construction from
sampled documents, merging (the union-of-samples of Section 8),
projection through an analyzer (the comparison protocol of Section
4.1), and a Lemur-style text serialization.

:mod:`repro.lm.compare` implements the paper's metrics: *percentage
learned* and *ctf ratio* for vocabulary (Sections 4.3.1-4.3.2), the
*Spearman rank correlation coefficient* for frequency information
(Section 4.3.3), and *rdiff*, the paper's new convergence metric
(Section 6).
"""

from repro.lm.calibrate import scale_to_collection
from repro.lm.compare import (
    ctf_ratio,
    percentage_learned,
    rank_terms,
    rdiff,
    spearman_rank_correlation,
)
from repro.lm.io import (
    dumps_language_model,
    load_language_model,
    loads_language_model,
    save_language_model,
)
from repro.lm.model import LanguageModel, TermStats
from repro.lm.ngrams import bigram_model_from_documents, bigrams, split_bigram
from repro.lm.shrinkage import shrink, shrink_all

__all__ = [
    "LanguageModel",
    "TermStats",
    "bigram_model_from_documents",
    "bigrams",
    "ctf_ratio",
    "dumps_language_model",
    "load_language_model",
    "loads_language_model",
    "percentage_learned",
    "rank_terms",
    "rdiff",
    "save_language_model",
    "scale_to_collection",
    "shrink",
    "shrink_all",
    "spearman_rank_correlation",
    "split_bigram",
]
