"""The :class:`LanguageModel` data structure.

Stores per-term document frequency (df — how many seen documents
contain the term) and collection term frequency (ctf — total
occurrences), plus how many documents and tokens the model was built
from.  Both *actual* models (exported from an index) and *learned*
models (accumulated from sampled documents) use this one class, so
every metric compares like with like.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from itertools import chain, islice
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class TermStats:
    """Frequency statistics for one term."""

    term: str
    df: int
    ctf: int

    @property
    def avg_tf(self) -> float:
        """Average within-document frequency, ``ctf / df`` (paper §5.2)."""
        if self.df == 0:
            return 0.0
        return self.ctf / self.df


class LanguageModel:
    """A vocabulary with df/ctf statistics, built incrementally.

    Parameters
    ----------
    name:
        Label used in reports and serialization.
    """

    def __init__(self, name: str = "lm") -> None:
        self.name = name
        self._df: dict[str, int] = {}
        self._ctf: dict[str, int] = {}
        # Running Σ ctf, maintained by every mutator so total_ctf is
        # O(1) — ctf_ratio calls it once per metric evaluation.
        self._total_ctf: int = 0
        #: Number of documents folded into the model.
        self.documents_seen: int = 0
        #: Number of tokens folded into the model.
        self.tokens_seen: int = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_statistics(
        cls,
        name: str,
        terms: Sequence[str],
        dfs: np.ndarray | Sequence[int],
        ctfs: np.ndarray | Sequence[int],
    ) -> "LanguageModel":
        """Build a model from parallel term/df/ctf arrays in one shot.

        The bulk equivalent of an :meth:`add_term` loop (validation
        vectorized, dicts built by ``zip``), used by
        :meth:`repro.index.InvertedIndex.language_model` to export an
        index's statistics without touching each term individually.
        ``documents_seen`` / ``tokens_seen`` are left at zero for the
        caller to set.
        """
        df_array = np.asarray(dfs, dtype=np.int64)
        ctf_array = np.asarray(ctfs, dtype=np.int64)
        if not (len(terms) == df_array.size == ctf_array.size):
            raise ValueError("terms, dfs, and ctfs must be parallel")
        if (df_array < 0).any() or (ctf_array < 0).any():
            raise ValueError("df and ctf must be non-negative")
        if (df_array > ctf_array).any():
            bad = int(np.argmax(df_array > ctf_array))
            raise ValueError(
                f"df ({int(df_array[bad])}) cannot exceed ctf "
                f"({int(ctf_array[bad])}) for {terms[bad]!r}"
            )
        model = cls(name=name)
        model._df = dict(zip(terms, df_array.tolist()))
        model._ctf = dict(zip(terms, ctf_array.tolist()))
        if len(model._df) != len(terms):
            raise ValueError("terms must be distinct")
        model._total_ctf = int(ctf_array.sum())
        return model

    def add_term(self, term: str, df: int, ctf: int) -> None:
        """Accumulate statistics for one term."""
        if df < 0 or ctf < 0:
            raise ValueError("df and ctf must be non-negative")
        if df > ctf:
            raise ValueError(f"df ({df}) cannot exceed ctf ({ctf}) for {term!r}")
        self._df[term] = self._df.get(term, 0) + df
        self._ctf[term] = self._ctf.get(term, 0) + ctf
        self._total_ctf += ctf

    def add_document(self, terms: Iterable[str]) -> None:
        """Fold one document's terms into the model.

        ``terms`` is the document's token sequence *after* the client's
        analyzer; each distinct term gains df 1 and ctf equal to its
        occurrence count.
        """
        counts = Counter(terms)
        for term, count in counts.items():
            self._df[term] = self._df.get(term, 0) + 1
            self._ctf[term] = self._ctf.get(term, 0) + count
        tokens = sum(counts.values())
        self._total_ctf += tokens
        self.documents_seen += 1
        self.tokens_seen += tokens

    def add_documents(self, documents: Iterable[Sequence[str]]) -> None:
        """Fold a batch of documents' term sequences into the model.

        Statistically identical to calling :meth:`add_document` once
        per member (each document contributes df 1 and ctf equal to its
        occurrence count for every distinct term; empty documents still
        count toward ``documents_seen``), but the counting is done in
        bulk at C level: one ``Counter`` pass over the concatenated
        stream yields every ctf increment, and one ``Counter`` pass
        over the per-document distinct-term streams
        (``dict.fromkeys`` per document) yields every df increment —
        python-level work is one dict update per *distinct* term in the
        batch rather than per (document, term) pair.  String counting
        is hash-bound, so this C-level formulation beats both the
        per-document loop and an ``np.unique``-based variant (string
        arrays sort far slower than they hash).  The scalar loop
        survives as :func:`repro.index.reference.add_documents_scalar`,
        the equivalence reference.
        """
        doc_lists = [terms if isinstance(terms, list) else list(terms) for terms in documents]
        num_docs = len(doc_lists)
        if num_docs == 0:
            return
        ctf_added = Counter(chain.from_iterable(doc_lists))
        if not ctf_added:
            self.documents_seen += num_docs
            return
        df_added = Counter(chain.from_iterable(map(dict.fromkeys, doc_lists)))
        df_get = self._df.get
        ctf_get = self._ctf.get
        for term, ctf in ctf_added.items():
            self._df[term] = df_get(term, 0) + df_added[term]
            self._ctf[term] = ctf_get(term, 0) + ctf
        total = sum(map(len, doc_lists))
        self._total_ctf += total
        self.documents_seen += num_docs
        self.tokens_seen += total

    def merge(self, other: "LanguageModel") -> "LanguageModel":
        """Return a new model combining this one with ``other``.

        Statistics add; this is the "union of samples" of the paper's
        Section 8 (it assumes the two models saw disjoint documents).
        """
        merged = LanguageModel(name=f"{self.name}+{other.name}")
        for model in (self, other):
            for term in model._df:
                merged.add_term(term, df=model._df[term], ctf=model._ctf[term])
        merged.documents_seen = self.documents_seen + other.documents_seen
        merged.tokens_seen = self.tokens_seen + other.tokens_seen
        return merged

    def copy(self, name: str | None = None) -> "LanguageModel":
        """Deep copy (used for convergence snapshots)."""
        duplicate = LanguageModel(name=name or self.name)
        duplicate._df = dict(self._df)
        duplicate._ctf = dict(self._ctf)
        duplicate._total_ctf = self._total_ctf
        duplicate.documents_seen = self.documents_seen
        duplicate.tokens_seen = self.tokens_seen
        return duplicate

    def project(self, analyzer: Analyzer, name: str | None = None) -> "LanguageModel":
        """Map this model's vocabulary through ``analyzer``.

        Used by the comparison protocol of Section 4.1: project the
        *learned* (raw-token) model through the database's pipeline so
        stopwords drop out and suffix variants conflate.  Conflated
        variants' df values add, which can overcount documents that
        contained several variants — an approximation inherent in
        comparing models built under different pipelines, and the same
        one the paper makes.
        """
        projected = LanguageModel(name=name or f"{self.name}-projected")
        for term, df in self._df.items():
            mapped = analyzer.project_term(term)
            if mapped is None:
                continue
            projected.add_term(mapped, df=df, ctf=self._ctf[term])
        projected.documents_seen = self.documents_seen
        projected.tokens_seen = self.tokens_seen
        return projected

    def restricted_to(self, terms: Iterable[str], name: str | None = None) -> "LanguageModel":
        """Return a copy containing only ``terms`` that the model knows."""
        restricted = LanguageModel(name=name or f"{self.name}-restricted")
        for term in terms:
            if term in self._df:
                restricted.add_term(term, df=self._df[term], ctf=self._ctf[term])
        restricted.documents_seen = self.documents_seen
        restricted.tokens_seen = self.tokens_seen
        return restricted

    # -- queries ----------------------------------------------------------------

    def df(self, term: str) -> int:
        """Document frequency of ``term`` (0 if unknown)."""
        return self._df.get(term, 0)

    def ctf(self, term: str) -> int:
        """Collection term frequency of ``term`` (0 if unknown)."""
        return self._ctf.get(term, 0)

    def avg_tf(self, term: str) -> float:
        """Average term frequency ``ctf / df`` (0.0 if unknown)."""
        df = self._df.get(term, 0)
        if df == 0:
            return 0.0
        return self._ctf[term] / df

    def stats(self, term: str) -> TermStats:
        """Full :class:`TermStats` for ``term`` (zeros if unknown)."""
        return TermStats(term=term, df=self._df.get(term, 0), ctf=self._ctf.get(term, 0))

    def __contains__(self, term: str) -> bool:
        return term in self._df

    def __len__(self) -> int:
        return len(self._df)

    def __iter__(self) -> Iterator[str]:
        return iter(self._df)

    @property
    def vocabulary(self) -> set[str]:
        """The set of known terms (a fresh set; safe to mutate)."""
        return set(self._df)

    def terms_since(self, start: int) -> list[str]:
        """Terms added at insertion index ``start`` or later.

        The vocabulary only grows, and dicts preserve insertion order,
        so ``terms_since(k)`` is exactly the terms a caller that
        previously saw ``len(model) == k`` has not yet seen.  Query-term
        selectors use this to keep incremental eligibility caches
        instead of rescanning the whole vocabulary every query.
        """
        if start <= 0:
            return list(self._df)
        return list(islice(self._df, start, None))

    @property
    def total_ctf(self) -> int:
        """Sum of ctf over the vocabulary (cached running total, O(1))."""
        return self._total_ctf

    def top_terms(self, k: int, key: str = "ctf") -> list[TermStats]:
        """The ``k`` highest-ranked terms by ``key`` (df, ctf, or avg_tf).

        Ties break alphabetically so output is deterministic.  Selection
        is a size-k heap over the vocabulary — O(V log k) rather than a
        full O(V log V) sort — with the same ``(-score, term)`` key, so
        results are identical to sorting.
        """
        # avg_tf mirrors TermStats.avg_tf's df=0 guard: add_term (and
        # the lm.io loader) accept df=0 terms, which must rank at 0.0,
        # not crash the ranking.
        keyed = {
            "df": lambda term: self._df[term],
            "ctf": lambda term: self._ctf[term],
            "avg_tf": lambda term: (self._ctf[term] / self._df[term]) if self._df[term] else 0.0,
        }
        if key not in keyed:
            raise ValueError(f"key must be one of df/ctf/avg_tf, got {key!r}")
        score = keyed[key]
        if k <= 0:
            return []
        ranked = heapq.nsmallest(k, self._df, key=lambda term: (-score(term), term))
        return [self.stats(term) for term in ranked]

    def items(self) -> Iterator[TermStats]:
        """Iterate :class:`TermStats` for every known term."""
        for term in self._df:
            yield self.stats(term)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LanguageModel(name={self.name!r}, terms={len(self._df)}, "
            f"documents_seen={self.documents_seen})"
        )
