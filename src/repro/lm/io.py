"""Language model serialization.

A simple, diffable text format in the spirit of the Lemur toolkit's
collection-statistics files:

.. code-block:: text

    #language-model name=wsj88 documents_seen=300 tokens_seen=45210
    apple 12 31
    bear 3 3

One header line, then one ``term df ctf`` line per term, sorted by term
for determinism.  Header fields are whitespace-separated, so the model
name is percent-escaped on write (a name containing a space or ``=``
would otherwise corrupt the header) and unescaped on read.

Writes are **crash-safe**: the entire model is serialized and validated
in memory first (:func:`dumps_language_model`), then published with an
atomic temp-file + :func:`os.replace` (:mod:`repro.utils.atomic`).  A
validation error or a crash mid-write never leaves a corrupt or partial
file at the target path.
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import quote, unquote

from repro.lm.model import LanguageModel
from repro.utils.atomic import atomic_write_text

__all__ = [
    "dumps_language_model",
    "load_language_model",
    "loads_language_model",
    "save_language_model",
]

_HEADER_PREFIX = "#language-model"


def dumps_language_model(model: LanguageModel) -> str:
    """Serialize ``model`` to the text format above, validating first.

    Every term is checked *before* any output is produced, so a model
    that cannot be serialized fails without side effects.  Terms
    containing whitespace are rejected (no analyzer in this library
    produces them; bigram terms use a non-whitespace separator
    precisely so they serialize).  The model name is percent-escaped,
    so any name — spaces, ``=``, newlines — round-trips intact.
    """
    terms = sorted(model.vocabulary)
    for term in terms:
        if not term or any(ch.isspace() for ch in term):
            raise ValueError(
                f"term {term!r} is empty or contains whitespace and cannot be serialized"
            )
    lines = [
        f"{_HEADER_PREFIX} name={quote(model.name, safe='')} "
        f"documents_seen={model.documents_seen} tokens_seen={model.tokens_seen}"
    ]
    lines.extend(f"{term} {model.df(term)} {model.ctf(term)}" for term in terms)
    return "\n".join(lines) + "\n"


def save_language_model(model: LanguageModel, path: str | Path) -> None:
    """Write ``model`` to ``path`` atomically (temp file + rename).

    The serialization is fully built and validated in memory before the
    filesystem is touched; see :func:`dumps_language_model`.
    """
    atomic_write_text(path, dumps_language_model(model))


def loads_language_model(
    text: str, default_name: str = "lm", source: str = "<string>"
) -> LanguageModel:
    """Parse a model from serialized ``text`` (see :func:`dumps_language_model`).

    ``source`` labels error messages (a file path when called from
    :func:`load_language_model`); ``default_name`` is used when the
    header carries no ``name=`` field.
    """
    lines = text.splitlines()
    header = lines[0] if lines else ""
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"{source}: missing language-model header")
    fields = dict(
        part.split("=", 1) for part in header[len(_HEADER_PREFIX) :].split() if "=" in part
    )
    name = unquote(fields["name"]) if "name" in fields else default_name
    model = LanguageModel(name=name)
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"{source}:{line_number}: expected 'term df ctf', got {line!r}")
        term, df_text, ctf_text = parts
        model.add_term(term, df=int(df_text), ctf=int(ctf_text))
    model.documents_seen = int(fields.get("documents_seen", 0))
    model.tokens_seen = int(fields.get("tokens_seen", 0))
    return model


def load_language_model(path: str | Path) -> LanguageModel:
    """Read a language model written by :func:`save_language_model`."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    return loads_language_model(text, default_name=path.stem, source=str(path))
