"""Language model serialization.

A simple, diffable text format in the spirit of the Lemur toolkit's
collection-statistics files:

.. code-block:: text

    #language-model name=wsj88 documents_seen=300 tokens_seen=45210
    apple 12 31
    bear 3 3

One header line, then one ``term df ctf`` line per term, sorted by term
for determinism.
"""

from __future__ import annotations

from pathlib import Path

from repro.lm.model import LanguageModel

_HEADER_PREFIX = "#language-model"


def save_language_model(model: LanguageModel, path: str | Path) -> None:
    """Write ``model`` to ``path`` in the text format above.

    Terms containing whitespace would corrupt the line format and are
    rejected (no analyzer in this library produces them; bigram terms
    use a non-whitespace separator precisely so they serialize).
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            f"{_HEADER_PREFIX} name={model.name} "
            f"documents_seen={model.documents_seen} tokens_seen={model.tokens_seen}\n"
        )
        for term in sorted(model.vocabulary):
            if not term or any(ch.isspace() for ch in term):
                raise ValueError(
                    f"term {term!r} contains whitespace and cannot be serialized"
                )
            handle.write(f"{term} {model.df(term)} {model.ctf(term)}\n")


def load_language_model(path: str | Path) -> LanguageModel:
    """Read a language model written by :func:`save_language_model`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: missing language-model header")
        fields = dict(
            part.split("=", 1) for part in header[len(_HEADER_PREFIX) :].split() if "=" in part
        )
        model = LanguageModel(name=fields.get("name", path.stem))
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_number}: expected 'term df ctf', got {line!r}")
            term, df_text, ctf_text = parts
            model.add_term(term, df=int(df_text), ctf=int(ctf_text))
        model.documents_seen = int(fields.get("documents_seen", 0))
        model.tokens_seen = int(fields.get("tokens_seen", 0))
    return model
