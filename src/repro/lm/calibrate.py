"""Frequency calibration of learned language models.

Section 3 of the paper notes that selection algorithms use database
size "primarily ... to scale the word frequencies in language models
provided for databases of varying sizes", and suggests "a similar
effect can be obtained by scaling the frequencies in learned language
models by the sizes of the samples they are based upon."  Follow-on
work (Si & Callan 2003) closed the loop: estimate each database's size
(:mod:`repro.sizeest`), then scale the learned df/ctf from
sample-relative to collection-absolute values.

:func:`scale_to_collection` performs that scaling; its output plugs
into any selector exactly like an actual model would — in particular,
CORI's ``cw`` statistic (token count) becomes an estimate of the true
collection word count rather than the sample's.
"""

from __future__ import annotations

from repro.lm.model import LanguageModel


def scale_to_collection(
    learned: LanguageModel,
    estimated_documents: float,
    name: str | None = None,
) -> LanguageModel:
    """Scale a sample-based model to estimated collection magnitudes.

    Every df and ctf is multiplied by ``estimated_documents /
    documents_seen`` (rounded, floored at 1 so no observed term
    vanishes), and the document/token counters are scaled the same way.
    Relative frequencies — what rankings depend on — are unchanged;
    only magnitudes move, making models of differently-sized databases
    comparable in the way cooperative exports are.
    """
    if learned.documents_seen <= 0:
        raise ValueError("learned model has no documents; nothing to scale")
    if estimated_documents <= 0:
        raise ValueError("estimated_documents must be positive")
    factor = estimated_documents / learned.documents_seen
    scaled = LanguageModel(name=name or f"{learned.name}-calibrated")
    for stats in learned.items():
        df = max(1, round(stats.df * factor))
        ctf = max(df, round(stats.ctf * factor))
        scaled.add_term(stats.term, df=df, ctf=ctf)
    scaled.documents_seen = max(1, round(learned.documents_seen * factor))
    scaled.tokens_seen = max(1, round(learned.tokens_seen * factor))
    return scaled
