"""Phrase (bigram) language models — the paper's §2.1 extension.

Section 2.1: "More complex language models might include information
about phrases or other term co-occurrence information", and Section 7
notes that keeping the sampled documents makes such models possible —
"the sampling process is not restricted just to word lists and
frequency tables".  This module delivers that: bigram language models
built from any document set, so the question *can bigram models be
learned by sampling too?* becomes testable (benchmark Ext-7).

A bigram is a pair of **adjacent surviving index terms** joined by
``"␣"`` (a character the tokenizer can never produce, so bigram terms
and unigram terms can share a :class:`~repro.lm.model.LanguageModel`
without collision).  Adjacency is evaluated after the analyzer, i.e.
stopwords do not block adjacency under a stopping analyzer — the usual
IR convention for phrase statistics ("white␣house" from "white house",
but also from "white ... the ... house"?  No: only truly adjacent
surviving terms pair, sentence boundaries reset adjacency).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.corpus.document import Document
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer

#: Separator between the two terms of a bigram (never produced by the
#: tokenizer, so bigram vocabulary cannot collide with unigrams).
BIGRAM_SEPARATOR = "␣"  # ␣ OPEN BOX


def bigrams(terms: Sequence[str]) -> list[str]:
    """Adjacent-pair bigram terms of an analyzed token sequence."""
    return [
        f"{first}{BIGRAM_SEPARATOR}{second}"
        for first, second in zip(terms, terms[1:])
    ]


def split_bigram(bigram: str) -> tuple[str, str]:
    """Invert :func:`bigrams` for one term."""
    first, separator, second = bigram.partition(BIGRAM_SEPARATOR)
    if not separator:
        raise ValueError(f"{bigram!r} is not a bigram term")
    return first, second


def _sentence_chunks(document: Document) -> Iterable[str]:
    # Reset adjacency at sentence boundaries so bigrams never span a
    # full stop.
    return (chunk for chunk in document.text.split(".") if chunk.strip())


def bigram_model_from_documents(
    documents: Iterable[Document],
    analyzer: Analyzer | None = None,
    name: str = "bigrams",
) -> LanguageModel:
    """Build a bigram language model from full documents.

    ``analyzer`` defaults to the Inquery-style pipeline: phrase
    statistics over stopped/stemmed terms, the convention the phrase-
    indexing literature uses.  ``documents_seen``/``tokens_seen`` count
    documents and bigram tokens respectively.
    """
    analyzer = analyzer or Analyzer.inquery_style()
    model = LanguageModel(name=name)
    for document in documents:
        document_bigrams: list[str] = []
        for chunk in _sentence_chunks(document):
            document_bigrams.extend(bigrams(analyzer.analyze(chunk)))
        model.add_document(document_bigrams)
    return model
