"""Metrics comparing language models (paper Sections 4.3 and 6).

All metrics follow the paper's protocol: they are computed over the
vocabulary the two models share (the learned model is first projected
into the database's term space by the caller — see
:meth:`repro.lm.model.LanguageModel.project`), because "learned and
actual language models were compared only on words that appeared in
both language models".
"""

from __future__ import annotations

import numpy as np

from repro.lm.model import LanguageModel

_METRIC_GETTERS = {
    "df": lambda model, term: model.df(term),
    "ctf": lambda model, term: model.ctf(term),
    "avg_tf": lambda model, term: model.avg_tf(term),
}


def _metric_values(model: LanguageModel, terms: list[str], metric: str) -> np.ndarray:
    try:
        getter = _METRIC_GETTERS[metric]
    except KeyError:
        raise ValueError(f"metric must be one of df/ctf/avg_tf, got {metric!r}") from None
    return np.asarray([getter(model, term) for term in terms], dtype=np.float64)


def percentage_learned(learned: LanguageModel, actual: LanguageModel) -> float:
    """Fraction of the actual vocabulary present in the learned model.

    The paper's Section 4.3.1 metric (and its caveat: most of a text
    database's vocabulary is near-hapax terms that carry little
    information, so this metric understates model quality).
    """
    if len(actual) == 0:
        return 0.0
    common = sum(1 for term in learned if term in actual)
    return common / len(actual)


def ctf_ratio(learned: LanguageModel, actual: LanguageModel) -> float:
    """Fraction of database term *occurrences* covered by learned terms.

    The paper's Section 4.3.2 metric: ``Σ_{t ∈ V'} ctf_t / Σ_{t ∈ V}
    ctf_t`` with ctf taken from the **actual** database.  A ratio of
    0.8 means the learned vocabulary accounts for 80% of the word
    occurrences in the database.
    """
    total = actual.total_ctf
    if total == 0:
        return 0.0
    covered = sum(actual.ctf(term) for term in learned if term in actual)
    return covered / total


def rank_values(
    values: np.ndarray,
    terms: list[str],
    method: str = "average",
) -> np.ndarray:
    """Rank pre-gathered metric ``values`` (descending; rank 1 is best).

    The computational core of :func:`rank_terms`, exposed so callers
    that already hold a value array (e.g. the incremental curve
    measurer) can skip per-term model lookups.  Tie handling is fully
    vectorized: runs of equal values share the mean position
    (``"average"``) or the best position (``"min"``), computed with the
    same float operations as the scalar definition so results are
    bit-identical to a term-by-term loop.
    """
    if method == "ordinal":
        order = sorted(range(len(terms)), key=lambda i: (-values[i], terms[i]))
        ranks = np.empty(len(terms), dtype=np.float64)
        for position, index in enumerate(order, start=1):
            ranks[index] = position
        return ranks
    if method not in ("average", "min"):
        raise ValueError(f"method must be average/min/ordinal, got {method!r}")
    n = len(terms)
    order = np.argsort(-values, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    if n == 0:
        return ranks
    # Boundaries of runs of equal sorted values; every member of a run
    # shares one rank derived from the run's start/end positions.
    sorted_values = values[order]
    run_start_mask = np.empty(n, dtype=bool)
    run_start_mask[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=run_start_mask[1:])
    run_ids = np.cumsum(run_start_mask) - 1
    run_starts = np.flatnonzero(run_start_mask)
    if method == "average":
        run_ends = np.append(run_starts[1:], n) - 1
        shared = (run_starts + run_ends) / 2.0 + 1.0
    else:  # min / competition ranking
        shared = run_starts + 1.0
    ranks[order] = shared[run_ids]
    return ranks


def rank_terms(
    model: LanguageModel,
    terms: list[str],
    metric: str = "df",
    method: str = "average",
) -> np.ndarray:
    """Rank ``terms`` by descending ``metric`` within ``model``.

    Rank 1 is the most frequent term.  ``method`` controls ties:

    * ``"average"`` — tied terms share the mean of their positions
      (fractional ranks; standard for Spearman correlation);
    * ``"min"`` — tied terms share the best position (competition
      ranking; the paper's rdiff discussion of "multiple terms can
      occupy each rank" corresponds to this);
    * ``"ordinal"`` — ties broken deterministically by term string.
    """
    return rank_values(_metric_values(model, terms, metric), terms, method)


def common_terms(a: LanguageModel, b: LanguageModel) -> list[str]:
    """The shared vocabulary, sorted for determinism."""
    return sorted(a.vocabulary & b.vocabulary)


def spearman_rank_correlation(
    learned: LanguageModel,
    actual: LanguageModel,
    metric: str = "df",
    tie_correction: bool = True,
    terms: list[str] | None = None,
) -> float:
    """Spearman rank correlation of the two models' term rankings.

    The paper's Section 4.3.3 metric: terms appearing in both models
    are ranked by ``metric`` within each model; the coefficient is 1.0
    for identical rankings, 0.0 for uncorrelated, -1.0 for reversed.

    With ``tie_correction`` (default) the coefficient is the Pearson
    correlation of fractional ranks, which is exact in the presence of
    ties.  Without it, the paper's textbook formula
    ``1 - 6 Σ d² / (n³ - n)`` is used.

    ``terms`` lets a caller that already maintains the sorted common
    vocabulary (e.g. the incremental curve measurer) skip the O(V)
    intersection; it must equal ``common_terms(learned, actual)``.
    """
    if terms is None:
        terms = common_terms(learned, actual)
    n = len(terms)
    if n == 0:
        return 0.0
    if n == 1:
        return 1.0
    learned_ranks = rank_terms(learned, terms, metric)
    actual_ranks = rank_terms(actual, terms, metric)
    return spearman_from_ranks(learned_ranks, actual_ranks, tie_correction)


def spearman_from_ranks(
    learned_ranks: np.ndarray,
    actual_ranks: np.ndarray,
    tie_correction: bool = True,
) -> float:
    """The Spearman coefficient of two pre-computed rank vectors.

    Shared by :func:`spearman_rank_correlation` and the incremental
    curve measurer so both produce bit-identical values.  Callers
    handle the degenerate n ∈ {0, 1} cases.
    """
    if tie_correction:
        learned_std = learned_ranks.std()
        actual_std = actual_ranks.std()
        if learned_std == 0 or actual_std == 0:
            # A constant ranking (all ties) carries no ordering information.
            return 0.0
        covariance = np.mean(
            (learned_ranks - learned_ranks.mean()) * (actual_ranks - actual_ranks.mean())
        )
        return float(covariance / (learned_std * actual_std))
    n = learned_ranks.size
    differences = learned_ranks - actual_ranks
    return float(1.0 - 6.0 * np.sum(differences**2) / (n**3 - n))


def rdiff(
    model_a: LanguageModel,
    model_b: LanguageModel,
    metric: str = "df",
    method: str = "min",
) -> float:
    """The paper's rdiff convergence metric (Section 6).

    ``rdiff = (1 / n²) · Σ |d_i|`` where ``d_i`` is the rank difference
    of common term ``i`` and ``n`` the number of common terms: the
    average distance, as a fraction of the number of ranks, each term
    must move to convert one ranking into the other.  Comparing the
    learned model at time *t* with the model at *t + δ*, a small and
    falling rdiff signals convergence — the basis of the paper's
    observable stopping criterion.
    """
    terms = common_terms(model_a, model_b)
    n = len(terms)
    if n == 0:
        return 0.0
    ranks_a = rank_terms(model_a, terms, metric, method=method)
    ranks_b = rank_terms(model_b, terms, metric, method=method)
    return float(np.abs(ranks_a - ranks_b).sum() / (n * n))
