"""Shrinkage smoothing of learned language models.

Ipeirotis & Gravano ("When one Sample is not Enough: Improving Text
Database Selection Using Shrinkage", SIGMOD 2004 — directly downstream
of this paper) observed that a small sample's language model is sparse
and noisy, and that mixing it with a *background* model (a category
model, or the union of all samples) improves database selection —
classic shrinkage toward a prior.

:func:`shrink` implements the count-space version: every term known to
either model receives

.. code-block:: text

    ctf'(t) = λ · ctf_sample_scaled(t) + (1 - λ) · ctf_background_scaled(t)

with both sides first normalised to the same token mass, so λ is a pure
mixing weight.  df values are mixed the same way against document
counts.  :func:`shrink_all` applies it across a federation using the
union of the learned models as the background — no ground truth
involved, exactly the information a sampling service possesses.
"""

from __future__ import annotations

from typing import Mapping

from repro.lm.model import LanguageModel


def shrink(
    sample: LanguageModel,
    background: LanguageModel,
    weight: float = 0.8,
    name: str | None = None,
) -> LanguageModel:
    """Mix ``sample`` with ``background`` at sample weight ``weight``.

    The result keeps the sample's document/token magnitudes, gains
    (down-weighted) statistics for background terms the sample missed,
    and smooths the sample's noisy low counts toward the background's
    relative frequencies.  Counts are rounded; terms whose mixed ctf
    rounds to zero are dropped (they carry no selection signal).
    """
    if not 0.0 < weight <= 1.0:
        raise ValueError(f"weight must be in (0, 1], got {weight}")
    if sample.tokens_seen <= 0:
        raise ValueError("sample model is empty; nothing to shrink")
    if background.tokens_seen <= 0:
        raise ValueError("background model is empty")
    token_scale = sample.tokens_seen / background.tokens_seen
    doc_scale = (
        sample.documents_seen / background.documents_seen
        if background.documents_seen
        else 0.0
    )
    shrunk = LanguageModel(name=name or f"{sample.name}-shrunk")
    vocabulary = sample.vocabulary | background.vocabulary
    for term in vocabulary:
        ctf = weight * sample.ctf(term) + (1 - weight) * background.ctf(term) * token_scale
        df = weight * sample.df(term) + (1 - weight) * background.df(term) * doc_scale
        ctf_rounded = round(ctf)
        if ctf_rounded < 1:
            continue
        df_rounded = min(max(1, round(df)), ctf_rounded)
        shrunk.add_term(term, df=df_rounded, ctf=ctf_rounded)
    shrunk.documents_seen = sample.documents_seen
    shrunk.tokens_seen = sample.tokens_seen
    return shrunk


def shrink_all(
    models: Mapping[str, LanguageModel], weight: float = 0.8
) -> dict[str, LanguageModel]:
    """Shrink every model toward the union of all of them.

    The union of samples is the natural background a selection service
    owns (the same object Section 8 uses for query expansion).  Each
    database's own contribution is part of the union; with more than a
    few databases the self-contribution is a small fraction and the
    standard practice of not excluding it changes little.
    """
    if not models:
        raise ValueError("no models to shrink")
    if len(models) == 1:
        name = next(iter(models))
        return {name: models[name].copy()}
    union: LanguageModel | None = None
    for model in models.values():
        union = model.copy(name="union") if union is None else union.merge(model)
    assert union is not None
    return {
        name: shrink(model, union, weight=weight, name=f"{name}-shrunk")
        for name, model in models.items()
    }
