"""The inverted index.

Built in one pass over a corpus under a given analyzer.  Stores, per
term, a frozen :class:`PostingList` (parallel arrays of document index
and within-document term frequency) plus the aggregate statistics every
other part of the system consumes: document frequency (df), collection
term frequency (ctf), document lengths, and totals.

The index is the database's *actual language model* in the paper's
sense; :meth:`InvertedIndex.language_model` exports it as a
:class:`~repro.lm.model.LanguageModel` for evaluation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.corpus.collection import Corpus
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class PostingList:
    """Frozen postings for one term: parallel doc-index and tf arrays."""

    doc_indices: np.ndarray
    term_frequencies: np.ndarray

    def __post_init__(self) -> None:
        if self.doc_indices.shape != self.term_frequencies.shape:
            raise ValueError("doc_indices and term_frequencies must be parallel")

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (df)."""
        return int(self.doc_indices.size)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences of the term in the collection (ctf)."""
        return int(self.term_frequencies.sum())

    def __len__(self) -> int:
        return int(self.doc_indices.size)


class InvertedIndex:
    """Term → postings over a corpus, under one analyzer.

    Parameters
    ----------
    corpus:
        The documents to index.
    analyzer:
        The text pipeline defining this database's index terms.  The
        default mirrors the paper's Inquery setup (stoplist + Porter
        stemmer).
    """

    def __init__(self, corpus: Corpus, analyzer: Analyzer | None = None) -> None:
        self.corpus = corpus
        self.analyzer = analyzer or Analyzer.inquery_style()
        self._postings: dict[str, PostingList] = {}
        self._df: dict[str, int] = {}
        self._ctf: dict[str, int] = {}
        self._doc_lengths = np.zeros(len(corpus), dtype=np.int64)
        self._build()

    _MISS = object()

    def _build(self) -> None:
        # Stopping and stemming depend only on the token, so the
        # analyzer runs once per distinct raw token per build; every
        # other occurrence is a single dict probe (None: stopword).
        # The analyzed term stream — and with it every downstream
        # ordering — is exactly what analyze() would produce.
        token_to_term: dict[str, str | None] = {}
        cache_get = token_to_term.get
        miss = self._MISS
        analyze_token = self.analyzer.analyze_token
        iter_tokens = self.analyzer.tokenizer.iter_tokens
        accumulator: dict[str, tuple[list[int], list[int]]] = {}
        for doc_index, document in enumerate(self.corpus):
            terms = []
            for token in iter_tokens(document.text):
                term = cache_get(token, miss)
                if term is miss:
                    term = token_to_term[token] = analyze_token(token)
                if term is not None:
                    terms.append(term)
            self._doc_lengths[doc_index] = len(terms)
            for term, tf in Counter(terms).items():
                if term not in accumulator:
                    accumulator[term] = ([], [])
                docs, tfs = accumulator[term]
                docs.append(doc_index)
                tfs.append(tf)
        for term, (docs, tfs) in accumulator.items():
            self._postings[term] = PostingList(
                doc_indices=np.asarray(docs, dtype=np.int64),
                term_frequencies=np.asarray(tfs, dtype=np.int64),
            )
            self._df[term] = len(docs)
            self._ctf[term] = sum(tfs)

    # -- lookups --------------------------------------------------------------

    def postings(self, term: str) -> PostingList | None:
        """Postings for ``term`` (as analyzed), or ``None`` if absent."""
        return self._postings.get(term)

    def df(self, term: str) -> int:
        """Document frequency of ``term`` (0 if absent; cached at build)."""
        return self._df.get(term, 0)

    def ctf(self, term: str) -> int:
        """Collection term frequency of ``term`` (0 if absent; cached at build)."""
        return self._ctf.get(term, 0)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    @property
    def vocabulary(self) -> Iterable[str]:
        """All indexed terms (iteration order is arbitrary)."""
        return self._postings.keys()

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self.corpus)

    @property
    def total_terms(self) -> int:
        """Total term occurrences across the collection."""
        return int(self._doc_lengths.sum())

    @property
    def doc_lengths(self) -> np.ndarray:
        """Per-document index-term counts (read-only view)."""
        view = self._doc_lengths.view()
        view.flags.writeable = False
        return view

    @property
    def average_doc_length(self) -> float:
        """Mean index terms per document (0.0 for an empty corpus)."""
        if len(self.corpus) == 0:
            return 0.0
        return float(self._doc_lengths.mean())

    def language_model(self) -> LanguageModel:
        """Export the index as the database's *actual* language model."""
        model = LanguageModel(name=f"{self.corpus.name}-actual")
        for term in self._postings:
            model.add_term(term, df=self._df[term], ctf=self._ctf[term])
        model.documents_seen = self.num_documents
        model.tokens_seen = self.total_terms
        return model
