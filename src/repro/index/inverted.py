"""The inverted index, on contiguous array storage.

Built in one pass over a corpus under a given analyzer.  Terms are
interned into a dense integer vocabulary (string ↔ term-id, ids
assigned in first-occurrence order), and postings live in CSR-style
flat arrays: one document-index array, one parallel term-frequency
array, and a per-term offsets array slicing both.  Document frequency
(df), collection term frequency (ctf), and document lengths are dense
vectors computed in the same pass, so every aggregate the rest of the
system consumes is a single array lookup.

:meth:`InvertedIndex.postings` still hands out a frozen
:class:`PostingList` per term — a zero-copy view into the CSR arrays —
so per-term consumers are unchanged; batch consumers (the search
engine's multi-term scorer) read the flat arrays directly via
:meth:`InvertedIndex.gather_postings`.

The scalar dict-of-lists construction this replaced survives as
:func:`repro.index.reference.build_index_scalar`, the equivalence
reference the property tests compare against.

The index is the database's *actual language model* in the paper's
sense; :meth:`InvertedIndex.language_model` exports it as a
:class:`~repro.lm.model.LanguageModel` for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Any, Iterable, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.corpus.collection import Corpus
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer
from repro.text.tokenizer import Tokenizer

#: Sentinel distinguishing "never analyzed" from a memoized ``None``.
_UNSEEN: Any = object()

#: Shared token → analyzed-term memos, one per analyzer *value*, with a
#: companion token → -1 map of every token the analyzer drops.
#: Normalization, stopping, and stemming depend only on the token and
#: the analyzer configuration (a pure function), so the mapping is
#: memoized across index builds — the same trade the global
#: :func:`repro.text.stemmer.stem` cache already makes one level down.
#: The dropped map is corpus-independent (a stopword never gets a term
#: id anywhere), so fresh interners preseed from it wholesale.
_SHARED_TERM_MEMOS: dict[Analyzer, tuple[dict[bytes, str | None], dict[bytes, int]]] = {}


class _TermInterner(dict):
    """Maps byte tokens to dense term ids while building one index.

    A ``dict`` subclass whose ``__missing__`` analyzes a token on first
    sight: consult the analyzer's shared token → term memo (filling it
    on a miss), then assign the term the next dense id — so ids come
    out in first-occurrence order, matching the scalar reference build.
    Dropped tokens (stopped, too short, numeric) map to -1 and are
    preseeded from the analyzer's shared dropped map.  Every repeat
    occurrence is a single C-level dict probe inside ``np.fromiter``,
    with no per-token python frames.
    """

    __slots__ = ("terms", "_shared", "_dropped", "_normalize", "_analyze_token")

    def __init__(self, analyzer: Analyzer) -> None:
        shared, dropped = _SHARED_TERM_MEMOS.setdefault(analyzer, ({}, {}))
        super().__init__(dropped)
        self.terms: dict[str, int] = {}
        self._shared = shared
        self._dropped = dropped
        self._normalize = analyzer.tokenizer.normalize
        self._analyze_token = analyzer.analyze_token

    def __missing__(self, token: bytes) -> int:
        shared = self._shared
        term = shared.get(token, _UNSEEN)
        if term is _UNSEEN:
            # token_bytes already case-folded, so normalize's lowercase
            # step is a no-op; its length/numeric filters still apply.
            term = self._normalize(token.decode("ascii"))
            if term is not None:
                term = self._analyze_token(term)
            shared[token] = term
            if term is None:
                self._dropped[token] = -1
        if term is None:
            term_id = -1
        else:
            terms = self.terms
            maybe_id = terms.get(term)
            if maybe_id is None:
                terms[term] = term_id = len(terms)
            else:
                term_id = maybe_id
        self[token] = term_id
        return term_id


@dataclass(frozen=True)
class PostingList:
    """Frozen postings for one term: parallel doc-index and tf arrays."""

    doc_indices: np.ndarray
    term_frequencies: np.ndarray

    def __post_init__(self) -> None:
        if self.doc_indices.shape != self.term_frequencies.shape:
            raise ValueError("doc_indices and term_frequencies must be parallel")

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (df)."""
        return int(self.doc_indices.size)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences of the term in the collection (ctf)."""
        return int(self.term_frequencies.sum())

    def __len__(self) -> int:
        return int(self.doc_indices.size)


def _read_only(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


#: Per-corpus memo of the tokenized byte stream, one entry per
#: tokenizer configuration.  A :class:`Corpus` is append-only (``add``
#: is its only mutator and rejects duplicate ids) and documents are
#: frozen, so a document's token list never changes once computed; the
#: memo extends incrementally when a corpus has grown.  Keyed weakly so
#: the cache dies with the corpus.  This is what lets the same corpus
#: be indexed repeatedly (servers, scalar-reference comparisons,
#: experiment reruns) without re-tokenizing gigabytes of text.
_TOKENIZED: WeakKeyDictionary = WeakKeyDictionary()


def _tokenized(corpus: Corpus, tokenizer: Tokenizer) -> list[list[bytes]]:
    """The per-document token byte lists of ``corpus`` under ``tokenizer``.

    Returns a shared memoized list — callers must not mutate it or the
    lists inside.
    """
    per_corpus: dict[Tokenizer, list[list[bytes]]] = _TOKENIZED.setdefault(corpus, {})
    lists = per_corpus.get(tokenizer)
    if lists is None:
        lists = per_corpus[tokenizer] = []
    if len(lists) < len(corpus):
        token_bytes = tokenizer.token_bytes
        lists.extend(
            token_bytes(corpus[i].text) for i in range(len(lists), len(corpus))
        )
    return lists


class InvertedIndex:
    """Term → postings over a corpus, under one analyzer.

    Parameters
    ----------
    corpus:
        The documents to index.
    analyzer:
        The text pipeline defining this database's index terms.  The
        default mirrors the paper's Inquery setup (stoplist + Porter
        stemmer).
    """

    def __init__(self, corpus: Corpus, analyzer: Analyzer | None = None) -> None:
        self.corpus = corpus
        self.analyzer = analyzer or Analyzer.inquery_style()
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        empty = np.empty(0, dtype=np.int64)
        self._post_docs: np.ndarray = empty
        self._post_tfs: np.ndarray = empty
        self._offsets: np.ndarray = np.zeros(1, dtype=np.int64)
        self._df: np.ndarray = empty
        self._ctf: np.ndarray = empty
        self._doc_lengths: np.ndarray = np.zeros(len(corpus), dtype=np.int64)
        self._build()

    def _build(self) -> None:
        # Phase 1 (python, unavoidable): intern the token stream.  Each
        # document is tokenized by one C-level translate/split pass
        # (:meth:`Tokenizer.token_bytes`), and the whole stream is
        # mapped to dense term ids by one ``np.fromiter`` over a
        # :class:`_TermInterner` — each *distinct* token is analyzed
        # once (memoized across builds), every other occurrence is a
        # C-level dict probe.  Term ids come out in first-occurrence
        # order, keeping vocabulary iteration identical to the scalar
        # reference build.
        corpus = self.corpus
        num_docs = len(corpus)
        if num_docs == 0:
            return
        raw_lists = _tokenized(corpus, self.analyzer.tokenizer)
        raw_lengths = np.fromiter(map(len, raw_lists), dtype=np.int64, count=num_docs)
        interner = _TermInterner(self.analyzer)
        # int32 is ample: term ids are bounded by the token count, and a
        # corpus with 2**31 tokens does not fit this in-memory index.
        token_ids = np.fromiter(
            map(interner.__getitem__, chain.from_iterable(raw_lists)),
            dtype=np.int32,
            count=int(raw_lengths.sum()),
        )
        self._term_to_id = interner.terms
        self._id_to_term = list(interner.terms)

        # Phase 2 (numpy): all statistics in bulk.  The stream is
        # document-major, so a *stable* sort by term id alone yields
        # postings directly in CSR order — term-major, document
        # ascending within each term — and run-length encoding the
        # sorted (term, doc) keys aggregates per-posting frequencies.
        token_docs = np.repeat(np.arange(num_docs, dtype=np.int32), raw_lengths)
        kept = token_ids >= 0
        token_ids = token_ids[kept]
        token_docs = token_docs[kept]
        vocabulary_size = len(self._id_to_term)
        self._doc_lengths = np.bincount(token_docs, minlength=num_docs).astype(
            np.int64, copy=False
        )
        self._ctf = _read_only(
            np.bincount(token_ids, minlength=vocabulary_size).astype(np.int64, copy=False)
        )
        # numpy's stable sort is a radix sort for small integer dtypes;
        # term ids are dense, so narrow when the vocabulary allows.
        if vocabulary_size <= np.iinfo(np.int16).max:
            order = np.argsort(token_ids.astype(np.int16), kind="stable")
        else:
            order = np.argsort(token_ids, kind="stable")
        stream_terms = token_ids[order]
        stream_docs = token_docs[order]
        total = stream_terms.size
        if total:
            keys = stream_terms.astype(np.int64) * num_docs + stream_docs
            boundary = np.empty(total, dtype=bool)
            boundary[0] = True
            np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            self._post_docs = _read_only(stream_docs[starts].astype(np.int64))
            self._post_tfs = _read_only(np.diff(np.append(starts, total)))
            self._df = _read_only(
                np.bincount(stream_terms[starts], minlength=vocabulary_size).astype(
                    np.int64, copy=False
                )
            )
        else:
            self._df = _read_only(np.zeros(vocabulary_size, dtype=np.int64))
        offsets = np.zeros(vocabulary_size + 1, dtype=np.int64)
        np.cumsum(self._df, out=offsets[1:])
        self._offsets = _read_only(offsets)

    # -- lookups --------------------------------------------------------------

    def postings(self, term: str) -> PostingList | None:
        """Postings for ``term`` (as analyzed), or ``None`` if absent.

        The returned arrays are zero-copy read-only views into the
        index's flat CSR storage.
        """
        term_id = self._term_to_id.get(term)
        if term_id is None:
            return None
        start = self._offsets[term_id]
        end = self._offsets[term_id + 1]
        return PostingList(
            doc_indices=self._post_docs[start:end],
            term_frequencies=self._post_tfs[start:end],
        )

    def df(self, term: str) -> int:
        """Document frequency of ``term`` (0 if absent; cached at build)."""
        term_id = self._term_to_id.get(term)
        return 0 if term_id is None else int(self._df[term_id])

    def ctf(self, term: str) -> int:
        """Collection term frequency of ``term`` (0 if absent; cached at build)."""
        term_id = self._term_to_id.get(term)
        return 0 if term_id is None else int(self._ctf[term_id])

    def term_id(self, term: str) -> int:
        """Dense id of an analyzed ``term``, or -1 if unindexed."""
        term_id = self._term_to_id.get(term)
        return -1 if term_id is None else term_id

    def term_ids(self, terms: Sequence[str]) -> np.ndarray:
        """Dense ids for the indexed members of ``terms`` (order kept).

        Unindexed terms are dropped — exactly the terms that contribute
        nothing to a query.
        """
        lookup = self._term_to_id.get
        ids = [i for i in map(lookup, terms) if i is not None]
        return np.asarray(ids, dtype=np.int64)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    # -- flat-array access (batch consumers) -----------------------------------

    @property
    def postings_doc_indices(self) -> np.ndarray:
        """Flat CSR document-index array (read-only)."""
        return self._post_docs

    @property
    def postings_term_frequencies(self) -> np.ndarray:
        """Flat CSR term-frequency array (read-only)."""
        return self._post_tfs

    @property
    def postings_offsets(self) -> np.ndarray:
        """Per-term ``[start, end)`` offsets into the flat arrays (read-only)."""
        return self._offsets

    @property
    def document_frequencies(self) -> np.ndarray:
        """df per term id (read-only)."""
        return self._df

    @property
    def collection_frequencies(self) -> np.ndarray:
        """ctf per term id (read-only)."""
        return self._ctf

    def gather_postings(
        self, term_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated postings for ``term_ids``, in the given order.

        Returns ``(doc_indices, term_frequencies, document_frequencies)``
        — three parallel arrays, one element per (term, document)
        posting, with each term's df broadcast across its postings.
        This is the scatter-gather feeding batched multi-term scoring.
        """
        starts = self._offsets[term_ids]
        counts = self._offsets[term_ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        out_starts = np.cumsum(counts) - counts
        gather = np.repeat(starts - out_starts, counts) + np.arange(total, dtype=np.int64)
        return (
            self._post_docs[gather],
            self._post_tfs[gather],
            np.repeat(self._df[term_ids], counts),
        )

    @property
    def vocabulary(self) -> Iterable[str]:
        """All indexed terms, in term-id (first-occurrence) order."""
        return self._term_to_id.keys()

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._term_to_id)

    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self.corpus)

    @property
    def total_terms(self) -> int:
        """Total term occurrences across the collection."""
        return int(self._doc_lengths.sum())

    @property
    def doc_lengths(self) -> np.ndarray:
        """Per-document index-term counts (read-only view)."""
        view = self._doc_lengths.view()
        view.flags.writeable = False
        return view

    @property
    def average_doc_length(self) -> float:
        """Mean index terms per document (0.0 for an empty corpus)."""
        if len(self.corpus) == 0:
            return 0.0
        return float(self._doc_lengths.mean())

    def language_model(self) -> LanguageModel:
        """Export the index as the database's *actual* language model."""
        model = LanguageModel.from_statistics(
            name=f"{self.corpus.name}-actual",
            terms=self._id_to_term,
            dfs=self._df,
            ctfs=self._ctf,
        )
        model.documents_seen = self.num_documents
        model.tokens_seen = self.total_terms
        return model
