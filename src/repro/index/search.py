"""Ranked retrieval over an inverted index.

:class:`SearchEngine` analyzes the query with the *database's* analyzer
(so a raw query term like ``running`` matches the stemmed index term
``run``), scores each query term's postings with the configured scorer,
accumulates scores across terms, and returns the top-N documents with
deterministic tie-breaking (score descending, then document order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.document import Document
from repro.index.inverted import InvertedIndex, PostingList
from repro.index.positions import PositionalIndex
from repro.index.scoring import CollectionContext, Scorer, TfIdfScorer


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: str
    score: float
    doc_index: int


class SearchEngine:
    """Ranked retrieval with pluggable scoring."""

    def __init__(self, index: InvertedIndex, scorer: Scorer | None = None) -> None:
        self.index = index
        self.scorer = scorer or TfIdfScorer()
        self._context = CollectionContext(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )
        self._doc_ids = index.corpus.doc_ids
        self._positional: PositionalIndex | None = None

    def search(self, query: str, n: int = 10) -> list[SearchResult]:
        """Return the top ``n`` documents for ``query``.

        The query text is analyzed by the database's own pipeline;
        query terms that are stopwords (to the database) or unindexed
        simply contribute nothing — a query of only such terms returns
        no documents, exactly the "failed query" the paper's Table 3
        counts.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        terms = self.index.analyzer.analyze(query)
        if not terms:
            return []
        if len(terms) == 1:
            return self._search_single_term(terms[0], n)
        scores: dict[int, float] = {}
        for term in terms:
            posting = self.index.postings(term)
            if posting is None:
                continue
            doc_lengths = self.index.doc_lengths[posting.doc_indices]
            term_scores = self.scorer.score_term(
                posting.term_frequencies.astype(np.float64),
                doc_lengths.astype(np.float64),
                posting.document_frequency,
                self._context,
            )
            for doc_index, score in zip(posting.doc_indices, term_scores):
                key = int(doc_index)
                scores[key] = scores.get(key, 0.0) + float(score)
        if not scores:
            return []
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:n]
        doc_ids = self._doc_ids
        return [
            SearchResult(doc_id=doc_ids[doc_index], score=score, doc_index=doc_index)
            for doc_index, score in ranked
        ]

    def _search_single_term(self, term: str, n: int) -> list[SearchResult]:
        """Vectorised fast path for the sampler's one-term queries."""
        posting = self.index.postings(term)
        if posting is None:
            return []
        doc_lengths = self.index.doc_lengths[posting.doc_indices]
        scores = self.scorer.score_term(
            posting.term_frequencies.astype(np.float64),
            doc_lengths.astype(np.float64),
            posting.document_frequency,
            self._context,
        )
        count = min(n, scores.size)
        if count < scores.size:
            candidates = np.argpartition(-scores, count - 1)[:count]
        else:
            candidates = np.arange(scores.size)
        # Deterministic order: score descending, then document order.
        order = candidates[np.lexsort((posting.doc_indices[candidates], -scores[candidates]))]
        doc_ids = self._doc_ids
        return [
            SearchResult(
                doc_id=doc_ids[int(posting.doc_indices[i])],
                score=float(scores[i]),
                doc_index=int(posting.doc_indices[i]),
            )
            for i in order
        ]

    def search_phrase(self, phrase: str, n: int = 10) -> list[SearchResult]:
        """Return the top ``n`` documents containing ``phrase`` adjacently.

        The phrase is analyzed by the database's pipeline; matching
        documents are scored with the configured scorer using the
        phrase's occurrence counts as term frequencies and its document
        frequency as df.  The positional index is built lazily on the
        first phrase query (one extra pass over the corpus).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        terms = self.index.analyzer.analyze(phrase)
        if not terms:
            return []
        if len(terms) == 1:
            return self._search_single_term(terms[0], n)
        if self._positional is None:
            self._positional = PositionalIndex(self.index.corpus, self.index.analyzer)
        posting = self._positional.phrase_postings(terms)
        return self._rank_posting(posting, n)

    def _rank_posting(self, posting: PostingList, n: int) -> list[SearchResult]:
        if len(posting) == 0:
            return []
        doc_lengths = self.index.doc_lengths[posting.doc_indices]
        scores = self.scorer.score_term(
            posting.term_frequencies.astype(np.float64),
            doc_lengths.astype(np.float64),
            posting.document_frequency,
            self._context,
        )
        count = min(n, scores.size)
        if count < scores.size:
            candidates = np.argpartition(-scores, count - 1)[:count]
        else:
            candidates = np.arange(scores.size)
        order = candidates[np.lexsort((posting.doc_indices[candidates], -scores[candidates]))]
        return [
            SearchResult(
                doc_id=self._doc_ids[int(posting.doc_indices[i])],
                score=float(scores[i]),
                doc_index=int(posting.doc_indices[i]),
            )
            for i in order
        ]

    def fetch(self, doc_id: str) -> Document:
        """Return the full document for ``doc_id``."""
        return self.index.corpus.get(doc_id)
