"""Ranked retrieval over an inverted index.

:class:`SearchEngine` analyzes the query with the *database's* analyzer
(so a raw query term like ``running`` matches the stemmed index term
``run``), scores each query term's postings with the configured scorer,
accumulates scores across terms, and returns the top-N documents with
deterministic tie-breaking (score descending, then document order).

**Duplicate query terms are deduplicated** (first occurrence kept): a
query of ``"cat cat"`` scores identically to ``"cat"``.  This pins down
semantics that were previously inconsistent — the multi-term path used
to accumulate a repeated term's postings once per occurrence (silently
doubling its contribution) while the single-term fast path scored it
once.  Query-side tf weighting, if ever wanted, should be an explicit
scorer feature, not an accident of tokenization.

Multi-term scoring is batched: the engine gathers every query term's
CSR postings rows in one scatter-gather
(:meth:`~repro.index.inverted.InvertedIndex.gather_postings`), scores
all elements in one vectorised :meth:`~repro.index.scoring.Scorer.score_terms`
call, and accumulates per-document totals with a single weighted
``bincount`` scatter-add.  Scorers that only implement the per-term
``score_term`` surface (third-party scorers) fall back to the scalar
accumulation loop, which also survives as
:func:`repro.index.reference.search_scalar` for equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.document import Document
from repro.index.inverted import InvertedIndex, PostingList
from repro.index.positions import PositionalIndex
from repro.index.scoring import CollectionContext, Scorer, TfIdfScorer


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: str
    score: float
    doc_index: int


class SearchEngine:
    """Ranked retrieval with pluggable scoring."""

    def __init__(self, index: InvertedIndex, scorer: Scorer | None = None) -> None:
        self.index = index
        self.scorer = scorer or TfIdfScorer()
        self._context = CollectionContext(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )
        self._doc_ids = index.corpus.doc_ids
        self._positional: PositionalIndex | None = None

    def search(self, query: str, n: int = 10) -> list[SearchResult]:
        """Return the top ``n`` documents for ``query``.

        The query text is analyzed by the database's own pipeline;
        query terms that are stopwords (to the database) or unindexed
        simply contribute nothing — a query of only such terms returns
        no documents, exactly the "failed query" the paper's Table 3
        counts.  Repeated query terms count once (see module docstring).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        terms = self.index.analyzer.analyze(query)
        if not terms:
            return []
        if len(terms) > 1:
            terms = list(dict.fromkeys(terms))
        if len(terms) == 1:
            return self._search_single_term(terms[0], n)
        score_terms = getattr(self.scorer, "score_terms", None)
        if score_terms is None:
            return self._search_multi_term_scalar(terms, n)
        ids = self.index.term_ids(terms)
        if ids.size == 0:
            return []
        docs, tfs, dfs = self.index.gather_postings(ids)
        if docs.size == 0:
            return []
        doc_lengths = self.index.doc_lengths[docs]
        element_scores = score_terms(
            tfs.astype(np.float64),
            doc_lengths.astype(np.float64),
            dfs.astype(np.float64),
            self._context,
        )
        # One scatter-add accumulates every (term, document) element.
        # bincount adds in element order — term-major, documents
        # ascending — the same addition order as the scalar per-term
        # loop, so accumulated scores match it bit for bit.
        num_documents = self.index.num_documents
        totals = np.bincount(docs, weights=element_scores, minlength=num_documents)
        matched = np.bincount(docs, minlength=num_documents)
        candidates = np.flatnonzero(matched)
        return self._top_n(candidates, totals[candidates], n)

    def _search_multi_term_scalar(self, terms: list[str], n: int) -> list[SearchResult]:
        """Per-term accumulation for scorers without a batched surface."""
        scores: dict[int, float] = {}
        for term in terms:
            posting = self.index.postings(term)
            if posting is None:
                continue
            doc_lengths = self.index.doc_lengths[posting.doc_indices]
            term_scores = self.scorer.score_term(
                posting.term_frequencies.astype(np.float64),
                doc_lengths.astype(np.float64),
                posting.document_frequency,
                self._context,
            )
            for doc_index, score in zip(posting.doc_indices, term_scores):
                key = int(doc_index)
                scores[key] = scores.get(key, 0.0) + float(score)
        if not scores:
            return []
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:n]
        doc_ids = self._doc_ids
        return [
            SearchResult(doc_id=doc_ids[doc_index], score=score, doc_index=doc_index)
            for doc_index, score in ranked
        ]

    def _top_n(
        self, doc_indices: np.ndarray, scores: np.ndarray, n: int
    ) -> list[SearchResult]:
        """Rank candidate documents: score descending, then document order."""
        count = min(n, scores.size)
        if count < scores.size:
            candidates = np.argpartition(-scores, count - 1)[:count]
        else:
            candidates = np.arange(scores.size)
        order = candidates[np.lexsort((doc_indices[candidates], -scores[candidates]))]
        doc_ids = self._doc_ids
        return [
            SearchResult(
                doc_id=doc_ids[int(doc_indices[i])],
                score=float(scores[i]),
                doc_index=int(doc_indices[i]),
            )
            for i in order
        ]

    def _search_single_term(self, term: str, n: int) -> list[SearchResult]:
        """Vectorised fast path for the sampler's one-term queries."""
        posting = self.index.postings(term)
        if posting is None:
            return []
        doc_lengths = self.index.doc_lengths[posting.doc_indices]
        scores = self.scorer.score_term(
            posting.term_frequencies.astype(np.float64),
            doc_lengths.astype(np.float64),
            posting.document_frequency,
            self._context,
        )
        return self._top_n(posting.doc_indices, scores, n)

    def search_phrase(self, phrase: str, n: int = 10) -> list[SearchResult]:
        """Return the top ``n`` documents containing ``phrase`` adjacently.

        The phrase is analyzed by the database's pipeline; matching
        documents are scored with the configured scorer using the
        phrase's occurrence counts as term frequencies and its document
        frequency as df.  The positional index is built lazily on the
        first phrase query (one extra pass over the corpus).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        terms = self.index.analyzer.analyze(phrase)
        if not terms:
            return []
        if len(terms) == 1:
            return self._search_single_term(terms[0], n)
        if self._positional is None:
            self._positional = PositionalIndex(self.index.corpus, self.index.analyzer)
        posting = self._positional.phrase_postings(terms)
        return self._rank_posting(posting, n)

    def _rank_posting(self, posting: PostingList, n: int) -> list[SearchResult]:
        if len(posting) == 0:
            return []
        doc_lengths = self.index.doc_lengths[posting.doc_indices]
        scores = self.scorer.score_term(
            posting.term_frequencies.astype(np.float64),
            doc_lengths.astype(np.float64),
            posting.document_frequency,
            self._context,
        )
        return self._top_n(posting.doc_indices, scores, n)

    def fetch(self, doc_id: str) -> Document:
        """Return the full document for ``doc_id``."""
        return self.index.corpus.get(doc_id)
