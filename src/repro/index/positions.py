"""Positional postings and phrase matching.

The paper's §2.1 lists phrase statistics among the richer language
models a selection service might want; :mod:`repro.lm.ngrams` builds
them from sampled documents.  This module supplies the *engine* side:
an opt-in positional layer over :class:`~repro.index.inverted.InvertedIndex`
that records each term's occurrence positions, so the search engine can
answer quoted-phrase queries ("white house") — and so a database being
sampled can be a fully featured IR system, not a toy.

Positions index the document's analyzed term stream (after stopping and
stemming, matching how Inquery-era systems matched phrases over index
terms).  A phrase matches wherever its analyzed terms occur at
consecutive positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.inverted import PostingList


@dataclass(frozen=True)
class PositionalPostingList:
    """Postings for one term with per-document position arrays."""

    doc_indices: np.ndarray
    positions: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.positions) != self.doc_indices.size:
            raise ValueError("positions must align with doc_indices")

    def __len__(self) -> int:
        return int(self.doc_indices.size)


class PositionalIndex:
    """Positional layer over an analyzed corpus.

    Built from the same (corpus, analyzer) pair as an
    :class:`~repro.index.inverted.InvertedIndex`; the two indexes agree
    on vocabulary and document numbering by construction.
    """

    def __init__(self, corpus, analyzer) -> None:
        self.corpus = corpus
        self.analyzer = analyzer
        accumulator: dict[str, tuple[list[int], list[np.ndarray]]] = {}
        for doc_index, document in enumerate(corpus):
            term_positions: dict[str, list[int]] = {}
            for position, term in enumerate(analyzer.analyze(document.text)):
                term_positions.setdefault(term, []).append(position)
            for term, positions in term_positions.items():
                docs, position_arrays = accumulator.setdefault(term, ([], []))
                docs.append(doc_index)
                position_arrays.append(np.asarray(positions, dtype=np.int64))
        self._postings: dict[str, PositionalPostingList] = {
            term: PositionalPostingList(
                doc_indices=np.asarray(docs, dtype=np.int64),
                positions=tuple(position_arrays),
            )
            for term, (docs, position_arrays) in accumulator.items()
        }

    def postings(self, term: str) -> PositionalPostingList | None:
        """Positional postings for an analyzed ``term`` (None if absent)."""
        return self._postings.get(term)

    def phrase_postings(self, terms: list[str]) -> PostingList:
        """Documents (with match counts) containing ``terms`` adjacently.

        Returns an ordinary :class:`PostingList` whose term frequencies
        are phrase occurrence counts, so phrase hits can be scored by
        the same scorers as single terms.  An empty phrase or any
        unindexed member yields an empty posting list.
        """
        empty = PostingList(
            doc_indices=np.empty(0, dtype=np.int64),
            term_frequencies=np.empty(0, dtype=np.int64),
        )
        if not terms:
            return empty
        member_postings = []
        for term in terms:
            posting = self._postings.get(term)
            if posting is None:
                return empty
            member_postings.append(posting)

        # Start from the first term's occurrences, then repeatedly keep
        # only positions whose successor exists in the next term.
        current: dict[int, np.ndarray] = {
            int(doc): positions
            for doc, positions in zip(
                member_postings[0].doc_indices, member_postings[0].positions
            )
        }
        for offset, posting in enumerate(member_postings[1:], start=1):
            successor: dict[int, np.ndarray] = {
                int(doc): positions
                for doc, positions in zip(posting.doc_indices, posting.positions)
            }
            surviving: dict[int, np.ndarray] = {}
            for doc, start_positions in current.items():
                positions_here = successor.get(doc)
                if positions_here is None:
                    continue
                mask = np.isin(start_positions + offset, positions_here)
                if mask.any():
                    surviving[doc] = start_positions[mask]
            current = surviving
            if not current:
                return empty
        docs = sorted(current)
        return PostingList(
            doc_indices=np.asarray(docs, dtype=np.int64),
            term_frequencies=np.asarray(
                [len(current[doc]) for doc in docs], dtype=np.int64
            ),
        )
