"""The remote database abstraction.

:class:`DatabaseServer` models the paper's minimal assumption about a
searchable text database: *"each database is capable of running queries
and returning documents that match the queries"* (Section 3).  The
sampling client may only call :meth:`run_query`; everything else a
cooperative protocol like STARTS would expose (vocabulary, frequencies,
corpus size) is deliberately absent from that surface.

For evaluation the server also exposes ground truth —
:meth:`actual_language_model` and :attr:`num_documents` — which the
experiment harness uses to score learned models but a sampler must
never touch.

Every query and returned document is metered in :class:`QueryCosts`,
supporting the paper's resource accounting (queries run, documents
examined, bytes transferred).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.collection import Corpus
from repro.corpus.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.scoring import Scorer
from repro.index.search import SearchEngine
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


@dataclass
class QueryCosts:
    """Cumulative cost of interacting with one database.

    The failure meters are disjoint: ``failed_queries`` counts queries
    that *completed* but matched nothing (empty result list, the
    paper's Section 5.2 notion of a failed query), while
    ``errored_queries`` counts queries that *died mid-execution*
    (transport or engine errors).  Reports that want the old combined
    notion read the derived :attr:`unsuccessful_queries` total.
    """

    queries_run: int = 0
    failed_queries: int = 0
    errored_queries: int = 0
    documents_returned: int = 0
    bytes_returned: int = 0
    hit_count_queries: int = 0

    @property
    def unsuccessful_queries(self) -> int:
        """Derived total of queries that yielded no documents.

        Backward-compatible view: before the meters were split,
        ``failed_queries`` folded errored queries in too.
        """
        return self.failed_queries + self.errored_queries

    def record(self, documents: list[Document]) -> None:
        """Account for one executed query and its results."""
        self.queries_run += 1
        if not documents:
            self.failed_queries += 1
        self.documents_returned += len(documents)
        self.bytes_returned += sum(document.size_bytes for document in documents)

    def record_error(self) -> None:
        """Account for a query that raised instead of returning results.

        An attempted query consumed server work even when it died
        mid-execution, so the meters must see it — otherwise retried
        queries look free and experiment accounting undercounts cost.
        Errored queries are *not* folded into ``failed_queries``, so
        empty-result and transport-errored queries stay distinguishable
        in reports.
        """
        self.queries_run += 1
        self.errored_queries += 1

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stored meters plus the derived total).

        Feed it to :meth:`repro.obs.metrics.MetricSet.update_from` to
        fold server-side costs into a client-side metric set.
        """
        return {
            "queries_run": self.queries_run,
            "failed_queries": self.failed_queries,
            "errored_queries": self.errored_queries,
            "unsuccessful_queries": self.unsuccessful_queries,
            "documents_returned": self.documents_returned,
            "bytes_returned": self.bytes_returned,
            "hit_count_queries": self.hit_count_queries,
        }


@dataclass(frozen=True)
class ServerPolicy:
    """Knobs modelling real-world server behaviour.

    Parameters
    ----------
    max_results_per_query:
        Hard cap the server imposes on any single query (many web
        databases return at most 10 results); ``None`` means uncapped.
    """

    max_results_per_query: int | None = None


class DatabaseServer:
    """A searchable text database with a query-only public surface."""

    def __init__(
        self,
        corpus: Corpus,
        analyzer: Analyzer | None = None,
        scorer: Scorer | None = None,
        policy: ServerPolicy | None = None,
        name: str | None = None,
    ) -> None:
        self.name = name or corpus.name
        self.policy = policy or ServerPolicy()
        self.index = InvertedIndex(corpus, analyzer)
        self.engine = SearchEngine(self.index, scorer)
        self.costs = QueryCosts()

    # -- the public (sampler-visible) surface ----------------------------------

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Run ``query`` and return up to ``max_docs`` full documents.

        This is the *only* operation the paper assumes of a database.
        A query wrapped in double quotes ("...") is answered as an
        exact-phrase query, as most real search services do.
        """
        if max_docs <= 0:
            raise ValueError(f"max_docs must be positive, got {max_docs}")
        if self.policy.max_results_per_query is not None:
            max_docs = min(max_docs, self.policy.max_results_per_query)
        try:
            stripped = query.strip()
            if len(stripped) >= 2 and stripped.startswith('"') and stripped.endswith('"'):
                results = self.engine.search_phrase(stripped[1:-1], n=max_docs)
            else:
                results = self.engine.search(query, n=max_docs)
            documents = [self.engine.fetch(result.doc_id) for result in results]
        except Exception:
            # A query that dies mid-execution was still attempted; meter
            # it before propagating so cost accounting stays honest.
            self.costs.record_error()
            raise
        self.costs.record(documents)
        return documents

    def hit_count(self, query: str) -> int:
        """Number of documents matching ``query`` ("about N results").

        Most real search services report a match count alongside
        results; it is part of the observable search surface, not
        ground-truth access.  The sample-resample size estimator
        (:mod:`repro.sizeest`) is built on it.  For a multi-term query
        the count is of documents matching *any* term (the engine's
        candidate set).
        """
        terms = self.index.analyzer.analyze(query)
        self.costs.hit_count_queries += 1
        if not terms:
            return 0
        term_ids = self.index.term_ids(terms)
        if term_ids.size == 0:
            return 0
        doc_indices, _, _ = self.index.gather_postings(np.unique(term_ids))
        return int(np.unique(doc_indices).size)

    # -- ground truth (evaluation only) ----------------------------------------

    def actual_language_model(self) -> LanguageModel:
        """The database's true language model (its index). Evaluation only."""
        return self.index.language_model()

    @property
    def num_documents(self) -> int:
        """True corpus size. Evaluation only — samplers cannot observe this."""
        return self.index.num_documents

    def reset_costs(self) -> None:
        """Zero the cost meters (e.g. between experimental runs)."""
        self.costs = QueryCosts()
