"""Document scoring functions.

Three classic ranked-retrieval scorers, all operating vectorised over a
term's posting list.  For the sampler's one-term queries any monotone
function of normalised term frequency produces the same ranking; the
multi-term machinery exists because the library's search engine is a
general substrate (the query-expansion experiments issue multi-term
queries).

Each scorer implements two entry points:

* :meth:`Scorer.score_term` — one query term's postings, with a scalar
  document frequency (the single-term fast path); and
* :meth:`Scorer.score_terms` — a *batch* of postings elements spanning
  several query terms, with a per-element document-frequency array, so
  the search engine can score an entire multi-term query in one
  vectorised pass and scatter-add the results per document.

All scorers return zeros for an empty collection
(``num_documents == 0``): the idf normalisations divide by
``log(num_documents + 1)``, which is 0 for an empty collection, and a
scorer constructed against an empty database is legal public API — it
must degrade to "nothing matches", not raise ``ZeroDivisionError``.

* :class:`TfIdfScorer` — INQUERY/CORI-style tf.idf: a saturating,
  length-normalised tf component times a scaled idf.
* :class:`Bm25Scorer` — Okapi BM25 with the usual k1/b parameters.
* :class:`InqueryScorer` — the INQUERY belief function
  ``0.4 + 0.6 * T * I``, matching the engine the paper's databases ran.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np


@dataclass(frozen=True)
class CollectionContext:
    """The collection-level statistics a scorer needs."""

    num_documents: int
    average_doc_length: float


class Scorer(Protocol):
    """Scores documents from posting-list arrays."""

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Return per-document scores for one query term."""
        ...  # pragma: no cover - protocol

    def score_terms(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequencies: np.ndarray,
        context: CollectionContext,
    ) -> np.ndarray:
        """Return per-element scores for a multi-term postings batch.

        ``document_frequencies`` carries each element's term's df, so
        elements of different query terms can be scored in one pass.
        """
        ...  # pragma: no cover - protocol


def _robertson_tf(
    term_frequencies: np.ndarray, doc_lengths: np.ndarray, average_doc_length: float
) -> np.ndarray:
    """The saturating, length-normalised tf used by INQUERY."""
    if average_doc_length <= 0:
        average_doc_length = 1.0
    return term_frequencies / (
        term_frequencies + 0.5 + 1.5 * doc_lengths / average_doc_length
    )


def _scaled_idf(document_frequency: int, num_documents: int) -> float:
    """INQUERY's idf, scaled to [0, 1] by ``log(N + 1)`` and floored at 0."""
    idf = math.log((num_documents + 0.5) / max(document_frequency, 1)) / math.log(
        num_documents + 1.0
    )
    return max(idf, 0.0)


def _scaled_idf_array(
    document_frequencies: np.ndarray, num_documents: int
) -> np.ndarray:
    """Vectorised :func:`_scaled_idf` over a per-element df array."""
    idf = np.log(
        (num_documents + 0.5) / np.maximum(document_frequencies, 1.0)
    ) / math.log(num_documents + 1.0)
    return np.maximum(idf, 0.0)


@dataclass(frozen=True)
class TfIdfScorer:
    """Robertson tf times scaled idf."""

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings: Robertson tf x scaled idf."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        return tf * _scaled_idf(document_frequency, context.num_documents)

    def score_terms(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequencies: np.ndarray,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score a multi-term postings batch in one vectorised pass."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        return tf * _scaled_idf_array(document_frequencies, context.num_documents)


@dataclass(frozen=True)
class Bm25Scorer:
    """Okapi BM25.

    Parameters are the conventional defaults; the idf uses the
    non-negative "plus one" form so rare terms never score negatively.
    """

    k1: float = 1.2
    b: float = 0.75

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings with Okapi BM25."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        idf = math.log(
            1.0
            + (context.num_documents - document_frequency + 0.5)
            / (document_frequency + 0.5)
        )
        average = context.average_doc_length or 1.0
        denominator = term_frequencies + self.k1 * (
            1.0 - self.b + self.b * doc_lengths / average
        )
        return idf * term_frequencies * (self.k1 + 1.0) / denominator

    def score_terms(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequencies: np.ndarray,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score a multi-term postings batch in one vectorised pass."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        idf = np.log(
            1.0
            + (context.num_documents - document_frequencies + 0.5)
            / (document_frequencies + 0.5)
        )
        average = context.average_doc_length or 1.0
        denominator = term_frequencies + self.k1 * (
            1.0 - self.b + self.b * doc_lengths / average
        )
        return idf * term_frequencies * (self.k1 + 1.0) / denominator


@dataclass(frozen=True)
class InqueryScorer:
    """The INQUERY belief function ``b + (1 - b) * T * I``."""

    default_belief: float = 0.4

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings with the INQUERY belief function."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        idf = _scaled_idf(document_frequency, context.num_documents)
        return self.default_belief + (1.0 - self.default_belief) * tf * idf

    def score_terms(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequencies: np.ndarray,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score a multi-term postings batch in one vectorised pass."""
        if context.num_documents == 0:
            return np.zeros_like(term_frequencies, dtype=np.float64)
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        idf = _scaled_idf_array(document_frequencies, context.num_documents)
        return self.default_belief + (1.0 - self.default_belief) * tf * idf
