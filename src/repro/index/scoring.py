"""Document scoring functions.

Three classic ranked-retrieval scorers, all operating vectorised over a
term's posting list.  For the sampler's one-term queries any monotone
function of normalised term frequency produces the same ranking; the
multi-term machinery exists because the library's search engine is a
general substrate (the query-expansion experiments issue multi-term
queries).

* :class:`TfIdfScorer` — INQUERY/CORI-style tf.idf: a saturating,
  length-normalised tf component times a scaled idf.
* :class:`Bm25Scorer` — Okapi BM25 with the usual k1/b parameters.
* :class:`InqueryScorer` — the INQUERY belief function
  ``0.4 + 0.6 * T * I``, matching the engine the paper's databases ran.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np


@dataclass(frozen=True)
class CollectionContext:
    """The collection-level statistics a scorer needs."""

    num_documents: int
    average_doc_length: float


class Scorer(Protocol):
    """Scores every document in one term's posting list."""

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Return per-document scores for one query term."""
        ...  # pragma: no cover - protocol


def _robertson_tf(
    term_frequencies: np.ndarray, doc_lengths: np.ndarray, average_doc_length: float
) -> np.ndarray:
    """The saturating, length-normalised tf used by INQUERY."""
    if average_doc_length <= 0:
        average_doc_length = 1.0
    return term_frequencies / (
        term_frequencies + 0.5 + 1.5 * doc_lengths / average_doc_length
    )


@dataclass(frozen=True)
class TfIdfScorer:
    """Robertson tf times scaled idf."""

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings: Robertson tf x scaled idf."""
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        idf = math.log((context.num_documents + 0.5) / max(document_frequency, 1)) / math.log(
            context.num_documents + 1.0
        )
        return tf * max(idf, 0.0)


@dataclass(frozen=True)
class Bm25Scorer:
    """Okapi BM25.

    Parameters are the conventional defaults; the idf uses the
    non-negative "plus one" form so rare terms never score negatively.
    """

    k1: float = 1.2
    b: float = 0.75

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings with Okapi BM25."""
        average = context.average_doc_length or 1.0
        idf = math.log(
            1.0
            + (context.num_documents - document_frequency + 0.5)
            / (document_frequency + 0.5)
        )
        denominator = term_frequencies + self.k1 * (
            1.0 - self.b + self.b * doc_lengths / average
        )
        return idf * term_frequencies * (self.k1 + 1.0) / denominator


@dataclass(frozen=True)
class InqueryScorer:
    """The INQUERY belief function ``b + (1 - b) * T * I``."""

    default_belief: float = 0.4

    def score_term(
        self,
        term_frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        document_frequency: int,
        context: CollectionContext,
    ) -> np.ndarray:
        """Score one term's postings with the INQUERY belief function."""
        tf = _robertson_tf(term_frequencies, doc_lengths, context.average_doc_length)
        idf = math.log((context.num_documents + 0.5) / max(document_frequency, 1)) / math.log(
            context.num_documents + 1.0
        )
        return self.default_belief + (1.0 - self.default_belief) * tf * max(idf, 0.0)
