"""Scalar reference implementations of the array-backed hot paths.

The array index core (:mod:`repro.index.inverted`), the batched
multi-term scorer (:mod:`repro.index.search`), and batched language
model ingestion (:meth:`repro.lm.model.LanguageModel.add_documents`)
all replaced straightforward pure-python loops.  Following the
``measure_run_full`` pattern from the experiment runner, those loops
are kept here — readable, obviously-correct, and *slow* — as the
ground truth the property tests and performance benchmarks compare
against:

* statistics (df, ctf, doc lengths, vocabulary) must match the array
  build **bit-identically**;
* scores and rankings must match the batched scorer to 1e-9 / exactly;
* a model built by :func:`add_documents_scalar` must equal one built by
  the batched ``add_documents``.

Nothing in the serving or sampling path imports this module; it exists
so every speedup stays falsifiable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.corpus.collection import Corpus
from repro.index.inverted import InvertedIndex
from repro.index.scoring import CollectionContext, Scorer
from repro.index.search import SearchResult
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer

__all__ = [
    "ScalarIndexStatistics",
    "add_documents_scalar",
    "build_index_scalar",
    "search_scalar",
]


@dataclass(frozen=True)
class ScalarIndexStatistics:
    """Everything the scalar one-pass build produces, in plain dicts."""

    df: dict[str, int]
    ctf: dict[str, int]
    postings: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    doc_lengths: np.ndarray

    @property
    def vocabulary(self) -> list[str]:
        """Terms in accumulation (first-occurrence) order."""
        return list(self.postings)


def build_index_scalar(
    corpus: Corpus, analyzer: Analyzer | None = None
) -> ScalarIndexStatistics:
    """The pre-array index build: per-document Counter + dict-of-lists.

    This is the loop :class:`~repro.index.inverted.InvertedIndex`
    used before the CSR refactor, verbatim; term order (dict insertion
    order) and per-term document order (ascending) are exactly what the
    array build must reproduce.
    """
    analyzer = analyzer or Analyzer.inquery_style()
    _MISS = object()
    token_to_term: dict[str, str | None] = {}
    cache_get = token_to_term.get
    analyze_token = analyzer.analyze_token
    iter_tokens = analyzer.tokenizer.iter_tokens
    doc_lengths = np.zeros(len(corpus), dtype=np.int64)
    accumulator: dict[str, tuple[list[int], list[int]]] = {}
    for doc_index, document in enumerate(corpus):
        terms = []
        for token in iter_tokens(document.text):
            term = cache_get(token, _MISS)
            if term is _MISS:
                term = token_to_term[token] = analyze_token(token)
            if term is not None:
                terms.append(term)
        doc_lengths[doc_index] = len(terms)
        for term, tf in Counter(terms).items():
            if term not in accumulator:
                accumulator[term] = ([], [])
            docs, tfs = accumulator[term]
            docs.append(doc_index)
            tfs.append(tf)
    return ScalarIndexStatistics(
        df={term: len(docs) for term, (docs, _) in accumulator.items()},
        ctf={term: sum(tfs) for term, (_, tfs) in accumulator.items()},
        postings={
            term: (tuple(docs), tuple(tfs)) for term, (docs, tfs) in accumulator.items()
        },
        doc_lengths=doc_lengths,
    )


def search_scalar(
    index: InvertedIndex,
    scorer: Scorer,
    query: str,
    n: int = 10,
) -> list[SearchResult]:
    """The pre-batching multi-term search: per-term scoring into a dict.

    Implements the engine's pinned semantics (duplicate query terms
    deduplicated, first occurrence kept) with the original scalar
    accumulation loop: one ``score_term`` call per query term, python
    dict scatter-add, full sort with ``(-score, doc_index)``
    tie-breaking.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    context = CollectionContext(
        num_documents=index.num_documents,
        average_doc_length=index.average_doc_length,
    )
    terms = list(dict.fromkeys(index.analyzer.analyze(query)))
    scores: dict[int, float] = {}
    for term in terms:
        posting = index.postings(term)
        if posting is None:
            continue
        doc_lengths = index.doc_lengths[posting.doc_indices]
        term_scores = scorer.score_term(
            posting.term_frequencies.astype(np.float64),
            doc_lengths.astype(np.float64),
            posting.document_frequency,
            context,
        )
        for doc_index, score in zip(posting.doc_indices, term_scores):
            key = int(doc_index)
            scores[key] = scores.get(key, 0.0) + float(score)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:n]
    doc_ids = index.corpus.doc_ids
    return [
        SearchResult(doc_id=doc_ids[doc_index], score=score, doc_index=doc_index)
        for doc_index, score in ranked
    ]


def add_documents_scalar(
    model: LanguageModel, documents: Iterable[Sequence[str]]
) -> None:
    """Fold documents one at a time — the batched ingestion's reference."""
    for terms in documents:
        model.add_document(terms)
