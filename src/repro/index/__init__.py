"""Full-text retrieval substrate (the paper's "Inquery").

The paper assumes each database is a black-box IR system that can "run
queries and return documents" — nothing more.  This package implements
that system from scratch:

* :class:`InvertedIndex` — term → postings with document frequencies,
  collection term frequencies, and document lengths;
* scorers — TF-IDF (INQUERY-style), Okapi BM25, and the INQUERY belief
  function;
* :class:`SearchEngine` — ranked retrieval over the index; and
* :class:`DatabaseServer` — the *uncooperative remote database*
  abstraction the sampler talks to: run a query, get back at most N
  full-text documents, with all traffic metered.  Ground-truth access
  (the actual language model) is available for evaluation but clearly
  segregated.

The index stores its postings in contiguous CSR-style numpy arrays
behind an interned term-id vocabulary; the scalar dict-of-lists
implementations it replaced live on in :mod:`repro.index.reference` as
equivalence references for the property tests and benchmarks.
"""

from repro.index.inverted import InvertedIndex, PostingList
from repro.index.positions import PositionalIndex, PositionalPostingList
from repro.index.reference import (
    ScalarIndexStatistics,
    add_documents_scalar,
    build_index_scalar,
    search_scalar,
)
from repro.index.scoring import Bm25Scorer, InqueryScorer, Scorer, TfIdfScorer
from repro.index.search import SearchEngine, SearchResult
from repro.index.server import DatabaseServer, QueryCosts

__all__ = [
    "Bm25Scorer",
    "DatabaseServer",
    "InqueryScorer",
    "InvertedIndex",
    "PositionalIndex",
    "PositionalPostingList",
    "PostingList",
    "QueryCosts",
    "ScalarIndexStatistics",
    "Scorer",
    "SearchEngine",
    "SearchResult",
    "TfIdfScorer",
    "add_documents_scalar",
    "build_index_scalar",
    "search_scalar",
]
