"""The STARTS metadata-record exchange format.

A STARTS export is a text document with a metadata header followed by
one record per index term.  We implement the essential subset the paper
discusses (Section 2.2): term, document frequency, collection term
frequency, and the corpus attributes a selection service needs to
interpret them — document count, token count, and whether the source
applied stemming and stopword removal.

.. code-block:: text

    @starts version=1 source=wsj88
    @attr documents=39904 tokens=9723528 stemming=true stopwords=true
    term apple df=120 ctf=310
    term bear df=3 ctf=3

The format is deliberately line-oriented and diffable; the point of the
implementation is not wire-level fidelity to the 1997 draft but making
the *architecture* of cooperative acquisition concrete enough to break
in the ways the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lm.model import LanguageModel

_HEADER_PREFIX = "@starts"
_ATTR_PREFIX = "@attr"
_RECORD_PREFIX = "term"


@dataclass(frozen=True)
class StartsMetadata:
    """Corpus attributes carried in the export header."""

    source: str
    documents: int
    tokens: int
    stemming: bool
    stopwords: bool


@dataclass(frozen=True)
class StartsRecord:
    """One term's statistics."""

    term: str
    df: int
    ctf: int


def export_starts(
    model: LanguageModel,
    stemming: bool = True,
    stopwords: bool = True,
) -> str:
    """Serialize ``model`` as a STARTS export.

    ``stemming`` / ``stopwords`` describe the *source's* indexing
    pipeline; an honest server exports its index model with the flags
    matching how that index was built.
    """
    lines = [
        f"{_HEADER_PREFIX} version=1 source={model.name}",
        f"{_ATTR_PREFIX} documents={model.documents_seen} tokens={model.tokens_seen} "
        f"stemming={'true' if stemming else 'false'} "
        f"stopwords={'true' if stopwords else 'false'}",
    ]
    for term in sorted(model.vocabulary):
        lines.append(f"{_RECORD_PREFIX} {term} df={model.df(term)} ctf={model.ctf(term)}")
    return "\n".join(lines) + "\n"


def _parse_fields(parts: Iterable[str]) -> dict[str, str]:
    fields = {}
    for part in parts:
        if "=" not in part:
            raise ValueError(f"malformed field {part!r}")
        key, value = part.split("=", 1)
        fields[key] = value
    return fields


def _parse_bool(value: str) -> bool:
    if value not in ("true", "false"):
        raise ValueError(f"expected true/false, got {value!r}")
    return value == "true"


def parse_starts(text: str) -> tuple[StartsMetadata, list[StartsRecord]]:
    """Parse a STARTS export into metadata and term records."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise ValueError("not a STARTS export: missing @starts header")
    header_fields = _parse_fields(lines[0].split()[1:])
    if header_fields.get("version") != "1":
        raise ValueError(f"unsupported STARTS version {header_fields.get('version')!r}")
    if len(lines) < 2 or not lines[1].startswith(_ATTR_PREFIX):
        raise ValueError("missing @attr line")
    attr_fields = _parse_fields(lines[1].split()[1:])
    try:
        metadata = StartsMetadata(
            source=header_fields.get("source", "unknown"),
            documents=int(attr_fields["documents"]),
            tokens=int(attr_fields["tokens"]),
            stemming=_parse_bool(attr_fields["stemming"]),
            stopwords=_parse_bool(attr_fields["stopwords"]),
        )
    except KeyError as exc:
        raise ValueError(f"missing @attr field {exc}") from None
    records = list(_parse_records(lines[2:]))
    return metadata, records


def _parse_records(lines: Iterable[str]) -> Iterator[StartsRecord]:
    for line_number, line in enumerate(lines, start=3):
        parts = line.split()
        if not parts or parts[0] != _RECORD_PREFIX or len(parts) != 4:
            raise ValueError(f"line {line_number}: malformed term record {line!r}")
        fields = _parse_fields(parts[2:])
        try:
            yield StartsRecord(term=parts[1], df=int(fields["df"]), ctf=int(fields["ctf"]))
        except KeyError as exc:
            raise ValueError(f"line {line_number}: missing field {exc}") from None


def records_to_model(
    metadata: StartsMetadata, records: Iterable[StartsRecord], name: str | None = None
) -> LanguageModel:
    """Build a :class:`LanguageModel` from parsed records."""
    model = LanguageModel(name=name or metadata.source)
    for record in records:
        model.add_term(record.term, df=record.df, ctf=record.ctf)
    model.documents_seen = metadata.documents
    model.tokens_seen = metadata.tokens
    return model
