"""The STARTS cooperative protocol — the baseline the paper argues against.

STARTS (Gravano et al., the Stanford proposal the paper's Section 2.2
discusses) lets a database *export* its language model: a list of index
terms with frequency statistics plus a little corpus metadata (document
count, whether stemming/stopping was applied).  It is the cooperative
alternative to query-based sampling, and the paper's critique of it is
architectural: it fails for databases that **can't** cooperate (legacy
systems), **won't** cooperate (no incentive), or **lie** (content
misrepresentation) — and even honest exports are hard to compare
because every database indexes its own way.

This package makes all of that executable:

* :func:`export_starts` / :func:`parse_starts` — a faithful small
  implementation of the metadata-record exchange;
* :class:`CooperativeSource` — acquisition via the protocol;
* :class:`SamplingSource` — acquisition via query-based sampling,
  behind the same interface;
* server wrappers modelling the failure modes:
  :class:`LegacyServer` (can't cooperate), :class:`UncooperativeServer`
  (won't), and :class:`MisrepresentingServer` (lies in its export,
  while its *search behaviour* remains honest — you cannot fake the
  documents you actually return);
* :func:`acquire_language_model` — a selection service's acquisition
  routine: try the cooperative protocol, fall back to sampling.

Benchmark Ext-4 uses these to quantify the paper's robustness argument.
"""

from repro.starts.acquire import (
    AcquisitionResult,
    CooperativeSource,
    SamplingSource,
    acquire_language_model,
)
from repro.starts.protocol import (
    StartsMetadata,
    StartsRecord,
    export_starts,
    parse_starts,
)
from repro.starts.servers import (
    CooperationRefused,
    HonestServer,
    LegacyServer,
    MisrepresentingServer,
    UncooperativeServer,
)

__all__ = [
    "AcquisitionResult",
    "CooperationRefused",
    "CooperativeSource",
    "HonestServer",
    "LegacyServer",
    "MisrepresentingServer",
    "SamplingSource",
    "StartsMetadata",
    "StartsRecord",
    "UncooperativeServer",
    "acquire_language_model",
    "export_starts",
    "parse_starts",
]
