"""Server wrappers modelling the cooperative protocol's failure modes.

Each wrapper delegates searching to an inner
:class:`~repro.index.server.DatabaseServer` — the *search behaviour is
always honest*, because a database that returned junk documents would
be useless to its own users.  What varies is the STARTS surface:

* :class:`LegacyServer` — a pre-protocol system; asking for an export
  raises :class:`CooperationRefused` ("can't cooperate").
* :class:`UncooperativeServer` — understands the protocol and declines
  ("won't cooperate", e.g. no incentive or a hostile alliance).
* :class:`MisrepresentingServer` — exports a *forged* language model to
  attract traffic ("lies"): it inflates its corpus statistics and
  injects attractive vocabulary it does not contain.  The paper's
  argument (Section 3) is that sampling defeats this, "because language
  models are learned as a consequence of normal database behavior."
"""

from __future__ import annotations

from repro.corpus.document import Document
from repro.index.server import DatabaseServer
from repro.lm.model import LanguageModel
from repro.starts.protocol import export_starts


class CooperationRefused(RuntimeError):
    """The database did not provide a STARTS export."""


class _DelegatingServer:
    """Shared delegation of the honest search surface."""

    def __init__(self, inner: DatabaseServer) -> None:
        self.inner = inner
        self.name = inner.name

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Honest retrieval — identical to the wrapped server's."""
        return self.inner.run_query(query, max_docs=max_docs)


class HonestServer(_DelegatingServer):
    """A fully cooperative database: exports its real index model."""

    def starts_export(self) -> str:
        """Return the honest STARTS export of the real index."""
        return export_starts(self.inner.actual_language_model())


class LegacyServer(_DelegatingServer):
    """A legacy system: searchable, but speaks no export protocol."""

    def starts_export(self) -> str:
        """Always refuses: legacy systems predate the protocol."""
        raise CooperationRefused(f"{self.name}: legacy system, no STARTS support")


class UncooperativeServer(_DelegatingServer):
    """Understands STARTS but declines to answer this service."""

    def starts_export(self) -> str:
        """Always refuses: the database declines this service."""
        raise CooperationRefused(f"{self.name}: export request denied")


class MisrepresentingServer(_DelegatingServer):
    """Exports a forged model to attract selection traffic.

    Parameters
    ----------
    inflation:
        Multiplier applied to every exported frequency and to the corpus
        size attributes (a database pretending to be bigger and richer).
    injected_terms:
        Vocabulary the database does *not* contain but claims to, with a
        high claimed frequency (spam terms chasing popular queries).
    """

    def __init__(
        self,
        inner: DatabaseServer,
        inflation: float = 10.0,
        injected_terms: tuple[str, ...] = (),
    ) -> None:
        super().__init__(inner)
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        self.inflation = inflation
        self.injected_terms = injected_terms

    def forged_model(self) -> LanguageModel:
        """The lie: inflated statistics plus injected vocabulary."""
        honest = self.inner.actual_language_model()
        forged = LanguageModel(name=f"{self.name}-forged")
        for stats in honest.items():
            forged.add_term(
                stats.term,
                df=int(stats.df * self.inflation),
                ctf=int(stats.ctf * self.inflation),
            )
        claimed_df = max(int(honest.documents_seen * self.inflation * 0.5), 1)
        for term in self.injected_terms:
            if term not in forged:
                forged.add_term(term, df=claimed_df, ctf=claimed_df * 3)
        forged.documents_seen = int(honest.documents_seen * self.inflation)
        forged.tokens_seen = int(honest.tokens_seen * self.inflation)
        return forged

    def starts_export(self) -> str:
        """Export the forged model as if it were honest."""
        return export_starts(self.forged_model())
