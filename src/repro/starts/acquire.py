"""Language-model acquisition: cooperative protocol vs. sampling.

A selection service needs one language model per database, however it
can get it.  This module puts both acquisition routes behind one
interface so they can be swapped, compared, and composed:

* :class:`CooperativeSource` asks the database for a STARTS export and
  trusts whatever comes back;
* :class:`SamplingSource` runs query-based sampling and builds the
  model from retrieved documents;
* :func:`acquire_language_model` is the pragmatic policy the paper's
  architecture implies: try the protocol (it is cheap when it works),
  fall back to sampling when the database can't or won't cooperate —
  or always sample, if the service doesn't trust exports.

Acquisition degrades rather than fails: when even sampling cannot
finish because the database became unreachable (the transport layer's
circuit breaker stayed open), the result carries whatever partial model
was learned plus a ``warning`` — a selection service would rather rank
with a weak model than drop the database silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import CooperativeDatabase, SearchableDatabase
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments, StoppingCriterion
from repro.sampling.transport import ServerError
from repro.starts.protocol import parse_starts, records_to_model
from repro.starts.servers import CooperationRefused


def _database_name(server: object) -> str:
    return str(getattr(server, "name", None) or type(server).__name__)


@dataclass(frozen=True)
class AcquisitionResult:
    """A language model plus how it was obtained."""

    model: LanguageModel
    method: str  # "starts", "sampling", or "sampling_partial"
    queries_run: int = 0
    documents_examined: int = 0
    #: Set when the model is degraded (e.g. sampling ended because the
    #: database became unreachable); None for clean acquisitions.
    warning: str | None = None


class CooperativeSource:
    """Acquire via the STARTS protocol (trusting the export)."""

    def acquire(
        self, server: CooperativeDatabase, recorder: Recorder = NULL_RECORDER
    ) -> AcquisitionResult:
        """Request and parse the server's export.

        Raises :class:`CooperationRefused` (propagated from the server)
        when the database can't or won't export, and ``ValueError`` on a
        malformed export.
        """
        name = _database_name(server)
        with recorder.span("acquisition", database=name, method="starts") as span:
            export = server.starts_export()
            metadata, records = parse_starts(export)
            model = records_to_model(metadata, records, name=f"{name}-starts")
            span.set(terms=len(model))
        return AcquisitionResult(model=model, method="starts")


class SamplingSource:
    """Acquire via query-based sampling (no trust required).

    Parameters mirror :class:`~repro.sampling.sampler.QueryBasedSampler`.
    """

    def __init__(
        self,
        bootstrap: QueryTermSelector,
        stopping: StoppingCriterion | None = None,
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        self.bootstrap = bootstrap
        self.stopping = stopping or MaxDocuments(300)
        self.config = config
        self.seed = seed

    def acquire(
        self, server: SearchableDatabase, recorder: Recorder = NULL_RECORDER
    ) -> AcquisitionResult:
        """Sample the database and return the learned model.

        If the database becomes unreachable mid-run (transport circuit
        breaker open), the partial model is returned with
        ``method="sampling_partial"`` and a warning instead of raising.
        """
        with recorder.span(
            "acquisition", database=_database_name(server), method="sampling"
        ) as span:
            sampler = QueryBasedSampler(
                server,
                bootstrap=self.bootstrap,
                stopping=self.stopping,
                config=self.config,
                seed=self.seed,
                recorder=recorder,
            )
            run = sampler.run()
            method = "sampling"
            warning = None
            if run.stop_reason == "database_unreachable":
                method = "sampling_partial"
                warning = (
                    f"database became unreachable after "
                    f"{run.documents_examined} documents / {run.queries_run} "
                    f"queries; the model is partial"
                )
            span.set(
                method=method,
                documents_examined=run.documents_examined,
                queries_run=run.queries_run,
            )
        return AcquisitionResult(
            model=run.model,
            method=method,
            queries_run=run.queries_run,
            documents_examined=run.documents_examined,
            warning=warning,
        )


def acquire_language_model(
    server: SearchableDatabase,
    sampling: SamplingSource,
    cooperative: CooperativeSource | None = None,
    trust_exports: bool = True,
    recorder: Recorder = NULL_RECORDER,
) -> AcquisitionResult:
    """Acquire a model for ``server``: protocol first, sampling fallback.

    With ``trust_exports=False`` the cooperative route is skipped
    entirely — the stance the paper recommends for open multi-party
    environments, where an export can be forged but retrieval behaviour
    cannot.

    The policy degrades in three steps: protocol → sampling →
    partial-model-with-warning.  A transport failure during the
    cooperative exchange (a :class:`ServerError`) falls through to
    sampling just like a refusal; a sampling run cut short by an
    unreachable database still yields its partial model, flagged via
    :attr:`AcquisitionResult.warning`.
    """
    if (
        trust_exports
        and cooperative is not None
        and isinstance(server, CooperativeDatabase)
    ):
        try:
            return cooperative.acquire(server, recorder=recorder)
        except (CooperationRefused, ServerError, ValueError):
            pass
    return sampling.acquire(server, recorder=recorder)
