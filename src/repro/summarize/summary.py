"""Top-term summaries of a (learned) language model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lm.model import LanguageModel, TermStats
from repro.text.stopwords import INQUERY_STOPWORDS


@dataclass(frozen=True)
class DatabaseSummary:
    """The top terms of one database under one ranking metric."""

    database: str
    rank_by: str
    terms: tuple[TermStats, ...]

    @property
    def words(self) -> list[str]:
        """Just the term strings, in rank order."""
        return [stats.term for stats in self.terms]


def summarize(
    model: LanguageModel,
    k: int = 50,
    rank_by: str = "avg_tf",
    stopwords: frozenset[str] = INQUERY_STOPWORDS,
    min_df: int = 2,
    min_length: int = 3,
) -> DatabaseSummary:
    """Summarize ``model`` by its top ``k`` content terms.

    Follows the paper's Table 4 method: discard stopwords, rank the
    rest by ``rank_by`` (df, ctf, or avg-tf; the paper found avg-tf the
    most informative).  ``min_df`` guards against hapax noise — a term
    seen once in one sampled document has an avg-tf as high as a term
    seen often in every document, so unfiltered avg-tf rankings degrade
    to noise.  ``min_length`` mirrors the index-term conventions used
    throughout the paper.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    getter = {
        "df": lambda s: float(s.df),
        "ctf": lambda s: float(s.ctf),
        "avg_tf": lambda s: s.avg_tf,
    }
    if rank_by not in getter:
        raise ValueError(f"rank_by must be df/ctf/avg_tf, got {rank_by!r}")
    score = getter[rank_by]
    candidates = [
        stats
        for stats in model.items()
        if stats.term not in stopwords
        and stats.df >= min_df
        and len(stats.term) >= min_length
        and not stats.term.isdigit()
    ]
    candidates.sort(key=lambda stats: (-score(stats), stats.term))
    return DatabaseSummary(
        database=model.name, rank_by=rank_by, terms=tuple(candidates[:k])
    )


def format_summary_grid(summary: DatabaseSummary, columns: int = 5) -> str:
    """Render a summary as the paper's Table 4-style multi-column grid."""
    if columns <= 0:
        raise ValueError(f"columns must be positive, got {columns}")
    rows_per_column = -(-len(summary.terms) // columns) if summary.terms else 0
    lines = [
        f"Top {len(summary.terms)} terms of {summary.database!r} (ranked by {summary.rank_by})"
    ]
    value = {
        "df": lambda s: f"{s.df}",
        "ctf": lambda s: f"{s.ctf}",
        "avg_tf": lambda s: f"{s.avg_tf:.2f}",
    }[summary.rank_by]
    for row in range(rows_per_column):
        cells = []
        for column in range(columns):
            index = column * rows_per_column + row
            if index < len(summary.terms):
                stats = summary.terms[index]
                cells.append(f"{stats.term:<14}{value(stats):>8}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
