"""Database content summarization (paper Section 7).

A learned language model doubles as a human-readable sketch of what a
database is about: rank its non-stopword terms by frequency and show
the top of the list.  The paper demonstrates this on the Microsoft
Customer Support database (Table 4), finding avg-tf the most
informative ranking because it surfaces topically concentrated content
words (``excel``, ``foxpro``, ``windows`` …) rather than generic
frequent ones.
"""

from repro.summarize.summary import DatabaseSummary, format_summary_grid, summarize

__all__ = ["DatabaseSummary", "format_summary_grid", "summarize"]
