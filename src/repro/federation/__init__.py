"""Federated search, end to end.

The paper's motivating application assembled from the library's parts:
a :class:`FederatedSearchService` owns a set of searchable databases,
*acquires* a language model for each (by sampling, via the STARTS
protocol, or protocol-with-sampling-fallback), *selects* databases per
query (CORI/GlOSS/KL), *searches* the selected few, and *merges* their
results into one ranking.

:mod:`repro.federation.testbed` provides the evaluation scaffolding
shared by the benchmarks and examples: topically *skewed* database
partitions (70% of a topic's documents land in its home database, the
rest spill over — the texture of real by-source testbeds) and
distinctive-term topical queries whose relevance oracle is the
generating topic.
"""

from repro.federation.service import (
    FederatedResponse,
    FederatedSearchService,
    SearchRequest,
)
from repro.federation.testbed import (
    TopicalQuery,
    build_skewed_partition,
    relevance_counts,
    topical_queries,
)

__all__ = [
    "FederatedResponse",
    "FederatedSearchService",
    "SearchRequest",
    "TopicalQuery",
    "build_skewed_partition",
    "relevance_counts",
    "topical_queries",
]
