"""The federated search service.

Owns the databases, their (acquired) language models, a selector, and a
merger; answers queries end to end.  The acquisition step is pluggable
so the same service can run on sampled models (the paper's proposal),
trusted STARTS exports (the cooperative baseline), or ground-truth
models (the evaluation upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.dbselect.base import DatabaseRanking, DatabaseSelector
from repro.dbselect.cori import CoriSelector
from repro.dbselect.merge import CoriMerger, MergedResult, ResultMerger
from repro.index.search import SearchResult
from repro.index.server import DatabaseServer
from repro.lm.model import LanguageModel
from repro.sampling.pool import SamplingPool
from repro.sampling.sampler import SamplerConfig
from repro.sampling.selection import QueryTermSelector


@dataclass(frozen=True)
class FederatedResponse:
    """Everything a federated query produced."""

    query: str
    ranking: DatabaseRanking
    searched: tuple[str, ...]
    results: tuple[MergedResult, ...]


class FederatedSearchService:
    """Selects, searches, and merges across many databases.

    Parameters
    ----------
    servers:
        Name → :class:`~repro.index.server.DatabaseServer` (or anything
        with ``run_query`` for sampling plus ``engine.search`` for
        retrieval).
    selector:
        Database selection algorithm (default CORI).
    merger:
        Result merging strategy (default the CORI merge).
    databases_per_query:
        How many top-ranked databases to actually search.
    """

    def __init__(
        self,
        servers: Mapping[str, DatabaseServer],
        selector: DatabaseSelector | None = None,
        merger: ResultMerger | None = None,
        databases_per_query: int = 3,
    ) -> None:
        if not servers:
            raise ValueError("need at least one database server")
        if databases_per_query <= 0:
            raise ValueError("databases_per_query must be positive")
        self.servers = dict(servers)
        self.selector = selector or CoriSelector()
        self.merger = merger or CoriMerger()
        self.databases_per_query = databases_per_query
        self.models: dict[str, LanguageModel] = {}

    # -- acquisition -------------------------------------------------------

    def learn_models(
        self,
        bootstrap_factory: Callable[[str], QueryTermSelector],
        total_documents: int,
        scheduler: str = "uniform",
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        """Acquire every model by query-based sampling (via a pool)."""
        pool = SamplingPool(
            self.servers,
            bootstrap_factory,
            scheduler=scheduler,
            config=config,
            seed=seed,
        )
        result = pool.run(total_documents)
        self.models = {name: run.model for name, run in result.runs.items()}

    def use_models(self, models: Mapping[str, LanguageModel]) -> None:
        """Install externally acquired models (STARTS, ground truth, …)."""
        missing = set(self.servers) - set(models)
        if missing:
            raise ValueError(f"missing models for databases: {sorted(missing)}")
        self.models = dict(models)

    # -- query answering ----------------------------------------------------

    def select(self, query: str) -> DatabaseRanking:
        """Rank the databases for ``query`` using the acquired models."""
        if not self.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        return self.selector.rank(query, self.models)

    def search(self, query: str, n: int = 10, docs_per_database: int = 10) -> FederatedResponse:
        """Answer ``query``: select databases, search them, merge results."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        ranking = self.select(query)
        searched = tuple(ranking.top(self.databases_per_query))
        per_database: dict[str, list[SearchResult]] = {}
        for name in searched:
            per_database[name] = self.servers[name].engine.search(
                query, n=docs_per_database
            )
        merged = self.merger.merge(ranking, per_database, n=n)
        return FederatedResponse(
            query=query,
            ranking=ranking,
            searched=searched,
            results=tuple(merged),
        )
