"""The federated search service.

Owns the databases, their (acquired) language models, a selector, and a
merger; answers queries end to end.  The acquisition step is pluggable
so the same service can run on sampled models (the paper's proposal),
trusted STARTS exports (the cooperative baseline), or ground-truth
models (the evaluation upper bound).

Databases are held behind the :mod:`repro.backend` protocols: anything
:class:`~repro.backend.SearchableDatabase` can be sampled, and the
subset actually selected for retrieval must additionally be
:class:`~repro.backend.RetrievableDatabase` (expose a ranked-retrieval
engine).  Conformance to the sampling surface is validated at
construction, so a misconfigured service fails with a clear
``TypeError`` instead of deep inside a query.

The query-answering surface is a :class:`SearchRequest` →
:class:`FederatedResponse` pair.  Installed model sets are versioned by
:attr:`FederatedSearchService.model_epoch`, which moves whenever
:meth:`~FederatedSearchService.learn_models`,
:meth:`~FederatedSearchService.use_models`, or a staleness-driven
:meth:`~FederatedSearchService.refresh_stale_models` installs new
models — the serving layer (:mod:`repro.serving`) keys its compiled
scorers and caches on that epoch.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.backend import RetrievableDatabase, SearchableDatabase, require_searchable
from repro.classify.router import RequestRouting, RoutingDecision, TopicRouter
from repro.dbselect.base import DatabaseRanking, DatabaseSelector
from repro.dbselect.merge import CoriMerger, MergedResult, ResultMerger
from repro.dbselect.registry import make_selector
from repro.index.search import SearchResult
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.pool import SamplingPool
from repro.sampling.sampler import SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.staleness import RefreshPolicy, StalenessReport
from repro.store.base import ModelStorage, open_store
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class SearchRequest:
    """One federated query, fully specified.

    Parameters
    ----------
    query:
        The user's query text.
    n:
        Size of the merged result list.
    docs_per_database:
        Results requested from each searched database before merging.
    deadline:
        Wall-clock budget in seconds for the retrieval fan-out, or
        ``None`` for no limit.  Backends that miss the deadline are
        *dropped* from the merge and reported in
        :attr:`FederatedResponse.dropped`, never raised.
    databases_per_query:
        Override of the service's configured selection depth for this
        request (``None`` keeps the service default).
    routing:
        Optional topic-routing instructions
        (:class:`~repro.classify.router.RequestRouting`): restrict the
        fan-out to databases classified into the given topics, or
        adjust the broadcast-fallback confidence floor.  ``None`` (the
        default, and what every pre-routing client sends) leaves the
        decision to the service's router — or to plain broadcast when
        no router is installed.
    """

    query: str
    n: int = 10
    docs_per_database: int = 10
    deadline: float | None = None
    databases_per_query: int | None = None
    routing: RequestRouting | None = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.docs_per_database <= 0:
            raise ValueError(
                f"docs_per_database must be positive, got {self.docs_per_database}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.databases_per_query is not None and self.databases_per_query <= 0:
            raise ValueError(
                f"databases_per_query must be positive, got {self.databases_per_query}"
            )


@dataclass(frozen=True)
class FederatedResponse:
    """Everything a federated query produced.

    ``searched`` lists the databases whose results made the merge;
    ``dropped`` the selected databases that missed the request deadline
    or failed (degradation, not an error); ``timings`` the per-database
    retrieval wall time in seconds for every backend that completed.
    ``routing`` reports what the topic router did with the query
    (:class:`~repro.classify.router.RoutingDecision`) — ``None`` when
    no router was consulted, exactly the pre-routing response shape.
    """

    query: str
    ranking: DatabaseRanking
    searched: tuple[str, ...]
    results: tuple[MergedResult, ...]
    dropped: tuple[str, ...] = ()
    timings: Mapping[str, float] = field(default_factory=dict)
    routing: RoutingDecision | None = None


class FederatedSearchService:
    """Selects, searches, and merges across many databases.

    Parameters
    ----------
    servers:
        Name → database.  Every entry must satisfy
        :class:`~repro.backend.SearchableDatabase` (validated here);
        entries routed to retrieval by :meth:`search` must also satisfy
        :class:`~repro.backend.RetrievableDatabase`.
    selector:
        Database selection algorithm (default CORI).
    merger:
        Result merging strategy (default the CORI merge).
    databases_per_query:
        How many top-ranked databases to actually search.
    router:
        Optional :class:`~repro.classify.router.TopicRouter`; when
        installed, every query passes through
        :meth:`resolve_candidates`' routing stage, which can restrict
        the fan-out to topically matching databases (falling back to
        broadcast on low confidence).
    recorder:
        Observability sink (:mod:`repro.obs`): spans over acquisition
        (``pool_run`` and below) and per federated query
        (``federated_search`` with a nested ``search`` span per
        database retrieved from).
    """

    def __init__(
        self,
        servers: Mapping[str, SearchableDatabase],
        selector: DatabaseSelector | None = None,
        merger: ResultMerger | None = None,
        databases_per_query: int = 3,
        router: TopicRouter | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not servers:
            raise ValueError("need at least one database server")
        if databases_per_query <= 0:
            raise ValueError("databases_per_query must be positive")
        self.servers: dict[str, SearchableDatabase] = {
            name: require_searchable(server, name)
            for name, server in servers.items()
        }
        self.selector = selector or make_selector("cori")
        self.merger = merger or CoriMerger()
        self.databases_per_query = databases_per_query
        self.router = router
        self.recorder = recorder
        self.models: dict[str, LanguageModel] = {}
        self._model_epoch = 0

    # -- acquisition -------------------------------------------------------

    @property
    def model_epoch(self) -> int:
        """Version of the installed model set (0 = nothing installed).

        Moves by one every time a full or partial model set is
        installed; consumers that compile or cache anything derived
        from the models (the serving frontend) invalidate on change.
        """
        return self._model_epoch

    def _install_models(self, models: Mapping[str, LanguageModel]) -> None:
        self.models = dict(models)
        self._model_epoch += 1

    def learn_models(
        self,
        bootstrap_factory: Callable[[str], QueryTermSelector],
        total_documents: int,
        scheduler: str = "uniform",
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        """Acquire every model by query-based sampling (via a pool)."""
        pool = SamplingPool(
            self.servers,
            bootstrap_factory,
            scheduler=scheduler,
            config=config,
            seed=seed,
            recorder=self.recorder,
        )
        result = pool.run(total_documents)
        self._install_models({name: run.model for name, run in result.runs.items()})

    def use_models(self, models: Mapping[str, LanguageModel]) -> None:
        """Install externally acquired models (STARTS, ground truth, …)."""
        missing = set(self.servers) - set(models)
        if missing:
            raise ValueError(f"missing models for databases: {sorted(missing)}")
        self._install_models(models)

    # -- durable persistence -----------------------------------------------

    @staticmethod
    def _as_store(store: "ModelStorage | str | Path") -> ModelStorage:
        if isinstance(store, (str, Path)):
            return open_store(store)
        return store

    def save_models(self, store: "ModelStorage | str | Path") -> None:
        """Persist the installed model set (with its epoch) durably.

        The store directory is written crash-safely as one unit (see
        :class:`~repro.store.ModelStore`); a killed save never corrupts
        a previously saved set.  A path resolves to whatever layout is
        on disk (flat, or sharded if a fleet manifest is present — see
        :func:`repro.store.open_store`).
        """
        if not self.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        self._as_store(store).save(self.models, model_epoch=self._model_epoch)

    def load_models(self, store: "ModelStorage | str | Path") -> None:
        """Warm-start from a durable store instead of re-sampling.

        Every server must have a model in the store (extra models are
        ignored — only this federation's models are read, which on a
        sharded fleet store means touching just the shards its names
        hash to).  :attr:`model_epoch` always moves *forward*: it
        becomes the stored epoch or the current epoch plus one,
        whichever is larger, so serving caches keyed on the epoch
        (:class:`~repro.serving.frontend.FederationFrontend`) can never
        confuse warm-started models with a superseded in-memory set.
        """
        resolved = self._as_store(store)
        missing = set(self.servers) - set(resolved.model_names())
        if missing:
            raise ValueError(
                f"store at {resolved.root} is missing models for databases: "
                f"{sorted(missing)}"
            )
        self.models = {name: resolved.load_model(name) for name in self.servers}
        self._model_epoch = max(self._model_epoch + 1, resolved.model_epoch())

    def refresh_stale_models(
        self,
        bootstrap_factory: Callable[[str], QueryTermSelector],
        policy: RefreshPolicy | None = None,
        seed: int = 0,
        *,
        num_workers: int = 4,
        analyzer: Analyzer | None = None,
    ) -> dict[str, StalenessReport]:
        """Probe every model for staleness; re-sample only the drifted ones.

        A thin enqueue-and-await wrapper over the fleet sweep
        (:func:`repro.fleet.run_refresh_sweep`): every database becomes
        a prioritized job on a durable queue drained by
        ``num_workers`` worker threads.  Semantics are unchanged from
        the old inline sweep — every database is probed with the same
        derived seed as before, stale ones are re-sampled, and if any
        model was actually refreshed the new set is installed and
        :attr:`model_epoch` moves once (so serving caches invalidate).
        ``analyzer`` is the installed models' text pipeline, threaded
        through every probe and refresh so a refreshed model speaks the
        same vocabulary as the one it replaces.  Returns the
        per-database staleness reports either way.
        """
        if not self.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        from repro.fleet.sweep import run_refresh_sweep

        result = run_refresh_sweep(
            self.servers,
            self.models,
            bootstrap_factory,
            policy=policy,
            seed=seed,
            num_workers=num_workers,
            analyzer=analyzer,
            recorder=self.recorder,
        )
        if result.failed_jobs:
            details = "; ".join(
                f"{job.database}: {job.error}" for job in result.failed_jobs
            )
            raise RuntimeError(f"refresh sweep failed for some databases: {details}")
        if result.outcome.refreshed:
            self._install_models(result.outcome.models)
        return dict(result.outcome.reports)

    # -- query answering ----------------------------------------------------

    def select(self, query: str) -> DatabaseRanking:
        """Rank the databases for ``query`` using the acquired models."""
        if not self.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        return self.selector.rank(query, self.models)

    def resolve_candidates(
        self, request: SearchRequest, ranking: DatabaseRanking
    ) -> tuple[tuple[str, ...], RoutingDecision | None]:
        """The fan-out set for ``request``, given a selector ranking.

        This is the *one* place the selection depth and the topic
        router apply — the serial :meth:`search` path and the
        concurrent serving frontend
        (:meth:`~repro.serving.frontend.FederationFrontend.search_incremental`)
        both call it, so routing behaviour can never diverge between
        them.  Without a router (and without a requested topic
        restriction) it is the classic top-``depth`` cut and the
        decision is ``None`` — the pre-routing response shape.
        """
        depth = request.databases_per_query or self.databases_per_query
        if self.router is None:
            if request.routing is not None and request.routing.topics:
                # The client asked for topics but this service has no
                # classification data: honour the contract by reporting
                # an explicit fallback instead of guessing.
                decision = RoutingDecision(
                    mode="broadcast",
                    topics=request.routing.topics,
                    confidence=0.0,
                    candidates=len(ranking.entries),
                    fell_back=True,
                    reason="no_router",
                )
                return tuple(ranking.top(depth)), decision
            return tuple(ranking.top(depth)), None
        selected, decision = self.router.route(
            request.query, ranking, depth, requested=request.routing
        )
        if self.recorder.enabled:
            if decision.mode == "routed":
                self.recorder.count("serving.routed_queries")
            if decision.fell_back:
                self.recorder.count("serving.routing_fallbacks")
        return selected, decision

    def require_retrievable(self, name: str) -> RetrievableDatabase:
        """The named server, validated for ranked retrieval."""
        server = self.servers[name]
        if not isinstance(server, RetrievableDatabase):
            raise TypeError(
                f"database {name!r} ({type(server).__name__}) was selected "
                "for retrieval but does not satisfy RetrievableDatabase: "
                "missing engine"
            )
        return server

    def search(
        self,
        request: SearchRequest | str,
        n: int = 10,
        docs_per_database: int = 10,
    ) -> FederatedResponse:
        """Answer a :class:`SearchRequest`: select, search, merge.

        .. deprecated:: the positional ``search(query, n,
           docs_per_database)`` form still works but warns; pass a
           :class:`SearchRequest` instead.
        """
        if isinstance(request, str):
            warnings.warn(
                "FederatedSearchService.search(query, n, docs_per_database) is "
                "deprecated; pass a SearchRequest instead",
                DeprecationWarning,
                stacklevel=2,
            )
            request = SearchRequest(
                query=request, n=n, docs_per_database=docs_per_database
            )
        with self.recorder.span("federated_search", query=request.query) as federated_span:
            ranking = self.select(request.query)
            selected, routing = self.resolve_candidates(request, ranking)
            per_database: dict[str, list[SearchResult]] = {}
            timings: dict[str, float] = {}
            dropped: list[str] = []
            started = time.perf_counter()
            for name in selected:
                # Serial retrieval can only honour the deadline *between*
                # backends; the concurrent frontend (repro.serving)
                # enforces it per backend.
                if (
                    request.deadline is not None
                    and time.perf_counter() - started >= request.deadline
                ):
                    dropped.append(name)
                    self.recorder.event(
                        "backend_dropped", database=name, reason="deadline"
                    )
                    continue
                server = self.require_retrievable(name)
                with self.recorder.span("search", database=name) as search_span:
                    backend_started = time.perf_counter()
                    results = server.engine.search(
                        request.query, n=request.docs_per_database
                    )
                    timings[name] = time.perf_counter() - backend_started
                    search_span.set(results=len(results))
                per_database[name] = results
            searched = tuple(name for name in selected if name in per_database)
            if self.recorder.enabled:
                # Per-database serving popularity, read back by the fleet
                # scheduler (staleness × popularity / cost allocation).
                for name in searched:
                    self.recorder.count(f"serving.db.{name}.searched")
            merged = self.merger.merge(ranking, per_database, n=request.n)
            federated_span.set(
                searched=list(searched), results=len(merged), dropped=list(dropped)
            )
        return FederatedResponse(
            query=request.query,
            ranking=ranking,
            searched=searched,
            results=tuple(merged),
            dropped=tuple(dropped),
            timings=timings,
            routing=routing,
        )
