"""The federated search service.

Owns the databases, their (acquired) language models, a selector, and a
merger; answers queries end to end.  The acquisition step is pluggable
so the same service can run on sampled models (the paper's proposal),
trusted STARTS exports (the cooperative baseline), or ground-truth
models (the evaluation upper bound).

Databases are held behind the :mod:`repro.backend` protocols: anything
:class:`~repro.backend.SearchableDatabase` can be sampled, and the
subset actually selected for retrieval must additionally be
:class:`~repro.backend.RetrievableDatabase` (expose a ranked-retrieval
engine).  Conformance to the sampling surface is validated at
construction, so a misconfigured service fails with a clear
``TypeError`` instead of deep inside a query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.backend import RetrievableDatabase, SearchableDatabase, require_searchable
from repro.dbselect.base import DatabaseRanking, DatabaseSelector
from repro.dbselect.cori import CoriSelector
from repro.dbselect.merge import CoriMerger, MergedResult, ResultMerger
from repro.index.search import SearchResult
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.pool import SamplingPool
from repro.sampling.sampler import SamplerConfig
from repro.sampling.selection import QueryTermSelector


@dataclass(frozen=True)
class FederatedResponse:
    """Everything a federated query produced."""

    query: str
    ranking: DatabaseRanking
    searched: tuple[str, ...]
    results: tuple[MergedResult, ...]


class FederatedSearchService:
    """Selects, searches, and merges across many databases.

    Parameters
    ----------
    servers:
        Name → database.  Every entry must satisfy
        :class:`~repro.backend.SearchableDatabase` (validated here);
        entries routed to retrieval by :meth:`search` must also satisfy
        :class:`~repro.backend.RetrievableDatabase`.
    selector:
        Database selection algorithm (default CORI).
    merger:
        Result merging strategy (default the CORI merge).
    databases_per_query:
        How many top-ranked databases to actually search.
    recorder:
        Observability sink (:mod:`repro.obs`): spans over acquisition
        (``pool_run`` and below) and per federated query
        (``federated_search`` with a nested ``search`` span per
        database retrieved from).
    """

    def __init__(
        self,
        servers: Mapping[str, SearchableDatabase],
        selector: DatabaseSelector | None = None,
        merger: ResultMerger | None = None,
        databases_per_query: int = 3,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not servers:
            raise ValueError("need at least one database server")
        if databases_per_query <= 0:
            raise ValueError("databases_per_query must be positive")
        self.servers: dict[str, SearchableDatabase] = {
            name: require_searchable(server, name)
            for name, server in servers.items()
        }
        self.selector = selector or CoriSelector()
        self.merger = merger or CoriMerger()
        self.databases_per_query = databases_per_query
        self.recorder = recorder
        self.models: dict[str, LanguageModel] = {}

    # -- acquisition -------------------------------------------------------

    def learn_models(
        self,
        bootstrap_factory: Callable[[str], QueryTermSelector],
        total_documents: int,
        scheduler: str = "uniform",
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        """Acquire every model by query-based sampling (via a pool)."""
        pool = SamplingPool(
            self.servers,
            bootstrap_factory,
            scheduler=scheduler,
            config=config,
            seed=seed,
            recorder=self.recorder,
        )
        result = pool.run(total_documents)
        self.models = {name: run.model for name, run in result.runs.items()}

    def use_models(self, models: Mapping[str, LanguageModel]) -> None:
        """Install externally acquired models (STARTS, ground truth, …)."""
        missing = set(self.servers) - set(models)
        if missing:
            raise ValueError(f"missing models for databases: {sorted(missing)}")
        self.models = dict(models)

    # -- query answering ----------------------------------------------------

    def select(self, query: str) -> DatabaseRanking:
        """Rank the databases for ``query`` using the acquired models."""
        if not self.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        return self.selector.rank(query, self.models)

    def search(self, query: str, n: int = 10, docs_per_database: int = 10) -> FederatedResponse:
        """Answer ``query``: select databases, search them, merge results."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        with self.recorder.span("federated_search", query=query) as federated_span:
            ranking = self.select(query)
            searched = tuple(ranking.top(self.databases_per_query))
            per_database: dict[str, list[SearchResult]] = {}
            for name in searched:
                server = self.servers[name]
                if not isinstance(server, RetrievableDatabase):
                    raise TypeError(
                        f"database {name!r} ({type(server).__name__}) was selected "
                        "for retrieval but does not satisfy RetrievableDatabase: "
                        "missing engine"
                    )
                with self.recorder.span("search", database=name) as search_span:
                    results = server.engine.search(query, n=docs_per_database)
                    search_span.set(results=len(results))
                per_database[name] = results
            merged = self.merger.merge(ranking, per_database, n=n)
            federated_span.set(searched=list(searched), results=len(merged))
        return FederatedResponse(
            query=query,
            ranking=ranking,
            searched=searched,
            results=tuple(merged),
        )
