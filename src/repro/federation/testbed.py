"""Federated-testbed construction: skewed partitions and topical queries.

Real multi-database testbeds (TREC collections split by source and
date) are topically *skewed but impure*: a finance database holds most
— not all — of the finance documents.  :func:`build_skewed_partition`
reproduces that texture from any topic-labelled corpus, and
:func:`topical_queries` derives evaluation queries whose relevance
oracle is the generating topic.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.corpus.collection import Corpus
from repro.text.analyzer import Analyzer
from repro.utils.rand import ensure_rng


def build_skewed_partition(
    corpus: Corpus,
    num_databases: int,
    spillover: float = 0.3,
    seed: int = 0,
    prefix: str = "db",
) -> list[Corpus]:
    """Split ``corpus`` into topically skewed databases.

    Topics are assigned home databases round-robin; each document lands
    in its topic's home with probability ``1 - spillover`` and in a
    uniformly random database otherwise.
    """
    if num_databases <= 0:
        raise ValueError("num_databases must be positive")
    if not 0.0 <= spillover <= 1.0:
        raise ValueError("spillover must be in [0, 1]")
    topics = sorted(corpus.topics())
    if not topics:
        raise ValueError("corpus has no topic labels; cannot build a skewed partition")
    rng = ensure_rng(seed)
    home = {topic: i % num_databases for i, topic in enumerate(topics)}
    buckets: dict[int, list] = defaultdict(list)
    for document in corpus:
        if document.topic is None or rng.random() < spillover:
            bucket = int(rng.integers(num_databases))
        else:
            bucket = home[document.topic]
        buckets[bucket].append(document)
    return [
        Corpus(documents, name=f"{prefix}{bucket}")
        for bucket, documents in sorted(buckets.items())
    ]


@dataclass(frozen=True)
class TopicalQuery:
    """An evaluation query with its relevance oracle."""

    topic: str
    text: str


def topical_queries(
    corpus_parts: Sequence[Corpus],
    max_topics: int | None = None,
    terms_per_query: int = 3,
    min_global_count: int = 20,
    analyzer: Analyzer | None = None,
) -> list[TopicalQuery]:
    """Distinctive-term queries, one per topic.

    A topic's query is its ``terms_per_query`` most *distinctive* index
    terms — highest ratio of within-topic count to global count, among
    terms globally frequent enough (``min_global_count``) to be
    plausible user vocabulary.
    """
    analyzer = analyzer or Analyzer.inquery_style()
    global_counts: Counter = Counter()
    per_topic: dict[str, Counter] = defaultdict(Counter)
    for part in corpus_parts:
        for document in part:
            terms = analyzer.analyze(document.text)
            global_counts.update(terms)
            if document.topic is not None:
                per_topic[document.topic].update(terms)
    queries = []
    for topic in sorted(per_topic)[: max_topics or len(per_topic)]:
        scored = sorted(
            (
                (count / global_counts[term], term)
                for term, count in per_topic[topic].items()
                if global_counts[term] >= min_global_count and len(term) >= 3
            ),
            reverse=True,
        )
        if not scored:
            continue
        text = " ".join(term for _, term in scored[:terms_per_query])
        queries.append(TopicalQuery(topic=topic, text=text))
    return queries


def relevance_counts(
    corpus_parts: Sequence[Corpus], topic: str
) -> dict[str, int]:
    """Per-database counts of documents generated from ``topic``."""
    return {
        part.name: sum(1 for document in part if document.topic == topic)
        for part in corpus_parts
    }
