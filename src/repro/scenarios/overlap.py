"""Overlapping databases: the same document on several servers.

Federated testbeds are usually built as *partitions* — every document
lives in exactly one database — but real federations overlap heavily:
mirrors, aggregators, and cross-posted articles put identical content
behind many endpoints.  Overlap is invisible to database selection
(each database's language model honestly describes what it holds) but
lethal to naive result merging, where the copies of one strong document
crowd the merged top-``n``.

:func:`build_overlapping_partition` starts from the skewed partition of
:func:`repro.federation.testbed.build_skewed_partition` and replicates
a seeded fraction of documents into extra databases, keeping ``doc_id``
identical across copies — the property mergers must deduplicate on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.corpus.collection import Corpus
from repro.federation.testbed import build_skewed_partition
from repro.utils.rand import derive_seed, ensure_rng

__all__ = ["OverlapStats", "build_overlapping_partition", "overlap_statistics"]


def build_overlapping_partition(
    corpus: Corpus,
    num_databases: int,
    replication: float = 0.3,
    spillover: float = 0.3,
    seed: int = 0,
    prefix: str = "db",
) -> list[Corpus]:
    """Split ``corpus`` into skewed databases, then replicate across them.

    Each document first lands in one database exactly as in
    :func:`build_skewed_partition`; it is then copied into one further
    database with probability ``replication`` (same
    :class:`~repro.corpus.document.Document`, same ``doc_id``).  With
    ``replication=0`` the result is the plain skewed partition.
    """
    if num_databases < 2:
        raise ValueError("an overlapping federation needs at least 2 databases")
    if not 0.0 <= replication <= 1.0:
        raise ValueError("replication must be in [0, 1]")
    parts = build_skewed_partition(
        corpus,
        num_databases,
        spillover=spillover,
        seed=derive_seed(seed, "overlap", "partition"),
        prefix=prefix,
    )
    rng = ensure_rng(derive_seed(seed, "overlap", "replicate"))
    # Snapshot the pristine partition first: each document rolls once,
    # and a replica never re-rolls when its new home is iterated.
    originals = [
        (index, document) for index, part in enumerate(parts) for document in part
    ]
    for index, document in originals:
        if rng.random() >= replication:
            continue
        target = int(rng.integers(len(parts) - 1))
        if target >= index:
            target += 1
        if document.doc_id not in parts[target]:
            parts[target].add(document)
    return parts


@dataclass(frozen=True)
class OverlapStats:
    """How much content the databases of a federation share."""

    total_documents: int
    unique_documents: int
    replicated_documents: int
    max_copies: int

    @property
    def replication_rate(self) -> float:
        """Fraction of unique documents present in more than one database."""
        if self.unique_documents == 0:
            return 0.0
        return self.replicated_documents / self.unique_documents


def overlap_statistics(parts: Sequence[Corpus]) -> OverlapStats:
    """Measure the overlap structure of a federation."""
    copies: Counter[str] = Counter()
    for part in parts:
        copies.update(part.doc_ids)
    return OverlapStats(
        total_documents=sum(copies.values()),
        unique_documents=len(copies),
        replicated_documents=sum(1 for count in copies.values() if count > 1),
        max_copies=max(copies.values(), default=0),
    )
