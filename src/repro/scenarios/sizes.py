"""Heavy-tailed database-size mixes.

The paper's testbeds (Table 1) already span two orders of magnitude —
CACM's thousands of abstracts against TREC-123's million documents —
and real federations are worse: database sizes are roughly Zipfian.  A
*uniform* per-database sampling budget, the natural default, covers a
tiny database completely and a giant one barely at all; the size mix is
therefore an adversarial input to any fixed-budget acquisition policy.

:func:`heavy_tailed_sizes` produces the deterministic size vector;
:func:`build_heavy_tailed_federation` carves a corpus into databases of
exactly those sizes.
"""

from __future__ import annotations

from repro.corpus.collection import Corpus
from repro.utils.rand import derive_seed, ensure_rng
from repro.utils.zipf import zipf_probabilities

__all__ = ["build_heavy_tailed_federation", "heavy_tailed_sizes"]


def heavy_tailed_sizes(
    num_databases: int,
    total_documents: int,
    alpha: float = 1.2,
    min_documents: int = 10,
) -> list[int]:
    """Zipf-proportional sizes summing exactly to ``total_documents``.

    Database ``i`` receives mass proportional to ``(i + 1) ** -alpha``,
    floored at ``min_documents``; rounding residue is assigned by
    largest remainder so the vector is deterministic and exact.
    """
    if num_databases <= 0:
        raise ValueError("num_databases must be positive")
    if min_documents <= 0:
        raise ValueError("min_documents must be positive")
    if total_documents < num_databases * min_documents:
        raise ValueError(
            f"total_documents {total_documents} cannot give {num_databases} "
            f"databases at least {min_documents} documents each"
        )
    weights = zipf_probabilities(num_databases, alpha)
    spare = total_documents - num_databases * min_documents
    raw = [min_documents + float(weight) * spare for weight in weights]
    sizes = [int(value) for value in raw]
    remainders = sorted(
        range(num_databases), key=lambda i: (-(raw[i] - sizes[i]), i)
    )
    for i in remainders[: total_documents - sum(sizes)]:
        sizes[i] += 1
    return sizes


def build_heavy_tailed_federation(
    corpus: Corpus,
    num_databases: int,
    alpha: float = 1.2,
    min_documents: int = 10,
    seed: int = 0,
    prefix: str = "db",
) -> list[Corpus]:
    """Carve ``corpus`` into Zipf-sized databases.

    Documents are shuffled with a seeded permutation before slicing, so
    every database is a topical cross-section of the corpus and size is
    the *only* systematic difference between them — the clean version
    of the scenario, isolating the budget-vs-size effect.
    """
    sizes = heavy_tailed_sizes(
        num_databases, len(corpus), alpha=alpha, min_documents=min_documents
    )
    rng = ensure_rng(derive_seed(seed, "heavy-tail", "shuffle"))
    order = rng.permutation(len(corpus))
    parts: list[Corpus] = []
    cursor = 0
    for index, size in enumerate(sizes):
        documents = [corpus[int(position)] for position in order[cursor : cursor + size]]
        cursor += size
        parts.append(Corpus(documents, name=f"{prefix}{index}"))
    return parts
