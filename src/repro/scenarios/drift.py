"""A database whose contents change underneath its clients.

Real databases are not static: articles are added, archives rotate,
whole collections are swapped behind a stable endpoint.  A model
learned last month silently describes the wrong collection — the
failure mode :mod:`repro.sampling.staleness` exists to detect.

:class:`DriftingDatabase` makes that world reproducible: it holds a
sequence of *phase* backends and a :class:`DriftSchedule` of
query-count switch points, and routes each ``run_query`` to the phase
the schedule says is live.  Because the clock is the query counter (not
wall time), a probe sequence is bit-deterministic: the same seed
produces the same queries, the same switch happens under the same
probe, and a staleness-latency measurement is exactly repeatable.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.backend import SearchableDatabase
from repro.corpus.document import Document
from repro.lm.model import LanguageModel
from repro.utils.rand import ensure_rng

__all__ = ["DriftSchedule", "DriftingDatabase"]


@dataclass(frozen=True)
class DriftSchedule:
    """Query-count switch points, strictly increasing.

    ``switch_points[i]`` is the number of queries after which phase
    ``i + 1`` becomes live: with ``switch_points == (40,)`` the first
    40 queries see phase 0 and every later query sees phase 1.
    """

    switch_points: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(point <= 0 for point in self.switch_points):
            raise ValueError("switch points must be positive query counts")
        if list(self.switch_points) != sorted(set(self.switch_points)):
            raise ValueError("switch points must be strictly increasing")

    @classmethod
    def from_seed(
        cls, seed: int, num_switches: int, mean_interval: int = 50
    ) -> "DriftSchedule":
        """Seeded schedule: ``num_switches`` roughly-geometric intervals.

        Each interval is drawn uniformly from
        ``[mean_interval // 2, mean_interval * 3 // 2]`` so schedules
        vary with the seed but never degenerate to back-to-back
        switches.
        """
        if num_switches <= 0:
            raise ValueError("num_switches must be positive")
        if mean_interval < 2:
            raise ValueError("mean_interval must be at least 2")
        rng = ensure_rng(seed)
        low = max(1, mean_interval // 2)
        high = mean_interval + mean_interval // 2
        points: list[int] = []
        clock = 0
        for _ in range(num_switches):
            clock += int(rng.integers(low, high + 1))
            points.append(clock)
        return cls(switch_points=tuple(points))

    def phase_at(self, queries_seen: int) -> int:
        """The live phase index after ``queries_seen`` queries."""
        if queries_seen < 0:
            raise ValueError("queries_seen must be non-negative")
        return bisect.bisect_right(self.switch_points, queries_seen)


class DriftingDatabase:
    """A searchable database that switches backends on a query schedule.

    The public surface is the sampler's: :meth:`run_query` (and
    :meth:`hit_count` when the live phase supports it).  Ground-truth
    accessors delegate to the *current* phase, mirroring
    :class:`~repro.index.server.DatabaseServer`'s evaluation-only
    surface — "what is actually in the database right now" is exactly
    what a staleness experiment scores against.

    Hit-count queries do not advance the drift clock: the schedule
    counts retrieval work, and keeping the clock on ``run_query`` alone
    means a size-estimation pass cannot perturb a drift experiment.
    """

    def __init__(
        self,
        phases: Sequence[SearchableDatabase],
        schedule: DriftSchedule,
        name: str | None = None,
    ) -> None:
        if len(phases) < 2:
            raise ValueError("a drifting database needs at least two phases")
        if len(schedule.switch_points) != len(phases) - 1:
            raise ValueError(
                f"schedule has {len(schedule.switch_points)} switch points "
                f"but {len(phases)} phases need {len(phases) - 1}"
            )
        self.phases = list(phases)
        self.schedule = schedule
        self.name = name or getattr(phases[0], "name", "drifting")
        self.queries_seen = 0

    @property
    def phase_index(self) -> int:
        """The live phase index under the current query count."""
        return self.schedule.phase_at(self.queries_seen)

    @property
    def current(self) -> SearchableDatabase:
        """The live phase backend."""
        return self.phases[self.phase_index]

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Serve ``query`` from the live phase, then advance the clock."""
        documents = self.current.run_query(query, max_docs=max_docs)
        self.queries_seen += 1
        return documents

    def hit_count(self, query: str) -> int:
        """Match count from the live phase (requires a hit-counting phase)."""
        counter = getattr(self.current, "hit_count", None)
        if counter is None:
            raise TypeError(f"phase {self.phase_index} does not support hit_count")
        return int(counter(query))

    # -- ground truth (evaluation only) -------------------------------------

    def actual_language_model(self) -> LanguageModel:
        """The live phase's true model. Evaluation only."""
        model = getattr(self.current, "actual_language_model", None)
        if model is None:
            raise TypeError(f"phase {self.phase_index} is not evaluable")
        return model()

    @property
    def num_documents(self) -> int:
        """The live phase's true size. Evaluation only."""
        size = getattr(self.current, "num_documents", None)
        if size is None:
            raise TypeError(f"phase {self.phase_index} is not evaluable")
        return int(size)
