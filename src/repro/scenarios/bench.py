"""The scenario bench: quantitative pins for each adversarial world.

One report (``BENCH_scenarios.json``), one result per scenario, each a
small set of metrics plus a boolean pin:

* **cluster** — sampling a cluster-structured corpus from a
  cluster-trapped bootstrap converges measurably worse than the
  matched shared-vocabulary control at the same document budget;
* **drift** — a pre-switch staleness probe reads fresh, the post-switch
  database is flagged within a bounded number of extra queries, and an
  end-to-end fleet refresh sweep re-learns a model that fits the new
  contents better than the stored one;
* **result_caps** — a server cap of ``max_results_per_query`` (plus a
  rank-biased results order) forces more queries for the same document
  budget while the learned model stays comparable;
* **overlap** — a naive concatenate-and-sort merge returns duplicate
  ``doc_id``\\ s from an overlapping federation; the repo's mergers
  return none;
* **heavy_tail** — a uniform per-database sampling budget covers the
  smallest database far better than the largest.

Run via ``repro scenarios bench``; the committed ``BENCH_scenarios.json``
at the repo root is this module's output on the default configuration,
and :func:`validate_scenarios_bench` is the schema/pin check the CI
smoke job runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.backend import SearchableDatabase
from repro.corpus.collection import Corpus
from repro.dbselect.base import DatabaseRanking, finish_ranking
from repro.dbselect.merge import CoriMerger, MergedResult, RawScoreMerger
from repro.federation.testbed import topical_queries
from repro.fleet.sweep import run_refresh_sweep
from repro.index.search import SearchResult
from repro.index.server import DatabaseServer, ServerPolicy
from repro.lm.compare import percentage_learned, spearman_rank_correlation
from repro.lm.model import LanguageModel
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import ListBootstrap, QueryTermSelector, RandomFromOther
from repro.sampling.staleness import RefreshPolicy, staleness_probe
from repro.sampling.stopping import MaxDocuments
from repro.scenarios.base import scenario_names
from repro.scenarios.bias import RankBiasedServer
from repro.scenarios.cluster import build_clustered_world
from repro.scenarios.drift import DriftingDatabase, DriftSchedule
from repro.scenarios.overlap import build_overlapping_partition, overlap_statistics
from repro.scenarios.sizes import build_heavy_tailed_federation
from repro.synth import cacm_like, wsj88_like
from repro.utils.rand import derive_seed

__all__ = [
    "SCENARIOS_BENCH_SCHEMA",
    "ScenarioResult",
    "ScenariosBenchReport",
    "format_scenarios_bench",
    "run_scenarios_bench",
    "validate_scenarios_bench",
    "write_scenarios_bench",
]

SCENARIOS_BENCH_SCHEMA = "repro-scenarios-bench/1"


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measured metrics and pass/fail pin."""

    scenario: str
    passed: bool
    detail: str
    metrics: Mapping[str, float]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for the report JSON."""
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "detail": self.detail,
            "metrics": {name: round(value, 4) for name, value in self.metrics.items()},
        }


@dataclass(frozen=True)
class ScenariosBenchReport:
    """Everything ``repro scenarios bench`` measured, machine-readable."""

    scale: float
    seed: int
    results: tuple[ScenarioResult, ...]

    @property
    def all_passed(self) -> bool:
        """True when every scenario's pin held."""
        return all(result.passed for result in self.results)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form matching the ``repro-scenarios-bench/1`` schema."""
        return {
            "schema": SCENARIOS_BENCH_SCHEMA,
            "config": {"scale": self.scale, "seed": self.seed},
            "scenarios": [result.as_dict() for result in self.results],
            "all_passed": self.all_passed,
        }


def _sample(
    database: SearchableDatabase,
    bootstrap: QueryTermSelector,
    documents: int,
    seed: int,
    docs_per_query: int = 4,
    keep_documents: bool = False,
):
    """One bounded sampling run with the bench's standard configuration."""
    sampler = QueryBasedSampler(
        database,
        bootstrap=bootstrap,
        stopping=MaxDocuments(documents),
        config=SamplerConfig(
            docs_per_query=docs_per_query, keep_documents=keep_documents
        ),
        seed=seed,
    )
    return sampler.run()


def _fit(learned: LanguageModel, server: DatabaseServer) -> float:
    """Spearman of ``learned`` against ``server``'s ground truth.

    The learned model is projected through the server's index analyzer
    first, as ``repro compare`` does, so both sides rank one vocabulary.
    """
    return spearman_rank_correlation(
        learned.project(server.index.analyzer), server.actual_language_model()
    )


def _cluster_share(documents: Sequence[object], topic: str) -> float:
    """Fraction of ``documents`` whose generating topic is ``topic``."""
    if not documents:
        return 0.0
    hits = sum(1 for document in documents if getattr(document, "topic", None) == topic)
    return hits / len(documents)


def _measure_cluster(scale: float, seed: int) -> ScenarioResult:
    """Cluster-trapped sampling vs. the shared-vocabulary control.

    Both corpora are sampled from the same cluster-0 bootstrap with the
    same budget; the observable is how much of the sample comes from
    cluster 0.  A trapped walk oversamples the bootstrap cluster, so
    the learned unigram model over-represents its vocabulary — the
    misleading-model failure the scenario exists to produce.
    """
    world = build_clustered_world(
        num_clusters=8,
        documents=max(240, int(round(480 * scale))),
        vocabulary_size=max(2000, int(round(4000 * scale))),
        seed=derive_seed(seed, "scenario", "cluster"),
    )
    budget = max(60, int(round(80 * scale)))
    clustered = DatabaseServer(world.corpus)
    control = DatabaseServer(world.control)
    run_seed = derive_seed(seed, "scenario", "cluster", "sample")
    target = "topic000"
    shares = {}
    clusters_seen = {}
    for label, server in (("clustered", clustered), ("control", control)):
        run = _sample(
            server,
            ListBootstrap(world.bootstrap_terms),
            budget,
            run_seed,
            keep_documents=True,
        )
        shares[label] = _cluster_share(run.documents, target)
        clusters_seen[label] = float(
            len({document.topic for document in run.documents})
        )
    corpus_share = _cluster_share(list(world.corpus), target)
    gap = shares["clustered"] - shares["control"]
    overrepresentation = (
        shares["clustered"] / corpus_share if corpus_share > 0 else float("inf")
    )
    passed = gap >= 0.10 and overrepresentation >= 1.5
    return ScenarioResult(
        scenario="cluster",
        passed=passed,
        detail=(
            f"{budget}-document budget from a cluster-0 bootstrap: the trapped "
            f"walk draws {shares['clustered']:.0%} of its sample from cluster 0 "
            f"({overrepresentation:.1f}x its {corpus_share:.0%} corpus share, "
            f"pinned >= 1.5x) vs {shares['control']:.0%} on the matched control "
            f"(gap pinned >= 0.10)"
        ),
        metrics={
            "document_budget": float(budget),
            "num_clusters": float(world.num_clusters),
            "cluster0_corpus_share": corpus_share,
            "clustered_sample_share": shares["clustered"],
            "control_sample_share": shares["control"],
            "oversampling_gap": gap,
            "overrepresentation": overrepresentation,
            "clustered_clusters_seen": clusters_seen["clustered"],
            "control_clusters_seen": clusters_seen["control"],
        },
    )


def _measure_drift(scale: float, seed: int) -> ScenarioResult:
    """Staleness detection latency and end-to-end refresh on drift."""
    profile_scale = 0.25 * scale
    old = cacm_like().build(seed=derive_seed(seed, "scenario", "drift", "old"), scale=profile_scale)
    new = wsj88_like().build(
        seed=derive_seed(seed, "scenario", "drift", "new"), scale=0.06 * scale
    )
    phase0 = DatabaseServer(Corpus(old, name="drifty"))
    phase1 = DatabaseServer(Corpus(new, name="drifty"))
    bootstrap = RandomFromOther(phase0.actual_language_model())
    stored = _sample(
        phase0, bootstrap, 60, derive_seed(seed, "scenario", "drift", "learn")
    ).model

    switch = 25
    drifting = DriftingDatabase([phase0, phase1], DriftSchedule((switch,)))
    max_probes = 10
    pre_switch_fresh = False
    detected = False
    detection_lag = float("nan")
    for attempt in range(max_probes):
        report = staleness_probe(
            drifting,
            stored,
            bootstrap,
            probe_documents=16,
            seed=derive_seed(seed, "scenario", "drift", "probe", attempt),
        )
        stale = report.is_stale()
        if attempt == 0 and drifting.queries_seen <= switch:
            pre_switch_fresh = not stale
        if stale:
            if drifting.queries_seen > switch:
                detected = True
                detection_lag = float(drifting.queries_seen - switch)
            break

    # End to end: the fleet sweep must also flag and re-learn it.
    policy = RefreshPolicy(refresh_documents=60)
    sweep = run_refresh_sweep(
        {"drifty": drifting},
        {"drifty": stored},
        lambda name: bootstrap,
        policy=policy,
        seed=derive_seed(seed, "scenario", "drift", "sweep"),
        num_workers=1,
    )
    sweep_refreshed = "drifty" in sweep.outcome.refreshed
    stored_fit = _fit(stored, phase1)
    refreshed_fit = stored_fit
    if sweep_refreshed:
        refreshed_fit = _fit(sweep.outcome.models["drifty"], phase1)
    recovery = refreshed_fit - stored_fit
    passed = (
        pre_switch_fresh
        and detected
        and detection_lag <= 60
        and sweep_refreshed
        and recovery >= 0.1
    )
    return ScenarioResult(
        scenario="drift",
        passed=passed,
        detail=(
            f"contents switch after {switch} queries: pre-switch probe fresh, "
            f"drift flagged {detection_lag:.0f} queries past the switch "
            f"(pinned <= 60); the fleet sweep refreshed the model, lifting "
            f"fit to the new contents by {recovery:.3f} spearman"
        ),
        metrics={
            "switch_after_queries": float(switch),
            "pre_switch_fresh": float(pre_switch_fresh),
            "detected": float(detected),
            "detection_lag_queries": detection_lag,
            "sweep_refreshed": float(sweep_refreshed),
            "stored_vs_new_spearman": stored_fit,
            "refreshed_vs_new_spearman": refreshed_fit,
            "refresh_recovery": recovery,
        },
    )


def _measure_result_caps(scale: float, seed: int) -> ScenarioResult:
    """Query cost of result caps and rank bias at a fixed document budget."""
    corpus = cacm_like().build(
        seed=derive_seed(seed, "scenario", "caps"), scale=0.25 * scale
    )
    cap = 3
    uncapped = DatabaseServer(Corpus(corpus, name="uncapped"))
    capped = DatabaseServer(
        Corpus(corpus, name="capped"), policy=ServerPolicy(max_results_per_query=cap)
    )
    biased = RankBiasedServer(
        DatabaseServer(
            Corpus(corpus, name="biased"), policy=ServerPolicy(max_results_per_query=cap)
        ),
        bias="hash",
        seed=seed,
    )
    budget = 48
    run_seed = derive_seed(seed, "scenario", "caps", "sample")
    runs = {}
    for name, server in (("uncapped", uncapped), ("capped", capped), ("biased", biased)):
        bootstrap = RandomFromOther(server.actual_language_model())
        runs[name] = _sample(server, bootstrap, budget, run_seed, docs_per_query=8)
    queries = {name: float(len(run.queries)) for name, run in runs.items()}
    fits = {
        "uncapped": _fit(runs["uncapped"].model, uncapped),
        "capped": _fit(runs["capped"].model, capped),
        "biased": _fit(runs["biased"].model, biased.server),
    }
    overhead = queries["capped"] / queries["uncapped"] if queries["uncapped"] else 0.0
    docs_per_query = (
        capped.costs.documents_returned / capped.costs.queries_run
        if capped.costs.queries_run
        else 0.0
    )
    passed = (
        overhead >= 1.5
        and docs_per_query <= cap
        and fits["capped"] >= fits["uncapped"] - 0.15
        and fits["biased"] >= fits["uncapped"] - 0.25
    )
    return ScenarioResult(
        scenario="result_caps",
        passed=passed,
        detail=(
            f"a {cap}-result cap needs {overhead:.2f}x the queries (pinned >= 1.5x) "
            f"for the same {budget}-document budget; model quality holds "
            f"(capped {fits['capped']:.3f} vs uncapped {fits['uncapped']:.3f} "
            f"spearman, biased order {fits['biased']:.3f})"
        ),
        metrics={
            "cap": float(cap),
            "document_budget": float(budget),
            "queries_uncapped": queries["uncapped"],
            "queries_capped": queries["capped"],
            "queries_biased": queries["biased"],
            "query_overhead": overhead,
            "capped_docs_per_query": docs_per_query,
            "uncapped_spearman": fits["uncapped"],
            "capped_spearman": fits["capped"],
            "biased_spearman": fits["biased"],
        },
    )


def _naive_concat_merge(
    results: Mapping[str, Sequence[SearchResult]], n: int
) -> list[MergedResult]:
    """The pre-fix merge: concatenate, sort, truncate — duplicates and all.

    Kept in the bench as the regression oracle: this is what every
    merger effectively did before deduplication, and what the overlap
    scenario exists to punish.
    """
    merged = [
        MergedResult(doc_id=result.doc_id, database=name, score=result.score)
        for name, result_list in results.items()
        for result in result_list
    ]
    merged.sort(key=lambda item: (-item.score, item.database, item.doc_id))
    return merged[:n]


def _duplicates(merged: Sequence[MergedResult]) -> int:
    """How many entries of ``merged`` repeat an earlier ``doc_id``."""
    return len(merged) - len({item.doc_id for item in merged})


def _measure_overlap(scale: float, seed: int) -> ScenarioResult:
    """Duplicate doc_ids in merged results over an overlapping federation."""
    corpus = wsj88_like().build(
        seed=derive_seed(seed, "scenario", "overlap"), scale=0.05 * scale
    )
    parts = build_overlapping_partition(
        corpus,
        num_databases=4,
        replication=0.5,
        seed=derive_seed(seed, "scenario", "overlap", "split"),
    )
    stats = overlap_statistics(parts)
    servers = {part.name: DatabaseServer(part) for part in parts}
    queries = topical_queries(parts, max_topics=6)
    cori = CoriMerger()
    raw = RawScoreMerger()
    naive_duplicates = 0
    cori_duplicates = 0
    raw_duplicates = 0
    relevant = 0
    merged_total = 0
    for query in queries:
        results = {
            name: server.engine.search(query.text, n=10)
            for name, server in servers.items()
        }
        ranking: DatabaseRanking = finish_ranking(
            query.text,
            {name: float(server.hit_count(query.text)) for name, server in servers.items()},
        )
        naive_duplicates += _duplicates(_naive_concat_merge(results, 10))
        merged = cori.merge(ranking, results, 10)
        cori_duplicates += _duplicates(merged)
        raw_duplicates += _duplicates(raw.merge(ranking, results, 10))
        merged_total += len(merged)
        relevant += sum(
            1
            for item in merged
            if servers[item.database].engine.fetch(item.doc_id).topic == query.topic
        )
    precision = relevant / merged_total if merged_total else 0.0
    passed = (
        stats.replicated_documents > 0
        and naive_duplicates > 0
        and cori_duplicates == 0
        and raw_duplicates == 0
    )
    return ScenarioResult(
        scenario="overlap",
        passed=passed,
        detail=(
            f"{stats.replicated_documents} of {stats.unique_documents} documents "
            f"replicated across 4 databases: naive concat-merge returns "
            f"{naive_duplicates} duplicate doc_ids over {len(queries)} top-10 "
            f"merges (pinned > 0); the deduplicating mergers return 0"
        ),
        metrics={
            "num_databases": 4.0,
            "replicated_documents": float(stats.replicated_documents),
            "replication_rate": stats.replication_rate,
            "queries": float(len(queries)),
            "naive_duplicates": float(naive_duplicates),
            "cori_duplicates": float(cori_duplicates),
            "raw_duplicates": float(raw_duplicates),
            "merged_precision": precision,
        },
    )


def _measure_heavy_tail(scale: float, seed: int) -> ScenarioResult:
    """Vocabulary coverage of a uniform budget across a Zipf size mix."""
    corpus = wsj88_like().build(
        seed=derive_seed(seed, "scenario", "heavy-tail"), scale=0.05 * scale
    )
    parts = build_heavy_tailed_federation(
        corpus,
        num_databases=5,
        alpha=1.4,
        min_documents=20,
        seed=derive_seed(seed, "scenario", "heavy-tail", "split"),
    )
    sizes = [len(part) for part in parts]
    largest = DatabaseServer(parts[sizes.index(max(sizes))])
    smallest = DatabaseServer(parts[sizes.index(min(sizes))])
    budget = 40
    run_seed = derive_seed(seed, "scenario", "heavy-tail", "sample")
    coverage = {}
    for label, server in (("largest", largest), ("smallest", smallest)):
        run = _sample(
            server, RandomFromOther(server.actual_language_model()), budget, run_seed
        )
        coverage[label] = percentage_learned(
            run.model.project(server.index.analyzer), server.actual_language_model()
        )
    gap = coverage["smallest"] - coverage["largest"]
    ratio = max(sizes) / min(sizes)
    passed = ratio >= 3.0 and gap >= 0.15
    return ScenarioResult(
        scenario="heavy_tail",
        passed=passed,
        detail=(
            f"sizes {sizes} (ratio {ratio:.1f}x, pinned >= 3x): a uniform "
            f"{budget}-document budget learns {coverage['smallest']:.0%} of the "
            f"smallest database's vocabulary but only {coverage['largest']:.0%} "
            f"of the largest (gap pinned >= 0.15)"
        ),
        metrics={
            "num_databases": float(len(parts)),
            "largest_documents": float(max(sizes)),
            "smallest_documents": float(min(sizes)),
            "size_ratio": ratio,
            "document_budget": float(budget),
            "coverage_largest": coverage["largest"],
            "coverage_smallest": coverage["smallest"],
            "coverage_gap": gap,
        },
    )


_MEASURES: dict[str, Callable[[float, int], ScenarioResult]] = {
    "cluster": _measure_cluster,
    "drift": _measure_drift,
    "result_caps": _measure_result_caps,
    "overlap": _measure_overlap,
    "heavy_tail": _measure_heavy_tail,
}


def run_scenarios_bench(
    *,
    scale: float = 1.0,
    seed: int = 0,
    only: Sequence[str] | None = None,
) -> ScenariosBenchReport:
    """Run the selected scenarios (all of them by default) and pin each.

    ``scale`` shrinks or grows the synthetic worlds (CI smoke runs a
    fraction); ``only`` restricts to a subset of scenario names in
    registry order.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    selected = list(only) if only else scenario_names()
    unknown = sorted(set(selected) - set(_MEASURES))
    if unknown:
        raise ValueError(f"unknown scenarios: {unknown}; known: {scenario_names()}")
    results = tuple(
        _MEASURES[name](scale, seed) for name in scenario_names() if name in selected
    )
    return ScenariosBenchReport(scale=scale, seed=seed, results=results)


def format_scenarios_bench(report: ScenariosBenchReport) -> str:
    """Human-readable rendering of a scenarios bench report."""
    from repro.experiments.reporting import format_table

    lines = [
        f"scenario bench: scale {report.scale}, seed {report.seed}",
        "",
        format_table(
            [
                {
                    "scenario": result.scenario,
                    "passed": "yes" if result.passed else "NO",
                    "headline": result.detail,
                }
                for result in report.results
            ],
            title="Adversarial-world pins",
        ),
        f"all passed: {'yes' if report.all_passed else 'NO'}",
    ]
    return "\n".join(lines)


def write_scenarios_bench(report: ScenariosBenchReport, path: str) -> None:
    """Write the machine-readable report as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")


def validate_scenarios_bench(payload: Mapping[str, object]) -> None:
    """Check a report payload's schema and pins; raises ``ValueError``.

    The CI smoke job runs this over the freshly generated file: the
    schema string must match, every scenario must be a known one with a
    metrics mapping, no scenario may appear twice, and every pin must
    have held.
    """
    schema = payload.get("schema")
    if schema != SCENARIOS_BENCH_SCHEMA:
        raise ValueError(f"schema mismatch: {schema!r} != {SCENARIOS_BENCH_SCHEMA!r}")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError("report has no scenarios")
    seen: set[str] = set()
    known = set(scenario_names())
    for entry in scenarios:
        if not isinstance(entry, Mapping):
            raise ValueError("scenario entries must be objects")
        name = entry.get("scenario")
        if not isinstance(name, str) or name not in known:
            raise ValueError(f"unknown scenario {name!r}")
        if name in seen:
            raise ValueError(f"duplicate scenario {name!r}")
        seen.add(name)
        if not isinstance(entry.get("metrics"), Mapping):
            raise ValueError(f"scenario {name!r} has no metrics")
        if entry.get("passed") is not True:
            raise ValueError(f"scenario {name!r} did not pass its pin")
