"""Cluster-structured corpora that mislead a sampled unigram model.

Query-based sampling works because retrieved vocabulary leads to more
vocabulary: any reasonable starting term reaches the whole collection
in a few hops (the paper's Section 5 finding that even poor initial
queries recover).  That property fails in a *clustered* corpus — think
of one database holding both case law and genomics papers.  The
clusters share almost no content words, so a random walk started
inside one cluster keeps retrieving that cluster, and the learned
unigram model confidently over-represents it: the model *misleads*
anything ranking databases by vocabulary mass.

:func:`build_clustered_world` makes the smallest reproducible version.
Each cluster owns a **disjoint contiguous slice** of the content
vocabulary (built directly from :class:`TopicModel`, not from
:class:`~repro.synth.topics.TopicSpace`'s random topic membership,
which overlaps between topics and would leak the walk out); all
clusters share only the stoplist, a small head of common content
words, and noise tokens.  Documents mix a primary and one secondary
cluster (``purity``), which is the honest escape route a real mixed
collection offers.  A matched *control* corpus — same vocabulary, same
document shape, but shared-dominated mixtures — differs only in that
its vocabulary is reachable from anywhere; the bench samples both from
the same cluster-0 bootstrap and pins the oversampling gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.collection import Corpus
from repro.sampling.selection import is_eligible_query_term
from repro.synth.generator import CorpusGenerator, GeneratorConfig
from repro.synth.topics import TopicModel
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig
from repro.utils.rand import derive_seed
from repro.utils.zipf import zipf_probabilities

__all__ = [
    "ClusterSpace",
    "ClusteredWorld",
    "build_clustered_world",
    "distinctive_cluster_terms",
]

#: Mixture weights (stopwords, shared, cluster block, noise).
_STOP_WEIGHT = 0.25
_NOISE_WEIGHT = 0.02
#: Clustered variant: the cluster block dominates, the shared head is thin.
_CLUSTERED_SHARED = 0.06
_CLUSTERED_TOPIC = 0.67
#: Control variant: the same mass, redistributed onto the full shared block.
_CONTROL_SHARED = 0.67
_CONTROL_TOPIC = 0.06


class ClusterSpace:
    """Cluster unigram models over one vocabulary, for the generator.

    Satisfies the sampling surface :class:`CorpusGenerator` needs
    (``len``, indexing, ``decode``) while guaranteeing the property
    :class:`~repro.synth.topics.TopicSpace` cannot: the per-cluster
    content blocks are *disjoint*.
    """

    def __init__(self, words: list[str], topics: list[TopicModel]) -> None:
        if not topics:
            raise ValueError("a cluster space needs at least one cluster")
        self.words = words
        self.topics = topics

    def __len__(self) -> int:
        return len(self.topics)

    def __getitem__(self, index: int) -> TopicModel:
        return self.topics[index]

    def decode(self, word_ids: np.ndarray) -> list[str]:
        """Map an array of word ids back to word strings."""
        return [self.words[i] for i in word_ids]


def _build_space(
    vocabulary: SyntheticVocabulary,
    num_clusters: int,
    shared_head: int,
    clustered: bool,
) -> ClusterSpace:
    """Build the clustered or control variant over one shared vocabulary."""
    stop_count = len(vocabulary.stopwords)
    content_size = len(vocabulary.content)
    noise_count = len(vocabulary.noise)
    block_size = (content_size - shared_head) // num_clusters
    if block_size < 1:
        raise ValueError(
            f"content vocabulary of {content_size} cannot give {num_clusters} "
            f"clusters a block beyond a shared head of {shared_head}"
        )
    stop_ids = np.arange(stop_count, dtype=np.int64)
    noise_ids = stop_count + content_size + np.arange(noise_count, dtype=np.int64)
    stop_probs = _STOP_WEIGHT * zipf_probabilities(stop_count, 0.85)
    noise_probs = (
        _NOISE_WEIGHT * zipf_probabilities(noise_count, 1.0)
        if noise_count
        else np.empty(0)
    )
    if clustered:
        shared_ids = stop_count + np.arange(shared_head, dtype=np.int64)
        shared_probs = _CLUSTERED_SHARED * zipf_probabilities(shared_head, 1.05)
        topic_weight = _CLUSTERED_TOPIC
    else:
        shared_ids = stop_count + np.arange(content_size, dtype=np.int64)
        shared_probs = _CONTROL_SHARED * zipf_probabilities(content_size, 1.05)
        topic_weight = _CONTROL_TOPIC
    topics: list[TopicModel] = []
    for cluster in range(num_clusters):
        start = shared_head + cluster * block_size
        block_ids = stop_count + np.arange(start, start + block_size, dtype=np.int64)
        block_probs = topic_weight * zipf_probabilities(block_size, 0.95)
        word_ids = np.concatenate([stop_ids, shared_ids, block_ids, noise_ids])
        probabilities = np.concatenate(
            [stop_probs, shared_probs, block_probs, noise_probs]
        )
        topics.append(TopicModel(f"topic{cluster:03d}", word_ids, probabilities))
    return ClusterSpace(vocabulary.all_words(), topics)


@dataclass(frozen=True)
class ClusteredWorld:
    """A clustered corpus, its matched control, and a trapped bootstrap.

    Attributes
    ----------
    corpus:
        The cluster-structured corpus (disjoint content blocks).
    control:
        Same vocabulary and document shape, shared-dominated mixtures.
    bootstrap_terms:
        Cluster 0's most distinctive eligible query terms — a starting
        point *inside* one cluster, valid for both corpora.
    num_clusters:
        How many disjoint clusters the corpus has.
    """

    corpus: Corpus
    control: Corpus
    bootstrap_terms: tuple[str, ...]
    num_clusters: int


def distinctive_cluster_terms(
    space: ClusterSpace, cluster: int, count: int = 8
) -> tuple[str, ...]:
    """``cluster``'s most distinctive eligible query terms.

    Distinctiveness is the margin between the cluster's unigram
    probability and the mean probability under every other cluster —
    the words that pull a sampler *into* the cluster rather than across
    clusters.  Works for any space whose items expose ``dense_pdf``
    (:class:`ClusterSpace` or :class:`~repro.synth.topics.TopicSpace`).
    """
    if not 0 <= cluster < len(space):
        raise ValueError(f"cluster {cluster} out of range for {len(space)} clusters")
    if count <= 0:
        raise ValueError("count must be positive")
    size = len(space.words)
    target = space[cluster].dense_pdf(size)
    others = np.zeros(size, dtype=np.float64)
    for index in range(len(space)):
        if index != cluster:
            others += space[index].dense_pdf(size)
    if len(space) > 1:
        others /= len(space) - 1
    terms: list[str] = []
    for word_id in np.argsort(others - target):
        word = space.words[int(word_id)]
        if is_eligible_query_term(word):
            terms.append(word)
        if len(terms) == count:
            break
    return tuple(terms)


def build_clustered_world(
    num_clusters: int = 8,
    documents: int = 480,
    vocabulary_size: int = 4000,
    shared_head: int = 60,
    purity: float = 0.95,
    seed: int = 0,
) -> ClusteredWorld:
    """Build the clustered corpus and its matched homogeneous control.

    Both corpora share one :class:`SyntheticVocabulary`, one
    :class:`GeneratorConfig` (``purity`` fixes how much each document
    mixes in a secondary cluster) and one generation seed; they differ
    only in the mixture weights, so any sampling gap between them is
    attributable to cluster structure alone.  ``shared_head`` is the
    number of content words every cluster shares — the thin common
    vocabulary (think "method", "result") that keeps the clustered
    corpus connected at all.
    """
    if num_clusters < 2:
        raise ValueError("a clustered world needs at least 2 clusters")
    if shared_head < 0:
        raise ValueError("shared_head must be non-negative")
    vocabulary = SyntheticVocabulary(
        VocabularyConfig(content_size=vocabulary_size),
        seed=derive_seed(seed, "cluster", "vocab"),
    )
    generator_config = GeneratorConfig(
        num_documents=documents, purity=purity, topic_skew=0.0
    )
    clustered_space = _build_space(vocabulary, num_clusters, shared_head, clustered=True)
    control_space = _build_space(vocabulary, num_clusters, shared_head, clustered=False)
    corpus = CorpusGenerator(
        clustered_space, generator_config, seed=derive_seed(seed, "cluster", "docs")
    ).generate(name="clustered")
    control = CorpusGenerator(
        control_space, generator_config, seed=derive_seed(seed, "cluster", "docs")
    ).generate(name="control")
    return ClusteredWorld(
        corpus=corpus,
        control=control,
        bootstrap_terms=distinctive_cluster_terms(clustered_space, cluster=0),
        num_clusters=num_clusters,
    )
