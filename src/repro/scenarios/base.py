"""The scenario registry: what each adversarial world breaks, and how.

Every scenario in :mod:`repro.scenarios` is a named violation of one
assumption the rest of the system quietly relies on.  The registry
entry states the assumption (``breaks``) and the observable that the
scenario bench turns into a quantitative pin (``signal``), so ``repro
scenarios list`` reads as a threat model rather than a file listing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SCENARIO_SPECS", "ScenarioSpec", "scenario_names"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial-world scenario: the assumption it attacks.

    Parameters
    ----------
    name:
        Stable identifier, used by ``repro scenarios bench --only``.
    description:
        What the generated world looks like.
    breaks:
        The assumption of the sampling/selection stack this world
        violates.
    signal:
        The observable the scenario bench measures and pins.
    """

    name: str
    description: str
    breaks: str
    signal: str


SCENARIO_SPECS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="cluster",
        description=(
            "Cluster-structured corpus: near-disjoint topic vocabularies, "
            "documents drawn mostly from one cluster"
        ),
        breaks=(
            "query-based sampling assumes retrieved vocabulary leads to the "
            "rest of the collection; disjoint clusters trap the random walk"
        ),
        signal=(
            "share of the sample drawn from the bootstrap cluster, clustered "
            "corpus against a shared-vocabulary control at the same budget"
        ),
    ),
    ScenarioSpec(
        name="drift",
        description=(
            "DriftingDatabase: backend contents switch to a different text "
            "profile on a seeded query-count schedule, mid-sample"
        ),
        breaks=(
            "stored models assume the database they describe is the database "
            "still answering queries"
        ),
        signal=(
            "staleness probes flag the post-switch database within a bounded "
            "number of probes, and a fleet refresh sweep re-learns it"
        ),
    ),
    ScenarioSpec(
        name="result_caps",
        description=(
            "Servers impose ServerPolicy.max_results_per_query and a seeded "
            "result-ranking bias, as real web databases do"
        ),
        breaks=(
            "the sampler assumes asking for N documents returns N; caps and "
            "biased rankings starve each query's yield"
        ),
        signal=(
            "queries needed to reach the same document budget (capped vs "
            "uncapped) while model quality stays comparable"
        ),
    ),
    ScenarioSpec(
        name="overlap",
        description=(
            "Overlapping databases: documents replicated verbatim across "
            "several servers of the federation"
        ),
        breaks=(
            "result merging assumes per-database result lists are disjoint; "
            "replicas of one document compete for top-n slots"
        ),
        signal=(
            "duplicate doc_ids in a merged top-10 — positive for a naive "
            "concatenate-and-sort merge, zero for the deduplicating mergers"
        ),
    ),
    ScenarioSpec(
        name="heavy_tail",
        description=(
            "Heavy-tailed database sizes: one giant database, a long tail of "
            "tiny ones, split from a single corpus"
        ),
        breaks=(
            "a uniform per-database sampling budget assumes databases are "
            "comparably sized; a fixed sample covers a giant database poorly"
        ),
        signal=(
            "vocabulary coverage (percentage learned) of the largest vs the "
            "smallest database at the same per-database document budget"
        ),
    ),
)


def scenario_names() -> list[str]:
    """The registered scenario names, in registry order."""
    return [spec.name for spec in SCENARIO_SPECS]
