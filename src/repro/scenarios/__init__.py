"""Adversarial-world scenario testbeds.

The synthetic worlds elsewhere in :mod:`repro.synth` and
:mod:`repro.federation` are *cooperative*: static contents, unbiased
result ranking, disjoint databases of comparable size.  Real text
databases violate every one of those assumptions, and the paper's
machinery — query-based sampling, staleness probing, selection and
merging — must degrade gracefully when they do.

This package builds the violations deterministically, one per
assumption:

* :mod:`~repro.scenarios.cluster` — cluster-structured corpora whose
  near-disjoint topic vocabularies trap the sampling random walk;
* :mod:`~repro.scenarios.drift` — :class:`DriftingDatabase`, whose
  contents switch on a seeded query-count schedule mid-sample;
* :mod:`~repro.scenarios.bias` — :class:`RankBiasedServer`, result
  caps and non-relevance result ordering;
* :mod:`~repro.scenarios.overlap` — federations with documents
  replicated verbatim across databases;
* :mod:`~repro.scenarios.sizes` — heavy-tailed database-size mixes.

:mod:`~repro.scenarios.bench` measures each scenario's observable and
pins it quantitatively (``repro scenarios bench``,
``BENCH_scenarios.json``); :data:`SCENARIO_SPECS` is the registry
``repro scenarios list`` prints.
"""

from repro.scenarios.base import SCENARIO_SPECS, ScenarioSpec, scenario_names
from repro.scenarios.bench import (
    SCENARIOS_BENCH_SCHEMA,
    ScenarioResult,
    ScenariosBenchReport,
    format_scenarios_bench,
    run_scenarios_bench,
    validate_scenarios_bench,
    write_scenarios_bench,
)
from repro.scenarios.bias import BIAS_KINDS, RankBiasedServer
from repro.scenarios.cluster import (
    ClusteredWorld,
    build_clustered_world,
    distinctive_cluster_terms,
)
from repro.scenarios.drift import DriftingDatabase, DriftSchedule
from repro.scenarios.overlap import (
    OverlapStats,
    build_overlapping_partition,
    overlap_statistics,
)
from repro.scenarios.sizes import build_heavy_tailed_federation, heavy_tailed_sizes

__all__ = [
    "BIAS_KINDS",
    "SCENARIO_SPECS",
    "SCENARIOS_BENCH_SCHEMA",
    "ClusteredWorld",
    "DriftSchedule",
    "DriftingDatabase",
    "OverlapStats",
    "RankBiasedServer",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenariosBenchReport",
    "build_clustered_world",
    "build_heavy_tailed_federation",
    "build_overlapping_partition",
    "distinctive_cluster_terms",
    "format_scenarios_bench",
    "heavy_tailed_sizes",
    "overlap_statistics",
    "run_scenarios_bench",
    "scenario_names",
    "validate_scenarios_bench",
    "write_scenarios_bench",
]
