"""Servers that rank results by something other than relevance.

Query-based sampling treats whatever a query returns as an unbiased
peek at the matching documents.  Real services violate that constantly:
they rank by recency, by popularity, by paid placement — and they cap
how many results any query may return
(:attr:`~repro.index.server.ServerPolicy.max_results_per_query`).  Both
shrink and skew each query's yield, which is the paper's Section 4
worry about sampling through a ranked retrieval interface.

:class:`RankBiasedServer` wraps a :class:`DatabaseServer`: it retrieves
a relevance-ranked candidate pool, reorders it by a deterministic
non-relevance key, and returns the head — respecting (and metering
under) the inner server's result-cap policy.  The relevance engine
still decides *which* documents match; the bias only decides which
matches the client is shown first, as a recency-ranked news archive
does.
"""

from __future__ import annotations

import hashlib

from repro.corpus.document import Document
from repro.index.server import DatabaseServer, QueryCosts
from repro.lm.model import LanguageModel

__all__ = ["BIAS_KINDS", "RankBiasedServer"]

#: Supported bias orderings.
BIAS_KINDS: tuple[str, ...] = ("hash", "newest", "shortest")


class RankBiasedServer:
    """A database whose result order is biased away from relevance.

    Parameters
    ----------
    server:
        The wrapped relevance-ranked database.  Its
        ``policy.max_results_per_query`` cap is enforced on the biased
        output too.
    bias:
        ``"hash"`` — a seeded pseudo-random but deterministic order
        (paid placement / A-B noise); ``"newest"`` — descending doc_id
        (recency ranking, synthetic ids are generation-ordered);
        ``"shortest"`` — ascending document length (snippet-style
        services favouring short pages).
    pool_factor:
        How many relevance-ranked candidates to draw per requested
        result before reordering.  Larger pools let the bias reach
        deeper into the match set.
    seed:
        Salt for the ``"hash"`` bias so different servers disagree.
    """

    def __init__(
        self,
        server: DatabaseServer,
        bias: str = "hash",
        pool_factor: int = 4,
        seed: int = 0,
    ) -> None:
        if bias not in BIAS_KINDS:
            raise ValueError(f"unknown bias {bias!r}; expected one of {BIAS_KINDS}")
        if pool_factor < 1:
            raise ValueError("pool_factor must be at least 1")
        self.server = server
        self.bias = bias
        self.pool_factor = pool_factor
        self.seed = seed
        self.name = server.name
        self.costs = QueryCosts()

    def _key(self, document: Document) -> tuple[object, str]:
        if self.bias == "newest":
            # Synthetic doc_ids sort ascending by generation order; the
            # caller reverses this sort to put the newest first.
            return ("", document.doc_id)
        if self.bias == "shortest":
            return (len(document.text), document.doc_id)
        digest = hashlib.blake2b(
            f"{self.seed}:{document.doc_id}".encode(), digest_size=8
        ).hexdigest()
        return (digest, document.doc_id)

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Return up to ``max_docs`` matches, in biased order.

        The candidate pool is fetched straight from the inner engine so
        the inner server's meters stay untouched; this wrapper meters
        the interaction the *client* sees in its own ``costs``.
        """
        if max_docs <= 0:
            raise ValueError(f"max_docs must be positive, got {max_docs}")
        cap = self.server.policy.max_results_per_query
        if cap is not None:
            max_docs = min(max_docs, cap)
        try:
            pool = self.server.engine.search(query, n=max_docs * self.pool_factor)
            documents = [self.server.engine.fetch(result.doc_id) for result in pool]
        except Exception:
            self.costs.record_error()
            raise
        documents.sort(key=self._key, reverse=self.bias == "newest")
        documents = documents[:max_docs]
        self.costs.record(documents)
        return documents

    def hit_count(self, query: str) -> int:
        """Match count — bias reorders results, it does not hide matches."""
        self.costs.hit_count_queries += 1
        return self.server.hit_count(query)

    # -- ground truth (evaluation only) -------------------------------------

    def actual_language_model(self) -> LanguageModel:
        """The wrapped database's true model. Evaluation only."""
        return self.server.actual_language_model()

    @property
    def num_documents(self) -> int:
        """The wrapped database's true size. Evaluation only."""
        return self.server.num_documents
