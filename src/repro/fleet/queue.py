"""A durable, file-backed job queue for fleet maintenance work.

Model refresh at fleet scale is long-running, interruptible work:
probes and re-samples take hundreds of remote queries, workers die,
and the paper's whole premise — that a discovered model is expensive
accumulated state — applies equally to the *work list* that maintains
it.  So the queue is durable by construction: every job is one JSON
file under ``queue_dir/jobs/``, written with the same atomic primitive
as every other artifact in the repo, and a restarted process sees
exactly the jobs the dead one left.

Job lifecycle::

    submit ──> pending ──claim──> leased ──complete──> done
                  ^                  │
                  │   fail (attempts left, backoff)
                  └──────────────────┤
                                     │   fail (attempts exhausted)
                                     └──────────────────────────> failed
               pending <──lease expires (worker died)── leased

* **Priorities** — :meth:`DurableJobQueue.claim` hands out the highest
  priority eligible job (ties broken by job id), which is how the
  scheduling layer's budget allocator turns its scores into execution
  order.
* **Leases** — a claim stamps the job with a worker id, an opaque
  lease token, and an absolute expiry.  A worker that dies mid-job
  simply stops heartbeating; once the lease expires the job is
  claimable again.  Expiries are wall-clock timestamps so they hold
  *across* processes (a restarted worker pool observes the dead pool's
  leases aging out).
* **Exactly-once completion** — :meth:`DurableJobQueue.complete`
  requires the claim's lease token.  A worker that lost its lease (it
  stalled, the job was re-claimed and finished by someone else) gets
  :class:`LeaseLostError` or an ``already done`` no-op instead of
  double-applying its result.
* **Bounded retry with backoff** — :meth:`DurableJobQueue.fail`
  returns the job to pending with an exponential ``not_before`` gate,
  until ``max_attempts`` is exhausted and the job parks as failed.

Concurrency model: worker *threads* in one process share one queue
object (an internal lock makes claim/complete/fail atomic).  Across
processes the queue supports crash-restart recovery — the CI smoke
kills a worker mid-lease and restarts — via durable files, lease
expiry, and token-checked completion; it is not a distributed lock
manager, so two *simultaneously live* processes should not share one
queue directory.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Mapping
from urllib.parse import quote

from repro.obs.trace import NULL_RECORDER, Recorder
from repro.utils.atomic import atomic_write_text

__all__ = [
    "DurableJobQueue",
    "Job",
    "JobState",
    "Lease",
    "LeaseLostError",
    "QUEUE_SCHEMA",
    "SystemClock",
]

#: Job-file schema identifier, bumped on breaking changes.
QUEUE_SCHEMA = "repro-fleet-queue/1"

_JOBS_DIR = "jobs"


class JobState:
    """The four durable job states (plain strings in the job files)."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"

    ALL = (PENDING, LEASED, DONE, FAILED)


class LeaseLostError(RuntimeError):
    """The caller's lease token no longer owns the job.

    Raised when a worker tries to complete or fail a job after its
    lease expired and the job moved on (re-claimed by another worker,
    or already finished).  The correct reaction is to discard the
    local result — the queue's answer is authoritative.
    """


class SystemClock:
    """Wall-clock time, satisfying the transport layer's clock protocol.

    Lease expiries must be meaningful to a process started *after* the
    one that wrote them, so the default queue clock is absolute
    ``time.time()``.  Tests substitute the transport layer's
    :class:`~repro.sampling.transport.SimulatedClock` (same ``now`` /
    ``sleep`` surface) to make expiry deterministic.
    """

    @property
    def now(self) -> float:
        """Seconds since the epoch."""
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Really sleep (workers poll on this between claims)."""
        if seconds > 0:
            time.sleep(seconds)


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on a job."""

    worker: str
    token: str
    expires: float

    def expired(self, now: float) -> bool:
        """Whether the lease has aged out (the worker presumably died)."""
        return now >= self.expires


@dataclass(frozen=True)
class Job:
    """One durable unit of fleet work (immutable snapshot of its file)."""

    job_id: str
    kind: str
    database: str
    priority: float = 0.0
    state: str = JobState.PENDING
    attempts: int = 0
    max_attempts: int = 3
    not_before: float = 0.0
    lease: Lease | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] | None = None
    error: str | None = None

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON emission."""
        data: dict[str, object] = {
            "schema": QUEUE_SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "database": self.database,
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "payload": self.payload,
            "result": self.result,
            "error": self.error,
        }
        if self.lease is not None:
            data["lease"] = {
                "worker": self.lease.worker,
                "token": self.lease.token,
                "expires": self.lease.expires,
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], source: str) -> "Job":
        """Parse a job file dict, validating schema and state."""
        schema = data.get("schema")
        if schema != QUEUE_SCHEMA:
            raise ValueError(
                f"{source}: unsupported queue schema {schema!r} (expected {QUEUE_SCHEMA!r})"
            )
        state = str(data.get("state", JobState.PENDING))
        if state not in JobState.ALL:
            raise ValueError(f"{source}: unknown job state {state!r}")
        lease = None
        raw_lease = data.get("lease")
        if raw_lease is not None:
            lease = Lease(
                worker=str(raw_lease["worker"]),
                token=str(raw_lease["token"]),
                expires=float(raw_lease["expires"]),
            )
        return cls(
            job_id=str(data["job_id"]),
            kind=str(data["kind"]),
            database=str(data["database"]),
            priority=float(data.get("priority", 0.0)),
            state=state,
            attempts=int(data.get("attempts", 0)),
            max_attempts=int(data.get("max_attempts", 3)),
            not_before=float(data.get("not_before", 0.0)),
            lease=lease,
            payload=dict(data.get("payload") or {}),
            result=data.get("result"),
            error=data.get("error"),
        )


def _default_job_id(kind: str, database: str) -> str:
    # Percent-escaping keeps any database name a safe filename chunk
    # and makes the default id injective in (kind, database) — which
    # is what makes re-submitting the same logical work idempotent.
    return f"{quote(kind, safe='')}--{quote(database, safe='')}"


class DurableJobQueue:
    """File-per-job durable queue with leases, priorities, and retry.

    Parameters
    ----------
    root:
        Queue directory; ``root/jobs/<job_id>.json`` holds each job.
    lease_seconds:
        How long a claim holds before a dead worker's job is
        reclaimable (extendable via :meth:`extend_lease` heartbeats).
    backoff_base, backoff_multiplier:
        A failed attempt re-enters pending no earlier than
        ``base * multiplier ** (attempts - 1)`` seconds later.
    clock:
        ``now``/``sleep`` provider; defaults to :class:`SystemClock`
        (absolute timestamps, so leases survive process boundaries).
    recorder:
        Observability sink for ``fleet.*`` counters and queue events.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        lease_seconds: float = 120.0,
        backoff_base: float = 1.0,
        backoff_multiplier: float = 2.0,
        clock: Any | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if backoff_base < 0 or backoff_multiplier < 1.0:
            raise ValueError("backoff_base must be >= 0 and backoff_multiplier >= 1")
        self.root = Path(root)
        self.lease_seconds = lease_seconds
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.clock = clock if clock is not None else SystemClock()
        self.recorder = recorder
        self._lock = threading.Lock()
        self._claim_counter = 0

    # -- files -------------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        """Directory holding one JSON file per job."""
        return self.root / _JOBS_DIR

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _write(self, job: Job) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self._job_path(job.job_id),
            json.dumps(job.as_dict(), indent=2, sort_keys=True) + "\n",
        )

    def _read(self, job_id: str) -> Job:
        path = self._job_path(job_id)
        if not path.is_file():
            raise KeyError(f"no job {job_id!r} in queue {self.root}")
        return Job.from_dict(json.loads(path.read_text(encoding="utf-8")), str(path))

    def jobs(self) -> Iterator[Job]:
        """Every job currently in the queue, in job-id order."""
        if not self.jobs_dir.is_dir():
            return
        for path in sorted(self.jobs_dir.glob("*.json")):
            yield Job.from_dict(json.loads(path.read_text(encoding="utf-8")), str(path))

    def get(self, job_id: str) -> Job:
        """The current durable state of one job."""
        with self._lock:
            return self._read(job_id)

    # -- submitting --------------------------------------------------------

    def submit(
        self,
        kind: str,
        database: str,
        *,
        priority: float = 0.0,
        payload: Mapping[str, Any] | None = None,
        job_id: str | None = None,
        max_attempts: int = 3,
    ) -> Job:
        """Add one job (idempotent per job id).

        Re-submitting an id that is already pending/leased returns the
        existing job unchanged — callers can blindly enqueue a sweep
        without double-scheduling work a crashed run already queued.  A
        done or failed job under the same id is replaced (a new round
        of the same logical work).
        """
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        job_id = job_id or _default_job_id(kind, database)
        with self._lock:
            try:
                existing = self._read(job_id)
            except KeyError:
                existing = None
            if existing is not None and existing.state in (JobState.PENDING, JobState.LEASED):
                return existing
            job = Job(
                job_id=job_id,
                kind=kind,
                database=database,
                priority=priority,
                payload=dict(payload or {}),
                max_attempts=max_attempts,
            )
            self._write(job)
        self.recorder.count("fleet.jobs_submitted")
        return job

    # -- claiming ----------------------------------------------------------

    def _eligible(self, job: Job, now: float) -> bool:
        if job.state == JobState.PENDING:
            return now >= job.not_before
        if job.state == JobState.LEASED:
            return job.lease is not None and job.lease.expired(now)
        return False

    def claim(self, worker_id: str) -> Job | None:
        """Lease the best eligible job to ``worker_id`` (None = nothing to do).

        Eligible means pending with its backoff gate passed, or leased
        with an expired lease (the previous worker died mid-job — the
        re-claim is counted as ``fleet.leases_expired``).  Highest
        priority wins; ties go to the smaller job id so the order is
        deterministic.
        """
        with self._lock:
            now = self.clock.now
            candidates = [job for job in self.jobs() if self._eligible(job, now)]
            if not candidates:
                return None
            best = min(candidates, key=lambda job: (-job.priority, job.job_id))
            reclaimed = best.state == JobState.LEASED
            previous_worker = best.lease.worker if best.lease is not None else ""
            self._claim_counter += 1
            lease = Lease(
                worker=worker_id,
                token=f"{worker_id}:{best.attempts + 1}:{self._claim_counter}",
                expires=now + self.lease_seconds,
            )
            claimed = replace(
                best, state=JobState.LEASED, attempts=best.attempts + 1, lease=lease
            )
            self._write(claimed)
        if reclaimed:
            self.recorder.count("fleet.leases_expired")
            self.recorder.event(
                "lease_expired", job_id=best.job_id, previous_worker=previous_worker
            )
        self.recorder.count("fleet.jobs_claimed")
        return claimed

    def extend_lease(self, job_id: str, token: str) -> Job:
        """Heartbeat: push the lease expiry out by ``lease_seconds``."""
        with self._lock:
            job = self._checked(job_id, token)
            assert job.lease is not None  # _checked guarantees it
            extended = replace(
                job, lease=replace(job.lease, expires=self.clock.now + self.lease_seconds)
            )
            self._write(extended)
            return extended

    def _checked(self, job_id: str, token: str) -> Job:
        """The job, if and only if ``token`` still owns its lease."""
        job = self._read(job_id)
        if job.state != JobState.LEASED or job.lease is None or job.lease.token != token:
            raise LeaseLostError(
                f"job {job_id!r} is not held under this lease "
                f"(state={job.state}, the job moved on without this worker)"
            )
        return job

    # -- finishing ---------------------------------------------------------

    def complete(self, job_id: str, token: str, result: Mapping[str, Any] | None = None) -> bool:
        """Mark a leased job done — exactly once.

        Returns True if this call completed the job.  If the job is
        *already done* (this worker's lease expired and a re-claimant
        finished first) returns False so the caller discards its
        duplicate result.  Any other lease mismatch raises
        :class:`LeaseLostError`.
        """
        with self._lock:
            job = self._read(job_id)
            if job.state == JobState.DONE:
                self.recorder.count("fleet.duplicate_completions")
                return False
            job = self._checked(job_id, token)
            done = replace(
                job, state=JobState.DONE, lease=None, result=dict(result or {}), error=None
            )
            self._write(done)
        self.recorder.count("fleet.jobs_completed")
        return True

    def fail(self, job_id: str, token: str, error: str) -> Job:
        """Record a failed attempt: retry with backoff, or park as failed."""
        with self._lock:
            job = self._checked(job_id, token)
            if job.attempts >= job.max_attempts:
                parked = replace(job, state=JobState.FAILED, lease=None, error=error)
                self._write(parked)
                outcome = parked
            else:
                delay = self.backoff_base * self.backoff_multiplier ** (job.attempts - 1)
                retried = replace(
                    job,
                    state=JobState.PENDING,
                    lease=None,
                    error=error,
                    not_before=self.clock.now + delay,
                )
                self._write(retried)
                outcome = retried
        if outcome.state == JobState.FAILED:
            self.recorder.count("fleet.jobs_dead")
            self.recorder.event("job_failed", job_id=job_id, error=error)
        else:
            self.recorder.count("fleet.jobs_retried")
        return outcome

    # -- inspection --------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Job counts by state (all four states always present)."""
        counts = {state: 0 for state in JobState.ALL}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    def drained(self) -> bool:
        """Whether every job has reached a terminal state (done/failed)."""
        return all(job.state in (JobState.DONE, JobState.FAILED) for job in self.jobs())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DurableJobQueue(root={str(self.root)!r})"
