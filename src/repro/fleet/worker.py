"""Fleet workers: drain the durable queue, refresh models, survive crashes.

A :class:`FleetWorker` is one claim-execute-complete loop over a
:class:`~repro.fleet.queue.DurableJobQueue`.  The execution side reuses
the repo's existing resilience pieces rather than reinventing them:

* a per-worker :class:`~repro.sampling.transport.CircuitBreaker` (PR 1)
  gates every job — a database that keeps failing permanently stops
  being hammered, and jobs it would have run fail fast back into the
  queue's retry/backoff machinery;
* an optional per-job :class:`~repro.store.SamplerCheckpointer` (PR 5)
  rides under the refresh re-sample, so a worker killed mid-refresh
  resumes the sampling run bit-identically instead of restarting it.

:class:`RefreshRunner` is the standard job handler: it executes
``refresh_check`` jobs with *exactly* the semantics of
:meth:`repro.sampling.staleness.RefreshPolicy.maybe_refresh` (same
probe, same seeds, same decision rule), installing refreshed models
into a lock-guarded result sink.  :func:`run_workers` runs a pool of
worker threads until the queue drains.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.backend import SearchableDatabase
from repro.fleet.queue import DurableJobQueue, Job, LeaseLostError
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.sampler import QueryBasedSampler
from repro.sampling.selection import QueryTermSelector
from repro.sampling.staleness import RefreshPolicy, StalenessReport, staleness_probe
from repro.sampling.stopping import MaxDocuments
from repro.sampling.transport import RETRYABLE_ERRORS, CircuitBreaker, ServerError
from repro.store.checkpoint import SamplerCheckpointer
from repro.text.analyzer import Analyzer
from repro.utils.rand import derive_seed

__all__ = [
    "FleetWorker",
    "RefreshOutcome",
    "RefreshRunner",
    "WorkerStats",
    "run_workers",
]

#: The job kind RefreshRunner understands.
REFRESH_JOB_KIND = "refresh_check"


@dataclass
class RefreshOutcome:
    """Everything a completed refresh sweep produced, thread-safely.

    Workers append under one lock; the orchestration layer reads the
    dicts once every worker has joined.
    """

    models: dict[str, LanguageModel] = field(default_factory=dict)
    reports: dict[str, StalenessReport] = field(default_factory=dict)
    refreshed: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self, name: str, model: LanguageModel, report: StalenessReport, refreshed: bool
    ) -> None:
        """Install one database's sweep result."""
        with self._lock:
            self.models[name] = model
            self.reports[name] = report
            if refreshed:
                self.refreshed.append(name)


class RefreshRunner:
    """Executes ``refresh_check`` jobs with ``maybe_refresh`` semantics.

    Parameters
    ----------
    databases:
        Install name → live database handle.
    stored_models:
        Install name → the currently served model (the probe baseline).
    bootstrap_factory:
        Install name → bootstrap selector for that database's sampler.
    policy:
        Thresholds and refresh sample size.
    outcome:
        Shared sink the runner records results into.
    analyzer:
        The text pipeline the stored models were built with (``None``
        = raw tokens).  Threaded into every staleness probe and refresh
        re-sample, exactly as
        :meth:`RefreshPolicy.maybe_refresh` threads it — a probe in a
        different vocabulary reads as spurious staleness, and a refresh
        under a different analyzer would install a model inconsistent
        with the set it joins.
    checkpoint_root:
        When set, each refresh re-sample runs under a per-job
        :class:`SamplerCheckpointer` in ``checkpoint_root/<job_id>/`` —
        a worker killed mid-refresh resumes the run bit-identically.
    recorder:
        Observability sink (spans from the underlying sampler plus
        ``fleet.models_refreshed`` / ``fleet.probes_run`` counters).
    """

    def __init__(
        self,
        databases: Mapping[str, SearchableDatabase],
        stored_models: Mapping[str, LanguageModel],
        bootstrap_factory: Callable[[str], QueryTermSelector],
        policy: RefreshPolicy,
        outcome: RefreshOutcome,
        *,
        analyzer: Analyzer | None = None,
        checkpoint_root: Any | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.databases = databases
        self.stored_models = stored_models
        self.bootstrap_factory = bootstrap_factory
        self.policy = policy
        self.outcome = outcome
        self.analyzer = analyzer
        self.checkpoint_root = checkpoint_root
        self.recorder = recorder

    def __call__(self, job: Job) -> dict[str, Any]:
        """Probe one database; re-sample if stale.  Returns the job result.

        Seed discipline matches :meth:`RefreshPolicy.maybe_refresh`
        exactly: the probe runs at the job's seed, the refresh sampler
        at ``derive_seed(seed, "refresh")`` — so a queued sweep's query
        sequences are identical to the old inline sweep's.
        """
        if job.kind != REFRESH_JOB_KIND:
            raise ValueError(f"RefreshRunner cannot execute job kind {job.kind!r}")
        name = job.database
        if name not in self.databases:
            raise KeyError(f"job {job.job_id!r} names unknown database {name!r}")
        seed = int(job.payload.get("seed", 0))
        database = self.databases[name]
        stored = self.stored_models[name]
        bootstrap = self.bootstrap_factory(name)
        report = staleness_probe(
            database,
            stored,
            bootstrap,
            analyzer=self.analyzer,
            seed=seed,
            recorder=self.recorder,
        )
        self.recorder.count("fleet.probes_run")
        stale = report.is_stale(self.policy.rdiff_threshold, self.policy.spearman_floor)
        if not stale:
            self.outcome.record(name, stored, report, refreshed=False)
            return {"refreshed": False, "spearman": report.spearman}
        sampler = QueryBasedSampler(
            database,
            bootstrap=bootstrap,
            stopping=MaxDocuments(self.policy.refresh_documents),
            analyzer=self.analyzer,
            seed=derive_seed(seed, "refresh"),
            recorder=self.recorder,
        )
        checkpoint = None
        if self.checkpoint_root is not None:
            from pathlib import Path

            checkpoint = SamplerCheckpointer(
                Path(self.checkpoint_root) / job.job_id, recorder=self.recorder
            )
            checkpoint.resume(sampler)
        model = sampler.run(checkpoint=checkpoint).model
        self.outcome.record(name, model, report, refreshed=True)
        self.recorder.count("fleet.models_refreshed")
        return {"refreshed": True, "spearman": report.spearman}


@dataclass
class WorkerStats:
    """One worker's tally after :meth:`FleetWorker.run` returns."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    rejected_by_breaker: int = 0
    lost_leases: int = 0


class FleetWorker:
    """One claim → execute → complete loop over the durable queue.

    Parameters
    ----------
    worker_id:
        Stable identity stamped into leases (and lease-expiry events).
    queue:
        The shared durable queue.
    handler:
        ``Job -> result dict``; raising marks the attempt failed (the
        queue retries with backoff until attempts exhaust).
    breaker:
        Circuit breaker consulted before every job; opened by
        *retryable* server errors (the transient kind worth pausing
        on), so a flapping backend stops being hammered.  A rejected
        job is failed back to the queue without touching the backend.
    on_job_done:
        Test/CLI hook called after each completed or failed job with
        the running count — the CLI's crash injector uses it to die
        mid-lease at a precise point.
    """

    def __init__(
        self,
        worker_id: str,
        queue: DurableJobQueue,
        handler: Callable[[Job], Mapping[str, Any]],
        *,
        breaker: CircuitBreaker | None = None,
        recorder: Recorder = NULL_RECORDER,
        on_job_done: Callable[[int], None] | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.queue = queue
        self.handler = handler
        self.breaker = breaker or CircuitBreaker()
        self.recorder = recorder
        self.on_job_done = on_job_done
        self.stats = WorkerStats(worker_id=worker_id)

    def run_one(self) -> bool:
        """Claim and process one job.  False means nothing was claimable."""
        job = self.queue.claim(self.worker_id)
        if job is None:
            return False
        assert job.lease is not None
        token = job.lease.token
        with self.recorder.span(
            "fleet_job", job_id=job.job_id, database=job.database, worker=self.worker_id
        ) as span:
            if not self.breaker.allow():
                self.stats.rejected_by_breaker += 1
                self.recorder.count("fleet.breaker_rejected")
                self._fail(job, token, "circuit breaker open")
                span.set(outcome="breaker_rejected")
                return True
            try:
                result = self.handler(job)
            except RETRYABLE_ERRORS as error:
                self.breaker.record_failure()
                self._fail(job, token, f"{type(error).__name__}: {error}")
                span.set(outcome="retryable_error")
            except (ServerError, ValueError, KeyError, OSError) as error:
                # Non-retryable trouble still goes through the queue's
                # bounded retry (the next attempt may hit a healthier
                # replica or a fixed config) but does not open the
                # breaker: the backend itself answered.
                self._fail(job, token, f"{type(error).__name__}: {error}")
                span.set(outcome="error")
            else:
                self.breaker.record_success()
                self._complete(job, token, result)
                span.set(outcome="done")
        return True

    def _complete(self, job: Job, token: str, result: Mapping[str, Any]) -> None:
        try:
            if self.queue.complete(job.job_id, token, result):
                self.stats.completed += 1
            else:
                self.stats.lost_leases += 1
        except LeaseLostError:
            self.stats.lost_leases += 1
        self._notify()

    def _fail(self, job: Job, token: str, error: str) -> None:
        try:
            self.queue.fail(job.job_id, token, error)
            self.stats.failed += 1
        except LeaseLostError:
            self.stats.lost_leases += 1
        self._notify()

    def _notify(self) -> None:
        if self.on_job_done is not None:
            self.on_job_done(self.stats.completed + self.stats.failed)

    def run(self, *, poll_interval: float = 0.02, idle_polls: int = 3) -> WorkerStats:
        """Drain the queue: loop until nothing is claimable.

        An empty claim is retried ``idle_polls`` times (other workers
        may fail jobs back into pending, and backoff gates open over
        time) before the worker exits.
        """
        idle = 0
        while idle <= idle_polls:
            if self.run_one():
                idle = 0
                continue
            idle += 1
            if idle <= idle_polls:
                self.queue.clock.sleep(poll_interval)
        return self.stats


def run_workers(
    queue: DurableJobQueue,
    handler: Callable[[Job], Mapping[str, Any]],
    *,
    num_workers: int = 4,
    breaker_factory: Callable[[], CircuitBreaker] | None = None,
    recorder: Recorder = NULL_RECORDER,
    poll_interval: float = 0.02,
    idle_polls: int = 3,
    on_job_done: Callable[[int], None] | None = None,
) -> list[WorkerStats]:
    """Drain the queue with a pool of worker threads; returns their stats.

    Worker threads share the queue object (its internal lock makes
    claims race-free) and the handler, which must therefore be
    thread-safe — :class:`RefreshRunner` is.  Each worker gets its own
    circuit breaker so one worker's bad luck does not trip the others.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    make_breaker = breaker_factory or CircuitBreaker
    workers = [
        FleetWorker(
            f"worker-{index}",
            queue,
            handler,
            breaker=make_breaker(),
            recorder=recorder,
            on_job_done=on_job_done,
        )
        for index in range(num_workers)
    ]
    if num_workers == 1:
        return [workers[0].run(poll_interval=poll_interval, idle_polls=idle_polls)]
    threads = [
        threading.Thread(
            target=worker.run,
            kwargs={"poll_interval": poll_interval, "idle_polls": idle_polls},
            name=worker.worker_id,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [worker.stats for worker in workers]
