"""Staleness-aware budget allocation for fleet refresh.

At fleet scale the maintenance question is not *whether* to refresh
but *which databases first*, under a fixed probe budget.  Following
Gupta & Bhatia's result that allocating a fixed crawl budget by
(term-weighted) change frequency beats uniform revisiting, the
scheduler ranks each database by

    score(db) = staleness(db) × popularity(db) / cost(db)

* **staleness** — the scheduler's running estimate that the stored
  model has drifted, updated from every staleness probe it sees:
  ``clip(1 − spearman, 0, 1)`` of the latest
  :class:`~repro.sampling.staleness.StalenessReport`.  A database
  never probed defaults to ``default_staleness`` (1.0: unknown means
  assume the worst, so new databases are probed promptly).
* **popularity** — how often serving actually selects the database,
  read from the ``serving.db.<name>.searched`` counters the serving
  layer emits into :mod:`repro.obs` metrics (add-one smoothed, so an
  unqueried database is deprioritised but never starved to zero).
* **cost** — estimated probe/refresh expense.  Uniform by default
  (every probe draws the same mini-sample); injectable for fleets
  where backends differ in latency or pricing.

The scores become queue priorities: :meth:`FleetScheduler.enqueue`
feeds a :class:`~repro.fleet.queue.DurableJobQueue`, whose claim order
is priority-descending, optionally truncated to a budget.  The old
``RefreshPolicy.refresh_all`` sweep — unordered, serial, all-or-nothing
— is replaced by this enqueue + worker-pool path; its semantics are
preserved by the budget-less form (probe everything, refresh the stale,
one epoch bump), which is what
:meth:`FederatedSearchService.refresh_stale_models` now wraps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.fleet.queue import DurableJobQueue, Job
from repro.fleet.worker import REFRESH_JOB_KIND
from repro.obs.metrics import MetricSet
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.staleness import StalenessReport
from repro.utils.rand import derive_seed

__all__ = [
    "DatabasePriority",
    "FleetScheduler",
    "popularity_from_metrics",
]


def popularity_from_metrics(metrics: MetricSet, names: Iterable[str]) -> dict[str, float]:
    """Serving popularity per database from ``serving.db.*`` counters.

    Add-one smoothing keeps never-selected databases schedulable —
    their models still drift even if nobody queries them this week.
    """
    return {
        name: 1.0 + metrics.counter(f"serving.db.{name}.searched").value for name in names
    }


@dataclass(frozen=True)
class DatabasePriority:
    """One database's scheduling inputs and the score they combine to."""

    name: str
    staleness: float
    popularity: float
    cost: float

    @property
    def score(self) -> float:
        """``staleness × popularity / cost`` — expected value per unit spent."""
        return self.staleness * self.popularity / self.cost


class FleetScheduler:
    """Ranks databases for refresh and feeds the durable queue.

    Thread-safe: workers report probe results back via
    :meth:`observe_report` while the next round is being planned.

    Parameters
    ----------
    default_staleness:
        Prior for a database with no probe history (1.0 = assume
        stale, so unknown databases are examined first).
    cost_estimator:
        ``name -> positive cost``; defaults to uniform 1.0.
    recorder:
        Observability sink (``fleet.jobs_submitted`` comes from the
        queue; the scheduler adds a ``fleet_schedule`` span per round).
    """

    def __init__(
        self,
        *,
        default_staleness: float = 1.0,
        cost_estimator: Callable[[str], float] | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not 0.0 <= default_staleness <= 1.0:
            raise ValueError("default_staleness must be within [0, 1]")
        self.default_staleness = default_staleness
        self.cost_estimator = cost_estimator
        self.recorder = recorder
        self._staleness: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- staleness estimates -----------------------------------------------

    def observe_report(self, name: str, report: StalenessReport) -> None:
        """Fold a fresh probe result into the database's staleness estimate."""
        estimate = max(0.0, min(1.0, 1.0 - report.spearman))
        with self._lock:
            self._staleness[name] = estimate

    def observe_refreshed(self, name: str) -> None:
        """A refresh landed: the model is as fresh as it can be."""
        with self._lock:
            self._staleness[name] = 0.0

    def staleness_estimate(self, name: str) -> float:
        """The current estimate (the prior if never probed)."""
        with self._lock:
            return self._staleness.get(name, self.default_staleness)

    # -- ranking -----------------------------------------------------------

    def _cost(self, name: str) -> float:
        cost = self.cost_estimator(name) if self.cost_estimator is not None else 1.0
        if cost <= 0:
            raise ValueError(f"estimated cost for {name!r} must be positive, got {cost}")
        return cost

    def priorities(
        self,
        names: Iterable[str],
        *,
        popularity: Mapping[str, float] | None = None,
    ) -> list[DatabasePriority]:
        """Every database's scheduling row, highest score first.

        ``popularity`` defaults to uniform (no serving signal —
        ranking degrades gracefully to staleness/cost alone).
        """
        rows = [
            DatabasePriority(
                name=name,
                staleness=self.staleness_estimate(name),
                popularity=float(popularity.get(name, 1.0)) if popularity else 1.0,
                cost=self._cost(name),
            )
            for name in names
        ]
        return sorted(rows, key=lambda row: (-row.score, row.name))

    # -- feeding the queue ---------------------------------------------------

    def enqueue(
        self,
        queue: DurableJobQueue,
        names: Iterable[str],
        *,
        seed: int = 0,
        budget: int | None = None,
        popularity: Mapping[str, float] | None = None,
        max_attempts: int = 3,
    ) -> list[Job]:
        """Submit prioritized ``refresh_check`` jobs; returns them in rank order.

        ``budget`` truncates to the top-scoring databases (the
        fleet-scale mode); ``None`` enqueues everything, so priority
        affects only execution *order* — the mode that preserves
        ``refresh_all``'s probe-every-database semantics.  Per-job
        seeds are ``derive_seed(seed, "staleness", name)``, exactly the
        old sweep's derivation, so queued probes reproduce the inline
        sweep's query sequences database for database.
        """
        ranked = self.priorities(names, popularity=popularity)
        if budget is not None:
            if budget <= 0:
                raise ValueError("budget must be positive")
            ranked = ranked[:budget]
        with self.recorder.span("fleet_schedule", databases=len(ranked)) as span:
            jobs = [
                queue.submit(
                    REFRESH_JOB_KIND,
                    row.name,
                    priority=row.score,
                    payload={"seed": derive_seed(seed, "staleness", row.name)},
                    max_attempts=max_attempts,
                )
                for row in ranked
            ]
            span.set(budget=budget if budget is not None else len(jobs))
        return jobs
