"""Fleet lifecycle benchmark: refresh throughput and scheduler quality.

Two questions, one report (``BENCH_fleet.json``):

1. **Does refresh throughput scale with workers?**  Probe jobs against
   a real fleet are I/O-bound — the wall-clock goes to remote
   backends, not local CPU — so the bench injects a fixed per-query
   latency into every sampling query and drains the same probe sweep
   at each worker level.  More workers overlap more backend waits;
   the report pins the jobs-per-second curve.
2. **Does the staleness-aware scheduler beat uniform allocation?**  A
   drifting synthetic fleet (a slice of databases silently replaced
   after their models were learned) serves skewed query traffic, so
   popularity — measured from the *real* ``serving.db.<name>.searched``
   counters, not synthesized — concentrates on a few databases.  Each
   policy gets the same fixed probe budget for one round; the metric
   is the popularity-weighted mean true staleness of the served model
   set afterwards.  The scored policy spends its budget on the
   databases users actually hit, so a popular drifted database cannot
   hide behind a long tail of fresh ones.

Run via ``repro fleet bench``; the committed ``BENCH_fleet.json`` at
the repo root is this module's output on the default configuration.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from random import Random
from typing import Callable, Mapping, Sequence

from repro.corpus import Corpus
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.fleet.scheduler import popularity_from_metrics
from repro.fleet.sweep import run_refresh_sweep
from repro.index.server import DatabaseServer
from repro.lm.compare import spearman_rank_correlation
from repro.lm.model import LanguageModel
from repro.obs import TraceRecorder
from repro.sampling.sampler import QueryBasedSampler
from repro.sampling.selection import QueryTermSelector, RandomFromOther
from repro.sampling.staleness import RefreshPolicy
from repro.sampling.stopping import MaxDocuments
from repro.serving.bench import queries_from_models
from repro.synth import cacm_like, wsj88_like
from repro.utils.rand import derive_seed

__all__ = [
    "FLEET_BENCH_SCHEMA",
    "FleetBenchReport",
    "PolicyRound",
    "ThroughputLevel",
    "format_fleet_bench",
    "run_fleet_bench",
    "write_fleet_bench",
]

FLEET_BENCH_SCHEMA = "repro-fleet-bench/1"


@dataclass(frozen=True)
class ThroughputLevel:
    """One worker-count level of the probe-throughput sweep."""

    workers: int
    probes: int
    seconds: float
    probes_per_sec: float


@dataclass(frozen=True)
class PolicyRound:
    """One scheduling policy's round under the fixed probe budget."""

    policy: str
    probed: tuple[str, ...]
    refreshed: tuple[str, ...]
    weighted_staleness: float


@dataclass(frozen=True)
class FleetBenchReport:
    """Everything ``repro fleet bench`` measured, machine-readable."""

    num_databases: int
    scale: float
    seed: int
    budget: int
    probe_latency: float
    drifted: tuple[str, ...]
    popularity: Mapping[str, float]
    initial_weighted_staleness: float
    throughput: tuple[ThroughputLevel, ...]
    policies: tuple[PolicyRound, ...]

    @property
    def throughput_scaling(self) -> float:
        """Jobs/sec at the highest worker level over the 1-worker rate."""
        by_workers = {level.workers: level.probes_per_sec for level in self.throughput}
        base = by_workers.get(1) or min(by_workers.items())[1]
        peak = by_workers[max(by_workers)]
        return peak / base if base > 0 else 0.0

    @property
    def uniform_mean_staleness(self) -> float:
        """Mean weighted staleness across the uniform policy's draws."""
        draws = [r.weighted_staleness for r in self.policies if r.policy == "uniform"]
        return sum(draws) / len(draws) if draws else 0.0

    @property
    def scheduler_advantage(self) -> float:
        """Mean uniform staleness over scored (>1 means scored wins)."""
        scored = next(
            (r.weighted_staleness for r in self.policies if r.policy == "scored"), 0.0
        )
        return self.uniform_mean_staleness / scored if scored > 0 else float("inf")

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form matching the ``repro-fleet-bench/1`` schema."""
        return {
            "schema": FLEET_BENCH_SCHEMA,
            "config": {
                "num_databases": self.num_databases,
                "scale": self.scale,
                "seed": self.seed,
                "budget": self.budget,
                "probe_latency": self.probe_latency,
            },
            "throughput": {
                "levels": [
                    {
                        "workers": level.workers,
                        "probes": level.probes,
                        "seconds": round(level.seconds, 4),
                        "probes_per_sec": round(level.probes_per_sec, 3),
                    }
                    for level in self.throughput
                ],
                "scaling_1_to_max": round(self.throughput_scaling, 3),
            },
            "scheduler": {
                "drifted": list(self.drifted),
                "popularity": {
                    name: self.popularity[name] for name in sorted(self.popularity)
                },
                "initial_weighted_staleness": round(self.initial_weighted_staleness, 4),
                "rounds": [
                    {
                        "policy": round_.policy,
                        "probed": list(round_.probed),
                        "refreshed": list(round_.refreshed),
                        "weighted_staleness": round(round_.weighted_staleness, 4),
                    }
                    for round_ in self.policies
                ],
                "uniform_mean_weighted_staleness": round(self.uniform_mean_staleness, 4),
                "advantage_uniform_over_scored": round(self.scheduler_advantage, 3),
            },
        }


class _SlowProbeDatabase:
    """A database whose every *sampling* query pays a fixed latency.

    The serving bench's ``LatencyInjected`` targets the ranked-retrieval
    engine; probe and refresh samplers go through ``run_query``, so the
    throughput sweep needs the acquisition-side analogue — without it
    the probes are pure CPU and the GIL would flatten any thread-pool
    scaling, which is not how a fleet of remote backends behaves.
    """

    def __init__(self, inner: DatabaseServer, delay: float) -> None:
        self.inner = inner
        self.delay = delay
        self.name = getattr(inner, "name", "database")

    def run_query(self, query: str, max_docs: int = 10):
        time.sleep(self.delay)
        return self.inner.run_query(query, max_docs=max_docs)


def _build_fleet(
    num_databases: int, scale: float, seed: int
) -> dict[str, DatabaseServer]:
    """``num_databases`` distinct same-profile databases, stably named."""
    servers: dict[str, DatabaseServer] = {}
    for index in range(num_databases):
        name = f"db{index:02d}"
        corpus = cacm_like().build(seed=derive_seed(seed, "fleet", name), scale=scale)
        servers[name] = DatabaseServer(Corpus(corpus, name=name))
    return servers


def _learn_models(
    servers: Mapping[str, DatabaseServer], seed: int, sample_documents: int = 60
) -> dict[str, LanguageModel]:
    models = {}
    for name, server in servers.items():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(server.actual_language_model()),
            stopping=MaxDocuments(sample_documents),
            seed=derive_seed(seed, "learn", name),
        )
        models[name] = sampler.run().model
    return models


def _drift(
    servers: Mapping[str, DatabaseServer], names: Sequence[str], scale: float, seed: int
) -> dict[str, DatabaseServer]:
    """Silently replace ``names``' content with a different text profile."""
    drifted = dict(servers)
    for name in names:
        corpus = wsj88_like().build(seed=derive_seed(seed, "drift", name), scale=scale)
        drifted[name] = DatabaseServer(Corpus(corpus, name=name))
    return drifted


def _drive_traffic(
    servers: Mapping[str, DatabaseServer],
    models: Mapping[str, LanguageModel],
    hot_rounds: Mapping[str, int],
    recorder: TraceRecorder,
    seed: int,
) -> None:
    """Skewed query traffic: hot databases see many queries, the tail one.

    Queries are drawn from each target database's *stored* model — the
    vocabulary the service believes it holds — so CORI selection routes
    them there and the ``serving.db.<name>.searched`` counters the
    scheduler consumes reflect genuinely served load.
    """
    service = FederatedSearchService(servers, databases_per_query=2, recorder=recorder)
    service.use_models(models)
    for name in sorted(servers):
        rounds = hot_rounds.get(name, 1)
        queries = queries_from_models({name: models[name]}, rounds * 2)
        for query in queries:
            service.search(SearchRequest(query=query, n=5))


def _weighted_staleness(
    servers: Mapping[str, DatabaseServer],
    served: Mapping[str, LanguageModel],
    popularity: Mapping[str, float],
) -> float:
    """Popularity-weighted mean true staleness of the served model set.

    True staleness of one database is ``1 - spearman`` between its
    served model (projected through the database's analyzer, as
    ``repro compare`` does) and the ground-truth model of its *current*
    content — the quantity the refresh machinery exists to drive down,
    measured here with full knowledge the scheduler does not have.
    """
    total = 0.0
    weight = 0.0
    for name, server in servers.items():
        actual = server.actual_language_model()
        projected = served[name].project(server.index.analyzer)
        staleness = max(0.0, min(1.0, 1.0 - spearman_rank_correlation(projected, actual)))
        total += popularity[name] * staleness
        weight += popularity[name]
    return total / weight if weight else 0.0


def _measure_throughput(
    servers: Mapping[str, DatabaseServer],
    models: Mapping[str, LanguageModel],
    policy: RefreshPolicy,
    worker_levels: Sequence[int],
    probe_latency: float,
    seed: int,
) -> tuple[ThroughputLevel, ...]:
    """Drain one full probe sweep per worker level; wall-clock each."""
    slow: dict[str, _SlowProbeDatabase] = {
        name: _SlowProbeDatabase(server, probe_latency)
        for name, server in servers.items()
    }
    bootstraps: dict[str, QueryTermSelector] = {
        name: RandomFromOther(server.actual_language_model())
        for name, server in servers.items()
    }
    factory: Callable[[str], QueryTermSelector] = bootstraps.__getitem__
    levels = []
    for workers in worker_levels:
        started = time.perf_counter()
        result = run_refresh_sweep(
            slow, models, factory, policy=policy, seed=seed, num_workers=workers
        )
        elapsed = time.perf_counter() - started
        probes = len(result.outcome.reports)
        levels.append(
            ThroughputLevel(
                workers=workers,
                probes=probes,
                seconds=elapsed,
                probes_per_sec=probes / elapsed if elapsed > 0 else 0.0,
            )
        )
    return tuple(levels)


def run_fleet_bench(
    *,
    num_databases: int = 8,
    scale: float = 0.04,
    seed: int = 0,
    budget: int = 3,
    worker_levels: Sequence[int] = (1, 4),
    probe_latency: float = 0.02,
    uniform_draws: int = 5,
) -> FleetBenchReport:
    """Build a drifting fleet, measure throughput scaling and the scheduler.

    The fleet is ``num_databases`` same-profile synthetic databases
    with query-sampled models; a slice of them (two popular, one
    unpopular) then drifts to a different text profile.  Throughput is
    measured on the *pre-drift* fleet (probe-only jobs, identical work
    at every worker level); the scheduler comparison runs one
    fixed-budget round per policy from the same starting state.
    """
    if num_databases < 4:
        raise ValueError("the fleet bench needs at least 4 databases")
    if budget <= 0 or budget > num_databases:
        raise ValueError("budget must be in [1, num_databases]")
    if uniform_draws <= 0:
        raise ValueError("uniform_draws must be positive")
    servers = _build_fleet(num_databases, scale, seed)
    models = _learn_models(servers, seed)
    names = sorted(servers)
    policy = RefreshPolicy(refresh_documents=60)

    throughput = _measure_throughput(
        servers, models, policy, worker_levels, probe_latency, seed
    )

    # Drift: two databases that will be popular and one from the tail.
    drifted_names = (names[0], names[1], names[-1])
    drifted = _drift(servers, drifted_names, scale, seed)

    # Popularity from real serving traffic: the two popular drifted
    # databases plus one popular fresh one dominate the query stream.
    recorder = TraceRecorder()
    hot_rounds = {names[0]: 8, names[1]: 6, names[2]: 4}
    _drive_traffic(drifted, models, hot_rounds, recorder, seed)
    popularity = popularity_from_metrics(recorder.metrics, names)

    initial = _weighted_staleness(drifted, models, popularity)

    def bootstrap_factory(name: str) -> QueryTermSelector:
        return RandomFromOther(drifted[name].actual_language_model())

    rounds = []
    # Scored: the fleet scheduler ranks by staleness-prior x popularity
    # and the budget truncates the round.
    scored = run_refresh_sweep(
        drifted,
        models,
        bootstrap_factory,
        policy=policy,
        seed=seed,
        budget=budget,
        popularity=popularity,
        num_workers=2,
    )
    served = dict(models)
    served.update(
        {name: scored.outcome.models[name] for name in scored.outcome.refreshed}
    )
    rounds.append(
        PolicyRound(
            policy="scored",
            probed=tuple(sorted(scored.outcome.reports)),
            refreshed=tuple(sorted(scored.outcome.refreshed)),
            weighted_staleness=_weighted_staleness(drifted, served, popularity),
        )
    )

    # Uniform: the same budget spread over the fleet with no signal —
    # seeded draws, the honest model of "probe everything eventually,
    # B per round, no idea where the users or the drift are".  One
    # draw is pure luck either way, so the baseline is averaged over
    # several independent draws from the same starting state.
    for draw in range(uniform_draws):
        chosen = Random(derive_seed(seed, "uniform-pick", str(draw))).sample(
            names, budget
        )
        uniform = run_refresh_sweep(
            {name: drifted[name] for name in chosen},
            {name: models[name] for name in chosen},
            bootstrap_factory,
            policy=policy,
            seed=seed,
            num_workers=2,
        )
        served = dict(models)
        served.update(
            {name: uniform.outcome.models[name] for name in uniform.outcome.refreshed}
        )
        rounds.append(
            PolicyRound(
                policy="uniform",
                probed=tuple(sorted(uniform.outcome.reports)),
                refreshed=tuple(sorted(uniform.outcome.refreshed)),
                weighted_staleness=_weighted_staleness(drifted, served, popularity),
            )
        )

    return FleetBenchReport(
        num_databases=num_databases,
        scale=scale,
        seed=seed,
        budget=budget,
        probe_latency=probe_latency,
        drifted=drifted_names,
        popularity=popularity,
        initial_weighted_staleness=initial,
        throughput=throughput,
        policies=tuple(rounds),
    )


def format_fleet_bench(report: FleetBenchReport) -> str:
    """Human-readable rendering of a fleet bench report."""
    from repro.experiments.reporting import format_table

    lines = [
        f"fleet bench: {report.num_databases} databases, budget {report.budget}, "
        f"{report.probe_latency * 1000:.0f}ms injected probe latency",
        "",
        format_table(
            [
                {
                    "workers": level.workers,
                    "probes": level.probes,
                    "seconds": round(level.seconds, 2),
                    "probes_per_sec": round(level.probes_per_sec, 2),
                }
                for level in report.throughput
            ],
            title="Probe throughput by worker count",
        ),
        f"scaling 1 -> max workers: {report.throughput_scaling:.2f}x",
        "",
        format_table(
            [
                {
                    "policy": round_.policy,
                    "probed": ", ".join(round_.probed),
                    "refreshed": ", ".join(round_.refreshed) or "-",
                    "weighted_staleness": round(round_.weighted_staleness, 4),
                }
                for round_ in report.policies
            ],
            title=f"One budget-{report.budget} round from weighted staleness "
            f"{report.initial_weighted_staleness:.4f} "
            f"(drifted: {', '.join(report.drifted)})",
        ),
        f"scheduler advantage (mean uniform / scored staleness): "
        f"{report.scheduler_advantage:.2f}x",
    ]
    return "\n".join(lines)


def write_fleet_bench(report: FleetBenchReport, path: str) -> None:
    """Write the machine-readable report as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")
