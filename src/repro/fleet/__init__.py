"""Fleet-scale model lifecycle: durable queue, workers, and scheduling.

The paper discovers one language model per text database; keeping
*tens of thousands* of discovered models fresh is an orchestration
problem this package owns:

* :mod:`repro.fleet.queue` — a durable, file-backed job queue with
  priorities, worker leases, bounded retry, and exactly-once
  completion; a crashed worker's jobs outlive it;
* :mod:`repro.fleet.worker` — claim/execute/complete workers that
  refresh models with the exact semantics of
  :meth:`~repro.sampling.staleness.RefreshPolicy.maybe_refresh`,
  behind a per-worker circuit breaker and optional per-job sampler
  checkpoints;
* :mod:`repro.fleet.scheduler` — staleness × popularity / cost budget
  allocation (Gupta & Bhatia-style) that turns scores into queue
  priorities;
* :mod:`repro.fleet.sweep` — the orchestrated sweep tying the three
  together, used by the federated service and the ``repro fleet`` CLI;
* :mod:`repro.fleet.bench` — the drifting-fleet benchmark behind
  ``BENCH_fleet.json``.

The storage side lives in :mod:`repro.store`
(:class:`~repro.store.ShardedModelStore`).
"""

from repro.fleet.queue import (
    QUEUE_SCHEMA,
    DurableJobQueue,
    Job,
    JobState,
    Lease,
    LeaseLostError,
    SystemClock,
)
from repro.fleet.scheduler import DatabasePriority, FleetScheduler, popularity_from_metrics
from repro.fleet.sweep import SweepResult, run_refresh_sweep
from repro.fleet.worker import (
    REFRESH_JOB_KIND,
    FleetWorker,
    RefreshOutcome,
    RefreshRunner,
    WorkerStats,
    run_workers,
)

__all__ = [
    "DatabasePriority",
    "DurableJobQueue",
    "FleetScheduler",
    "FleetWorker",
    "Job",
    "JobState",
    "Lease",
    "LeaseLostError",
    "QUEUE_SCHEMA",
    "REFRESH_JOB_KIND",
    "RefreshOutcome",
    "RefreshRunner",
    "SweepResult",
    "SystemClock",
    "WorkerStats",
    "popularity_from_metrics",
    "run_refresh_sweep",
    "run_workers",
]
