"""The orchestrated refresh sweep: schedule → enqueue → drain → collect.

:func:`run_refresh_sweep` is the one entry point both
:meth:`FederatedSearchService.refresh_stale_models` (budget-less, all
databases, exact legacy semantics) and the ``repro fleet`` CLI
(budgeted, multi-round) call.  It wires the pieces of the fleet
package together:

1. the :class:`~repro.fleet.scheduler.FleetScheduler` ranks databases
   and submits prioritized ``refresh_check`` jobs to a
   :class:`~repro.fleet.queue.DurableJobQueue` (a caller-supplied
   durable directory, or a private temporary one for inline sweeps);
2. a pool of :class:`~repro.fleet.worker.FleetWorker` threads drains
   the queue, probing and re-sampling through
   :class:`~repro.fleet.worker.RefreshRunner`;
3. probe reports flow back into the scheduler's staleness estimates,
   and the collected :class:`~repro.fleet.worker.RefreshOutcome` is
   returned once every job reaches a terminal state.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.backend import SearchableDatabase
from repro.fleet.queue import DurableJobQueue, Job, JobState
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.worker import RefreshOutcome, RefreshRunner, WorkerStats, run_workers
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.selection import QueryTermSelector
from repro.sampling.staleness import RefreshPolicy
from repro.text.analyzer import Analyzer

__all__ = ["SweepResult", "run_refresh_sweep"]


@dataclass
class SweepResult:
    """Everything one orchestrated sweep produced."""

    outcome: RefreshOutcome
    worker_stats: list[WorkerStats]
    jobs: list[Job]

    @property
    def failed_jobs(self) -> list[Job]:
        """Jobs that exhausted their retries."""
        return [job for job in self.jobs if job.state == JobState.FAILED]


def run_refresh_sweep(
    databases: Mapping[str, SearchableDatabase],
    stored_models: Mapping[str, LanguageModel],
    bootstrap_factory: Callable[[str], QueryTermSelector],
    *,
    policy: RefreshPolicy | None = None,
    seed: int = 0,
    queue: DurableJobQueue | None = None,
    scheduler: FleetScheduler | None = None,
    budget: int | None = None,
    popularity: Mapping[str, float] | None = None,
    num_workers: int = 4,
    analyzer: Analyzer | None = None,
    checkpoint_root: object | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> SweepResult:
    """Probe (and refresh where stale) via the queue + worker pool.

    With ``budget=None`` every database is probed, so the result is
    semantically identical to the old inline
    :meth:`RefreshPolicy.refresh_all` sweep — same per-database seeds,
    same probe/refresh query sequences — just executed through the
    durable queue in priority order.  With a budget, only the
    top-scoring databases are examined this round (the fleet-scale
    mode); the remaining databases keep their stored models and simply
    do not appear in the outcome's reports.

    ``analyzer`` is the stored models' text pipeline, threaded into
    every probe and refresh so refreshed models stay
    vocabulary-consistent with the set they join (see
    :meth:`RefreshPolicy.maybe_refresh`).

    The call blocks until the queue drains.  Jobs that exhaust their
    retries surface in ``SweepResult.failed_jobs`` — the caller
    decides whether that is fatal (the service wrapper raises).
    """
    missing = set(databases) - set(stored_models)
    if missing:
        raise ValueError(f"missing stored models for databases: {sorted(missing)}")
    policy = policy or RefreshPolicy()
    scheduler = scheduler or FleetScheduler(recorder=recorder)

    def sweep(active_queue: DurableJobQueue) -> SweepResult:
        submitted = scheduler.enqueue(
            active_queue,
            sorted(databases),
            seed=seed,
            budget=budget,
            popularity=popularity,
        )
        outcome = RefreshOutcome()
        runner = RefreshRunner(
            databases,
            stored_models,
            bootstrap_factory,
            policy,
            outcome,
            analyzer=analyzer,
            checkpoint_root=checkpoint_root,
            recorder=recorder,
        )
        stats: list[WorkerStats] = []
        with recorder.span(
            "fleet_sweep", databases=len(submitted), workers=num_workers
        ) as span:
            # Workers exit when nothing is claimable; a retry whose
            # backoff gate has not opened yet is not claimable, so
            # keep draining until every job is terminal.
            while True:
                stats.extend(run_workers(
                    active_queue, runner, num_workers=num_workers, recorder=recorder
                ))
                if active_queue.drained():
                    break
                active_queue.clock.sleep(active_queue.backoff_base)
            for name, report in outcome.reports.items():
                scheduler.observe_report(name, report)
            for name in outcome.refreshed:
                scheduler.observe_refreshed(name)
            span.set(refreshed=len(outcome.refreshed))
        return SweepResult(
            outcome=outcome, worker_stats=stats, jobs=list(active_queue.jobs())
        )

    if queue is not None:
        return sweep(queue)
    # Inline sweeps get a private durable queue for the duration of the
    # call — crash recovery across calls is the caller-supplied-queue
    # mode; the inline mode just wants the pool and the ordering.
    with tempfile.TemporaryDirectory(prefix="repro-fleet-queue-") as tmp:
        return sweep(
            DurableJobQueue(tmp, backoff_base=0.05, recorder=recorder)
        )
