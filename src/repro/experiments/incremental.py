"""Incremental snapshot projection and metric accumulation.

The paper's learning curves score every snapshot of a sampling run
against the database's actual model.  Scored naively that is
O(snapshots × vocabulary): each snapshot is re-projected through the
server analyzer from scratch (re-stemming the entire learned
vocabulary) and each metric re-walks the full projected vocabulary.

A sampling run only ever *adds* statistics — df/ctf are monotone
non-decreasing per term — so consecutive snapshots differ in the few
terms the last 50 documents touched.  :class:`IncrementalCurveMeasurer`
exploits this with a projected-id representation:

* every raw term is analyzed **exactly once** over the whole run, the
  first time it appears, and mapped to a small integer id of its
  projected term (or -1 when the analyzer drops it);
* per snapshot, raw-term statistics are pulled into numpy arrays and
  diffed positionally against the previous snapshot's arrays, so the
  quiescent bulk of the vocabulary is skipped at C speed;
* the surviving deltas are folded into projected df/ctf arrays with a
  vectorized scatter-add — no Python-level work per changed term;
* the metric numerators (the ctf-ratio overlap sum, the sorted common
  vocabulary and its actual-df values feeding the Spearman ranks) are
  carried forward and updated only when a projected term first enters
  the shared vocabulary.

The positional diff leans on an invariant of :class:`LanguageModel`:
``add_term`` / ``add_document`` / ``merge`` only ever *append* new
terms, so the term order of a growing model — and of its snapshot
copies — is stable, and the previous snapshot's terms are a prefix of
the next one's in identical order.

Equivalence with full reprojection is the contract, not an
approximation:

* the carried projected statistics are **identical** per term to
  ``snapshot.model.project(analyzer)`` — integer statistics add, so
  folding deltas sums to the same totals;
* the maintained common-term list equals
  ``sorted(projected.vocabulary & actual.vocabulary)`` because the
  projected vocabulary only grows and the actual model is fixed;
* all three metrics are therefore computed from exactly the inputs the
  full-reprojection path would produce (integer numerators, the same
  sorted term list, the same rank vectors), giving bit-identical
  floats.

``tests/test_incremental_measure.py`` enforces all three properties.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import islice

import numpy as np

from repro.lm.compare import rank_values, spearman_from_ranks
from repro.lm.model import LanguageModel
from repro.text.analyzer import Analyzer


class IncrementalCurveMeasurer:
    """Scores a run's snapshots against ``actual`` without re-projection.

    Feed snapshots **in order of increasing documents examined** (the
    order :class:`~repro.sampling.result.SamplingRun` stores them).
    Each snapshot's raw model must extend the previous one the way a
    growing :class:`LanguageModel` does: statistics only accumulate and
    terms are only ever appended (see module docstring).  Copies of a
    single sampler's model at increasing times — i.e. real snapshots —
    satisfy this by construction.

    Parameters
    ----------
    actual:
        The database's actual language model (fixed for the run).
    analyzer:
        The server's analyzer, used to project learned raw terms into
        the database's term space (paper Section 4.1).
    """

    def __init__(self, actual: LanguageModel, analyzer: Analyzer) -> None:
        self._actual = actual
        self._analyzer = analyzer
        # Raw-term statistics of the previously advanced snapshot, as
        # parallel arrays in the model's (stable) term order.
        self._prev_df_values = np.empty(0, dtype=np.int64)
        self._prev_ctf_values = np.empty(0, dtype=np.int64)
        self._prev_size = 0
        # Raw-term position → projected term id (-1: analyzer drops the
        # term).  Aligned with the raw model's stable term order.
        self._raw_projection_ids = np.empty(0, dtype=np.int64)
        # Projected-term state: id → term string / df / ctf.  The
        # arrays grow by doubling; only the first len(_projected_terms)
        # entries are live.
        self._projected_terms: list[str] = []
        self._id_by_projected: dict[str, int] = {}
        self._projected_df = np.zeros(0, dtype=np.int64)
        self._projected_ctf = np.zeros(0, dtype=np.int64)
        self._documents_seen = 0
        self._tokens_seen = 0
        # Running metric numerators: the sorted common vocabulary with
        # its projected ids and actual-df values (parallel lists), and
        # the Σ actual.ctf(t) overlap sum of the ctf-ratio metric.
        self._common_terms: list[str] = []  # sorted(projected ∩ actual)
        self._common_ids: list[int] = []
        self._common_actual_df: list[int] = []
        self._covered_ctf = 0
        self._actual_size = len(actual)
        self._actual_total_ctf = actual.total_ctf

    def advance(self, model: LanguageModel) -> None:
        """Fold the next snapshot's raw model into the carried state."""
        size = len(model._df)
        prev_size = self._prev_size
        if prev_size > size:
            raise ValueError(
                "snapshots must be fed in order of increasing vocabulary; "
                f"got {size} terms after {prev_size}"
            )
        df_values = np.fromiter(model._df.values(), dtype=np.int64, count=size)
        ctf_values = np.fromiter(model._ctf.values(), dtype=np.int64, count=size)
        if size > prev_size:
            # Raw terms are append-only, so the terms past the previous
            # size are exactly the never-seen ones: analyze each once.
            new_ids = self._assign_ids(
                islice(iter(model._df), prev_size, None), size - prev_size
            )
            self._raw_projection_ids = np.concatenate(
                [self._raw_projection_ids, new_ids]
            )
        if prev_size:
            changed = np.flatnonzero(
                (df_values[:prev_size] != self._prev_df_values)
                | (ctf_values[:prev_size] != self._prev_ctf_values)
            )
            indices = np.concatenate([changed, np.arange(prev_size, size)])
            df_deltas = np.concatenate(
                [df_values[changed] - self._prev_df_values[changed],
                 df_values[prev_size:]]
            )
            ctf_deltas = np.concatenate(
                [ctf_values[changed] - self._prev_ctf_values[changed],
                 ctf_values[prev_size:]]
            )
        else:
            indices = np.arange(size)
            df_deltas = df_values
            ctf_deltas = ctf_values
        ids = self._raw_projection_ids[indices]
        keep = ids >= 0
        ids = ids[keep]
        # Several raw terms may conflate into one projected term within
        # a single batch; np.add.at accumulates duplicates correctly.
        np.add.at(self._projected_df, ids, df_deltas[keep])
        np.add.at(self._projected_ctf, ids, ctf_deltas[keep])
        self._prev_df_values = df_values
        self._prev_ctf_values = ctf_values
        self._prev_size = size
        self._documents_seen = model.documents_seen
        self._tokens_seen = model.tokens_seen

    def _assign_ids(self, new_terms, count: int) -> np.ndarray:
        """Project ``count`` first-seen raw terms; return their ids."""
        ids = np.empty(count, dtype=np.int64)
        id_by_projected = self._id_by_projected
        project_term = self._analyzer.project_term
        actual_df_get = self._actual._df.get
        actual_ctf = self._actual._ctf
        common_terms = self._common_terms
        for j, term in enumerate(new_terms):
            mapped = project_term(term)
            if mapped is None:
                ids[j] = -1
                continue
            projected_id = id_by_projected.get(mapped)
            if projected_id is None:
                projected_id = len(self._projected_terms)
                id_by_projected[mapped] = projected_id
                self._projected_terms.append(mapped)
                if projected_id == self._projected_df.size:
                    self._grow_projected_arrays()
                actual_df = actual_df_get(mapped)
                if actual_df is not None:
                    # The projected term just entered the shared
                    # vocabulary: update the overlap numerators.
                    self._covered_ctf += actual_ctf[mapped]
                    position = bisect_left(common_terms, mapped)
                    common_terms.insert(position, mapped)
                    self._common_ids.insert(position, projected_id)
                    self._common_actual_df.insert(position, actual_df)
            ids[j] = projected_id
        return ids

    def _grow_projected_arrays(self) -> None:
        capacity = max(1024, 2 * self._projected_df.size)
        grown_df = np.zeros(capacity, dtype=np.int64)
        grown_df[: self._projected_df.size] = self._projected_df
        grown_ctf = np.zeros(capacity, dtype=np.int64)
        grown_ctf[: self._projected_ctf.size] = self._projected_ctf
        self._projected_df = grown_df
        self._projected_ctf = grown_ctf

    def projected_model(self, name: str = "incremental-projected") -> LanguageModel:
        """Materialize the carried projection as a :class:`LanguageModel`.

        Term-for-term identical (df, ctf, documents/tokens seen) to
        ``snapshot.model.project(analyzer)`` for the last advanced
        snapshot.
        """
        count = len(self._projected_terms)
        model = LanguageModel(name=name)
        model._df = dict(zip(self._projected_terms, self._projected_df[:count].tolist()))
        model._ctf = dict(zip(self._projected_terms, self._projected_ctf[:count].tolist()))
        model._total_ctf = int(self._projected_ctf[:count].sum())
        model.documents_seen = self._documents_seen
        model.tokens_seen = self._tokens_seen
        return model

    def measure(self, model: LanguageModel) -> tuple[float, float, float]:
        """Advance to ``model`` and return its curve-point metrics.

        Returns ``(percentage_learned, ctf_ratio, spearman)`` — exactly
        the values the full-reprojection path computes for the same
        snapshot.
        """
        self.advance(model)
        common = self._common_terms
        percentage = len(common) / self._actual_size if self._actual_size else 0.0
        ratio = (
            self._covered_ctf / self._actual_total_ctf
            if self._actual_total_ctf
            else 0.0
        )
        n = len(common)
        if n == 0:
            spearman = 0.0
        elif n == 1:
            spearman = 1.0
        else:
            learned_values = self._projected_df[
                np.asarray(self._common_ids, dtype=np.int64)
            ].astype(np.float64)
            actual_values = np.asarray(self._common_actual_df, dtype=np.float64)
            spearman = spearman_from_ranks(
                rank_values(learned_values, common),
                rank_values(actual_values, common),
            )
        return percentage, ratio, spearman
