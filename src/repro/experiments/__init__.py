"""Experiment harness: one entry point per table and figure.

This package is the bridge between the library and the paper's
evaluation section.  :mod:`repro.experiments.testbed` builds (and
caches, per process) the synthetic corpora, servers, and actual
language models; :mod:`repro.experiments.runner` executes sampling runs
and turns their snapshots into metric curves; :mod:`~.figures` and
:mod:`~.tables` compute each figure's series and each table's rows; and
:mod:`~.reporting` renders them as aligned ASCII for the benchmark
harness and the examples.

Scaling: experiments honour the ``REPRO_SCALE`` environment variable
(default 1.0) so the whole evaluation can be shrunk for smoke tests or
grown toward the paper's corpus sizes.

Performance: snapshot scoring is incremental
(:mod:`repro.experiments.incremental`) and multi-run experiments fan
independent trials across processes (:mod:`repro.experiments.parallel`;
pass ``workers=N`` to any figure/table function or ``--workers`` to
``repro experiments``).  Both optimizations are bit-identical to the
straightforward serial/full paths — see DESIGN.md's "Performance
architecture".

Beyond the paper's own evaluation, :func:`accuracy_vs_budget_curve`
(from :mod:`repro.classify.bench`) measures topic-classification
accuracy against probe budget with the same synthetic-testbed,
seed-averaged methodology as the ctf-ratio curves, and renders through
the same :func:`format_series` path.
"""

from repro.classify.bench import accuracy_vs_budget_curve
from repro.experiments.figures import (
    figure1_and_2_curves,
    figure3_strategy_curves,
    figure4_rdiff_series,
)
from repro.experiments.incremental import IncrementalCurveMeasurer
from repro.experiments.parallel import TrialResult, TrialSpec, run_trial, run_trials
from repro.experiments.runner import (
    CurvePoint,
    LearningCurve,
    average_curves,
    measure_run,
    measure_run_full,
    rdiff_series,
    run_sampling,
)
from repro.experiments.tables import (
    table1_corpora,
    table2_docs_per_query,
    table3_query_counts,
    table4_summary,
)
from repro.experiments.testbed import Testbed, default_scale
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "CurvePoint",
    "IncrementalCurveMeasurer",
    "LearningCurve",
    "Testbed",
    "TrialResult",
    "TrialSpec",
    "accuracy_vs_budget_curve",
    "average_curves",
    "default_scale",
    "figure1_and_2_curves",
    "figure3_strategy_curves",
    "figure4_rdiff_series",
    "format_series",
    "format_table",
    "measure_run",
    "measure_run_full",
    "plot_series",
    "rdiff_series",
    "run_sampling",
    "run_trial",
    "run_trials",
    "table1_corpora",
    "table2_docs_per_query",
    "table3_query_counts",
    "table4_summary",
]
