"""Figure computations (Figures 1-4 of the paper).

Each function returns plain data (labelled curves or series) that the
benchmark harness renders with :mod:`repro.experiments.reporting`.
Figures 1a, 1b and 2 come from the same baseline runs; Figure 3 varies
the query-selection strategy on the WSJ-like corpus; Figure 4 plots the
rdiff convergence series for all three corpora.

All figures accept ``workers``: their per-seed trials are independent,
so they execute through :func:`repro.experiments.parallel.run_trials`,
which fans out over processes when ``workers > 1`` and is guaranteed to
return results bit-identical to serial execution (same derived seeds,
same code path per trial).
"""

from __future__ import annotations

from repro.experiments.parallel import TrialSpec, run_trials
from repro.experiments.runner import LearningCurve, average_curves
from repro.experiments.testbed import Testbed
from repro.utils.rand import derive_seed

#: The corpora of Figures 1, 2, and 4, in presentation order.
FIGURE1_PROFILES = ("cacm", "wsj88", "trec123")

#: Figure 3's strategies, in presentation order.
FIGURE3_STRATEGIES = ("random_olm", "random_llm", "avg_tf_llm", "df_llm", "ctf_llm")


def figure1_and_2_curves(
    testbed: Testbed,
    seeds: tuple[int, ...] = (0, 1, 2),
    docs_per_query: int = 4,
    workers: int = 1,
) -> dict[str, LearningCurve]:
    """Baseline learning curves per corpus (Figures 1a, 1b, and 2).

    Random-from-learned selection, N = ``docs_per_query``, runs ending
    at the paper's per-corpus document budgets, averaged over seeds.
    """
    specs = [
        TrialSpec(
            profile=name,
            strategy="random_llm",
            seed=derive_seed(seed, "fig1", name),
            docs_per_query=docs_per_query,
        )
        for name in FIGURE1_PROFILES
        for seed in seeds
    ]
    results = run_trials(specs, testbed, workers=workers)
    curves: dict[str, LearningCurve] = {}
    for i, name in enumerate(FIGURE1_PROFILES):
        per_seed = [r.curve for r in results[i * len(seeds) : (i + 1) * len(seeds)]]
        curves[name] = average_curves(per_seed)
    return curves


def figure3_strategy_curves(
    testbed: Testbed,
    profile: str = "wsj88",
    seeds: tuple[int, ...] = (0, 1, 2),
    docs_per_query: int = 4,
    workers: int = 1,
) -> dict[str, tuple[LearningCurve, float]]:
    """Query-selection strategies on one corpus (Figures 3a and 3b).

    Returns strategy name → (curve, mean queries to finish the run) —
    the query counts feed Table 3.  The "other language model" is the
    actual TREC-123 model, exactly the paper's (intentionally biased)
    choice.
    """
    specs = [
        TrialSpec(
            profile=profile,
            strategy=label,
            seed=derive_seed(seed, "fig3", profile, label),
            docs_per_query=docs_per_query,
        )
        for label in FIGURE3_STRATEGIES
        for seed in seeds
    ]
    results = run_trials(specs, testbed, workers=workers)
    out: dict[str, tuple[LearningCurve, float]] = {}
    for i, label in enumerate(FIGURE3_STRATEGIES):
        chunk = results[i * len(seeds) : (i + 1) * len(seeds)]
        out[label] = (
            average_curves([r.curve for r in chunk]),
            sum(r.queries_run for r in chunk) / len(chunk),
        )
    return out


def figure4_rdiff_series(
    testbed: Testbed,
    seeds: tuple[int, ...] = (0, 1, 2),
    docs_per_query: int = 4,
    workers: int = 1,
) -> dict[str, list[tuple[int, float]]]:
    """rdiff between consecutive 50-document snapshots, per corpus."""
    specs = [
        TrialSpec(
            profile=name,
            strategy="random_llm",
            seed=derive_seed(seed, "fig4", name),
            docs_per_query=docs_per_query,
            measure_curve=False,
            measure_rdiff=True,
        )
        for name in FIGURE1_PROFILES
        for seed in seeds
    ]
    results = run_trials(specs, testbed, workers=workers)
    all_series: dict[str, list[tuple[int, float]]] = {}
    for i, name in enumerate(FIGURE1_PROFILES):
        per_seed_series = [
            dict(r.rdiff) for r in results[i * len(seeds) : (i + 1) * len(seeds)]
        ]
        common = set(per_seed_series[0])
        for series in per_seed_series[1:]:
            common &= set(series)
        all_series[name] = [
            (documents, sum(series[documents] for series in per_seed_series) / len(per_seed_series))
            for documents in sorted(common)
        ]
    return all_series
