"""Figure computations (Figures 1-4 of the paper).

Each function returns plain data (labelled curves or series) that the
benchmark harness renders with :mod:`repro.experiments.reporting`.
Figures 1a, 1b and 2 come from the same baseline runs; Figure 3 varies
the query-selection strategy on the WSJ-like corpus; Figure 4 plots the
rdiff convergence series for all three corpora.
"""

from __future__ import annotations

from repro.experiments.runner import (
    LearningCurve,
    average_curves,
    measure_run,
    rdiff_series,
    run_sampling,
)
from repro.experiments.testbed import Testbed
from repro.sampling.selection import FrequencyFromLearned, RandomFromLearned, RandomFromOther
from repro.utils.rand import derive_seed

#: The corpora of Figures 1, 2, and 4, in presentation order.
FIGURE1_PROFILES = ("cacm", "wsj88", "trec123")


def figure1_and_2_curves(
    testbed: Testbed, seeds: tuple[int, ...] = (0, 1, 2), docs_per_query: int = 4
) -> dict[str, LearningCurve]:
    """Baseline learning curves per corpus (Figures 1a, 1b, and 2).

    Random-from-learned selection, N = ``docs_per_query``, runs ending
    at the paper's per-corpus document budgets, averaged over seeds.
    """
    curves: dict[str, LearningCurve] = {}
    for name in FIGURE1_PROFILES:
        server = testbed.server(name)
        actual = testbed.actual_model(name)
        per_seed = []
        for seed in seeds:
            run = run_sampling(
                server,
                bootstrap=testbed.bootstrap(),
                strategy=RandomFromLearned(),
                max_documents=testbed.document_budget(name),
                docs_per_query=docs_per_query,
                seed=derive_seed(seed, "fig1", name),
            )
            per_seed.append(
                measure_run(
                    run,
                    actual,
                    server.index.analyzer,
                    database=name,
                    strategy="random_llm",
                    docs_per_query=docs_per_query,
                )
            )
        curves[name] = average_curves(per_seed)
    return curves


def figure3_strategy_curves(
    testbed: Testbed,
    profile: str = "wsj88",
    seeds: tuple[int, ...] = (0, 1, 2),
    docs_per_query: int = 4,
) -> dict[str, tuple[LearningCurve, float]]:
    """Query-selection strategies on one corpus (Figures 3a and 3b).

    Returns strategy name → (curve, mean queries to finish the run) —
    the query counts feed Table 3.  The "other language model" is the
    actual TREC-123 model, exactly the paper's (intentionally biased)
    choice.
    """
    server = testbed.server(profile)
    actual = testbed.actual_model(profile)
    other = testbed.actual_model("trec123")
    strategies = {
        "random_olm": lambda: RandomFromOther(other),
        "random_llm": lambda: RandomFromLearned(),
        "avg_tf_llm": lambda: FrequencyFromLearned("avg_tf"),
        "df_llm": lambda: FrequencyFromLearned("df"),
        "ctf_llm": lambda: FrequencyFromLearned("ctf"),
    }
    results: dict[str, tuple[LearningCurve, float]] = {}
    for label, make_strategy in strategies.items():
        per_seed = []
        query_counts = []
        for seed in seeds:
            run = run_sampling(
                server,
                bootstrap=testbed.bootstrap(),
                strategy=make_strategy(),
                max_documents=testbed.document_budget(profile),
                docs_per_query=docs_per_query,
                seed=derive_seed(seed, "fig3", profile, label),
            )
            query_counts.append(run.queries_run)
            per_seed.append(
                measure_run(
                    run,
                    actual,
                    server.index.analyzer,
                    database=profile,
                    strategy=label,
                    docs_per_query=docs_per_query,
                )
            )
        results[label] = (
            average_curves(per_seed),
            sum(query_counts) / len(query_counts),
        )
    return results


def figure4_rdiff_series(
    testbed: Testbed, seeds: tuple[int, ...] = (0, 1, 2), docs_per_query: int = 4
) -> dict[str, list[tuple[int, float]]]:
    """rdiff between consecutive 50-document snapshots, per corpus."""
    all_series: dict[str, list[tuple[int, float]]] = {}
    for name in FIGURE1_PROFILES:
        server = testbed.server(name)
        per_seed_series = []
        for seed in seeds:
            run = run_sampling(
                server,
                bootstrap=testbed.bootstrap(),
                strategy=RandomFromLearned(),
                max_documents=testbed.document_budget(name),
                docs_per_query=docs_per_query,
                seed=derive_seed(seed, "fig4", name),
            )
            per_seed_series.append(dict(rdiff_series(run)))
        common = set(per_seed_series[0])
        for series in per_seed_series[1:]:
            common &= set(series)
        all_series[name] = [
            (documents, sum(series[documents] for series in per_seed_series) / len(per_seed_series))
            for documents in sorted(common)
        ]
    return all_series
