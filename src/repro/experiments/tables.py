"""Table computations (Tables 1-4 of the paper)."""

from __future__ import annotations

from repro.experiments.figures import FIGURE1_PROFILES, figure3_strategy_curves
from repro.experiments.parallel import TrialSpec, run_trials
from repro.experiments.runner import run_sampling
from repro.experiments.testbed import Testbed
from repro.sampling.selection import RandomFromLearned
from repro.summarize.summary import DatabaseSummary, summarize
from repro.text.analyzer import Analyzer
from repro.utils.rand import derive_seed


def table1_corpora(testbed: Testbed) -> list[dict[str, object]]:
    """Table 1: corpus statistics (raw and as-indexed views).

    The paper's "unique terms" column counts raw (unstemmed,
    unstopped) vocabulary; we report both that and the indexed view.
    """
    rows = []
    for name in FIGURE1_PROFILES:
        server = testbed.server(name)
        raw = server.index.corpus.stats(Analyzer.raw())
        rows.append(
            {
                "name": name,
                "size_mb": round(raw.size_bytes / 1e6, 1),
                "documents": raw.num_documents,
                "unique_terms": raw.unique_terms,
                "total_terms": raw.total_terms,
                "indexed_unique_terms": server.index.vocabulary_size,
                "indexed_total_terms": server.index.total_terms,
                "variety": testbed.profile(name).variety,
            }
        )
    return rows


def table2_docs_per_query(
    testbed: Testbed,
    docs_per_query_values: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    target_ctf_ratio: float = 0.8,
    seeds: tuple[int, ...] = (0, 1, 2),
    workers: int = 1,
) -> list[dict[str, object]]:
    """Table 2: effect of N (docs examined per query).

    For each corpus and each N: the documents needed to reach the
    target ctf ratio, and the Spearman coefficient there.  Values are
    snapshot-resolution (multiples of 50), like the paper's.
    """
    specs = [
        TrialSpec(
            profile=name,
            strategy="random_llm",
            seed=derive_seed(seed, "table2", name, docs_per_query),
            docs_per_query=docs_per_query,
        )
        for docs_per_query in docs_per_query_values
        for name in FIGURE1_PROFILES
        for seed in seeds
    ]
    results = iter(run_trials(specs, testbed, workers=workers))
    rows = []
    for docs_per_query in docs_per_query_values:
        row: dict[str, object] = {"docs_per_query": docs_per_query}
        for name in FIGURE1_PROFILES:
            docs_needed: list[int | None] = []
            spearman_there: list[float] = []
            for _seed in seeds:
                curve = next(results).curve
                reached = curve.documents_to_reach_ctf(target_ctf_ratio)
                docs_needed.append(reached)
                if reached is not None:
                    spearman_there.append(curve.value_at(reached, "spearman"))
            reached_values = [d for d in docs_needed if d is not None]
            if reached_values:
                row[f"{name}_docs"] = round(sum(reached_values) / len(reached_values))
                row[f"{name}_srcc"] = round(
                    sum(spearman_there) / len(spearman_there), 2
                )
            else:
                row[f"{name}_docs"] = None
                row[f"{name}_srcc"] = None
        rows.append(row)
    return rows


def table3_query_counts(
    testbed: Testbed,
    profile: str = "wsj88",
    seeds: tuple[int, ...] = (0, 1, 2),
    workers: int = 1,
) -> dict[str, float]:
    """Table 3: queries required to retrieve the document budget.

    Shares its runs' structure with Figure 3 (same strategies, same
    corpus); returns strategy → mean query count.
    """
    results = figure3_strategy_curves(
        testbed, profile=profile, seeds=seeds, workers=workers
    )
    return {label: queries for label, (_, queries) in results.items()}


def table4_summary(
    testbed: Testbed,
    k: int = 50,
    docs_per_query: int = 25,
    max_documents: int = 300,
    seed: int = 0,
) -> dict[str, DatabaseSummary]:
    """Table 4: top-k terms of the sampled Microsoft-support database.

    The paper's earliest sampling experiment examined 25 documents per
    query; we keep that setting.  Returns summaries under all three
    frequency rankings (the paper found avg-tf the most informative).
    """
    server = testbed.server("mssupport")
    run = run_sampling(
        server,
        bootstrap=testbed.bootstrap(),
        strategy=RandomFromLearned(),
        max_documents=min(max_documents, testbed.document_budget("mssupport")),
        docs_per_query=docs_per_query,
        seed=derive_seed(seed, "table4"),
    )
    # min_df scales with the sample so hapax-like noise cannot crowd
    # the avg-tf ranking (a term seen twice in one document has a
    # higher avg-tf than a product term seen 1.5x in every document).
    min_df = max(2, run.documents_examined // 60)
    return {
        rank_by: summarize(run.model, k=k, rank_by=rank_by, min_df=min_df)
        for rank_by in ("df", "ctf", "avg_tf")
    }
