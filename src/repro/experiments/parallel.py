"""Parallel execution of independent sampling trials.

Every multi-run experiment in the paper's evaluation — Figures 1-4,
Tables 2-3 — is an average over independent (database, strategy, seed)
trials.  Each trial is CPU-bound (sampling, projection, metric curves)
and shares nothing with its siblings beyond the read-only testbed, so
the natural speedup is process-level fan-out.

:class:`TrialSpec` names one trial declaratively; :func:`run_trials`
executes a list of specs either in-process (``workers <= 1``) or across
a :class:`~concurrent.futures.ProcessPoolExecutor`.  Both paths call
the same :func:`run_trial` on a testbed with the same ``(seed, scale)``,
and every random decision in a trial is derived from ``spec.seed``
alone, so results are **bit-identical regardless of worker count** —
the equivalence ``tests/test_parallel_runner.py`` pins down.  Result
order always matches spec order.

Worker processes obtain their testbed one of two ways:

* under the POSIX default ``fork`` start method the parent publishes
  its testbed in a module global just before spawning, so children
  inherit already-built corpora and indexes copy-on-write — no per
  worker rebuild;
* under ``spawn`` (or if the global is absent) the initializer rebuilds
  ``Testbed(seed, scale)`` from scratch, which is deterministic and
  therefore merely slower, never different.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import (
    LearningCurve,
    measure_run,
    rdiff_series,
    run_sampling,
)
from repro.experiments.testbed import Testbed
from repro.sampling.selection import (
    FrequencyFromLearned,
    QueryTermSelector,
    RandomFromLearned,
    RandomFromOther,
)

#: Strategy labels accepted by :class:`TrialSpec` (the figure-3 names):
#: ``random_llm`` / ``df_llm`` / ``ctf_llm`` / ``avg_tf_llm`` select
#: query terms from the learned model; ``random_olm`` selects from the
#: reference ("other") TREC-123 model.
STRATEGY_LABELS = ("random_llm", "random_olm", "df_llm", "ctf_llm", "avg_tf_llm")


@dataclass(frozen=True)
class TrialSpec:
    """One sampling trial, fully determined by its fields.

    ``seed`` is the final per-trial seed (callers derive it with
    :func:`repro.utils.rand.derive_seed` exactly as the serial loops
    always have).  ``max_documents=None`` resolves to the testbed's
    per-corpus document budget inside the worker, so building specs
    never forces corpus construction in the parent process.
    """

    profile: str
    strategy: str
    seed: int
    docs_per_query: int = 4
    max_documents: int | None = None
    #: Score snapshots into a :class:`LearningCurve` (Figures 1-3, Tables 2-3).
    measure_curve: bool = True
    #: Compute the consecutive-snapshot rdiff series (Figure 4).
    measure_rdiff: bool = False


@dataclass(frozen=True)
class TrialResult:
    """What one trial produced (all fields picklable)."""

    spec: TrialSpec
    queries_run: int
    documents_examined: int
    curve: LearningCurve | None
    rdiff: tuple[tuple[int, float], ...]


def make_strategy(testbed: Testbed, label: str) -> QueryTermSelector:
    """Instantiate the query-selection strategy named ``label``."""
    if label == "random_llm":
        return RandomFromLearned()
    if label == "random_olm":
        return RandomFromOther(testbed.actual_model("trec123"))
    if label.endswith("_llm"):
        metric = label[: -len("_llm")]
        if metric in ("df", "ctf", "avg_tf"):
            return FrequencyFromLearned(metric)
    raise ValueError(f"unknown strategy {label!r}; choose from {STRATEGY_LABELS}")


def run_trial(testbed: Testbed, spec: TrialSpec) -> TrialResult:
    """Execute one trial. The single code path shared by serial and
    parallel execution — the bit-identity guarantee hangs on that."""
    server = testbed.server(spec.profile)
    max_documents = (
        spec.max_documents
        if spec.max_documents is not None
        else testbed.document_budget(spec.profile)
    )
    run = run_sampling(
        server,
        bootstrap=testbed.bootstrap(),
        strategy=make_strategy(testbed, spec.strategy),
        max_documents=max_documents,
        docs_per_query=spec.docs_per_query,
        seed=spec.seed,
    )
    curve = None
    if spec.measure_curve:
        curve = measure_run(
            run,
            testbed.actual_model(spec.profile),
            server.index.analyzer,
            database=spec.profile,
            strategy=spec.strategy,
            docs_per_query=spec.docs_per_query,
        )
    rdiff = tuple(rdiff_series(run)) if spec.measure_rdiff else ()
    return TrialResult(
        spec=spec,
        queries_run=run.queries_run,
        documents_examined=run.documents_examined,
        curve=curve,
        rdiff=rdiff,
    )


# Published for worker processes.  Under fork this carries the parent's
# testbed (with its lazily built corpora) into children copy-on-write;
# under spawn it starts as None and the initializer rebuilds.
_WORKER_TESTBED: Testbed | None = None


def _initialize_worker(seed: int, scale: float) -> None:
    global _WORKER_TESTBED
    inherited = _WORKER_TESTBED
    if inherited is None or inherited.seed != seed or inherited.scale != scale:
        _WORKER_TESTBED = Testbed(seed=seed, scale=scale)


def _run_trial_in_worker(spec: TrialSpec) -> TrialResult:
    assert _WORKER_TESTBED is not None, "worker initializer did not run"
    return run_trial(_WORKER_TESTBED, spec)


def default_workers() -> int:
    """A sensible worker count: the machine's CPUs (minimum 1)."""
    return max(1, os.cpu_count() or 1)


def run_trials(
    specs: Sequence[TrialSpec],
    testbed: Testbed,
    workers: int = 1,
) -> list[TrialResult]:
    """Run ``specs`` and return their results in the same order.

    ``workers <= 1`` runs everything in-process on ``testbed``; higher
    counts fan trials out over a process pool whose workers use a
    testbed with the same ``(seed, scale)``.  Either way the results
    are identical, so callers choose purely on resources.
    """
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        return [run_trial(testbed, spec) for spec in specs]
    global _WORKER_TESTBED
    previous = _WORKER_TESTBED
    _WORKER_TESTBED = testbed
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(specs)),
            initializer=_initialize_worker,
            initargs=(testbed.seed, testbed.scale),
        ) as pool:
            return list(pool.map(_run_trial_in_worker, specs))
    finally:
        _WORKER_TESTBED = previous
