"""ASCII rendering of experiment results.

Shared by the benchmark harness (which prints each regenerated table
and figure) and the examples.  Output is deliberately plain: aligned
columns, no external dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]], title: str | None = None
) -> str:
    """Render dict rows as an aligned ASCII table.

    Columns are the union of keys, in first-appearance order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[int, float]]],
    title: str | None = None,
    x_label: str = "documents",
    y_format: str = "{:.4f}",
) -> str:
    """Render labelled (x, y) series as one aligned table, x as rows.

    Mirrors how the paper's figures would be read off: one row per
    document-count tick, one column per corpus/strategy.
    """
    labels = list(series)
    ticks = sorted({x for points in series.values() for x, _ in points})
    by_label = {label: dict(points) for label, points in series.items()}
    rows = []
    for tick in ticks:
        row: dict[str, object] = {x_label: tick}
        for label in labels:
            value = by_label[label].get(tick)
            row[label] = None if value is None else y_format.format(value)
        rows.append(row)
    return format_table(rows, title=title)


def curve_series(
    curves: Mapping[str, object], metric: str
) -> dict[str, list[tuple[int, float]]]:
    """Extract (documents, metric) series from labelled LearningCurves."""
    extracted: dict[str, list[tuple[int, float]]] = {}
    for label, curve in curves.items():
        extracted[label] = [
            (point.documents, getattr(point, metric)) for point in curve.points
        ]
    return extracted
