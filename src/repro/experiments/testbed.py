"""Build and cache the experimental testbed.

A :class:`Testbed` owns the three Table 1 corpora (and on demand the
Microsoft-support corpus), their :class:`~repro.index.DatabaseServer`
instances, and their actual language models.  Construction is lazy and
cached per instance: building the TREC-like corpus takes tens of
seconds at scale 1.0, and every figure shares it.

The paper draws every run's *initial* query term at random from the
actual TREC-123 language model (Section 4.4); :meth:`Testbed.bootstrap`
returns the corresponding selector.
"""

from __future__ import annotations

import os

from repro.index.server import DatabaseServer
from repro.lm.model import LanguageModel
from repro.sampling.selection import RandomFromOther
from repro.synth.profiles import PROFILES_BY_NAME, CorpusProfile

#: The paper ends CACM/WSJ88 runs at 300 documents, TREC-123 at 500.
DOCUMENT_BUDGETS: dict[str, int] = {
    "cacm": 300,
    "wsj88": 300,
    "trec123": 500,
    "mssupport": 300,
}


def default_scale() -> float:
    """The corpus scale factor, from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


class Testbed:
    """Lazily built corpora, servers, and actual language models."""

    def __init__(self, seed: int = 0, scale: float | None = None) -> None:
        self.seed = seed
        self.scale = default_scale() if scale is None else scale
        self._servers: dict[str, DatabaseServer] = {}
        self._actual: dict[str, LanguageModel] = {}

    def profile(self, name: str) -> CorpusProfile:
        """The named profile (cacm / wsj88 / trec123 / mssupport)."""
        try:
            factory = PROFILES_BY_NAME[name]
        except KeyError:
            raise KeyError(
                f"unknown profile {name!r}; choose from {sorted(PROFILES_BY_NAME)}"
            ) from None
        return factory()

    def server(self, name: str) -> DatabaseServer:
        """The (cached) database server for profile ``name``.

        The concrete type is deliberate: the testbed is the one place
        that owns ground truth, satisfying every :mod:`repro.backend`
        tier.  Experiment code passes the server onward typed as the
        narrowest protocol it needs (``SearchableDatabase`` for
        sampling, ``EvaluableDatabase`` for scoring).
        """
        if name not in self._servers:
            corpus = self.profile(name).build(seed=self.seed, scale=self.scale)
            self._servers[name] = DatabaseServer(corpus)
        return self._servers[name]

    def actual_model(self, name: str) -> LanguageModel:
        """The (cached) actual language model for profile ``name``."""
        if name not in self._actual:
            self._actual[name] = self.server(name).actual_language_model()
        return self._actual[name]

    def bootstrap(self) -> RandomFromOther:
        """Initial-term selector: random term from the TREC-123 model."""
        return RandomFromOther(self.actual_model("trec123"))

    def document_budget(self, name: str) -> int:
        """The paper's documents-examined budget for profile ``name``."""
        budget = DOCUMENT_BUDGETS[name]
        if self.scale >= 1.0:
            return budget
        # At reduced scale, cap the budget so runs cannot exhaust tiny
        # corpora (sampling more than ~40% of a database is no longer
        # "sampling").
        corpus_size = self.server(name).num_documents
        return max(50, min(budget, int(corpus_size * 0.4)))
