"""Sampling-run execution and metric-curve extraction.

The paper's figures all share one pipeline: run the sampler against a
known database, snapshot the learned model every 50 documents, project
each snapshot into the database's term space (stemming, stopword
removal — Section 4.1), and compute vocabulary / frequency metrics
against the actual model.  :func:`run_sampling` executes the run,
:func:`measure_run` produces the curve, and :func:`average_curves`
averages aligned curves over random seeds.

:func:`measure_run` scores snapshots incrementally (see
:mod:`repro.experiments.incremental`), carrying the projected model and
metric numerators forward between snapshots instead of re-projecting
the whole vocabulary each time.  :func:`measure_run_full` keeps the
straightforward full-reprojection path as the equivalence reference and
performance baseline: both produce bit-identical curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.backend import SearchableDatabase
from repro.experiments.incremental import IncrementalCurveMeasurer
from repro.lm.compare import ctf_ratio, percentage_learned, rdiff, spearman_rank_correlation
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.result import SamplingRun
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class CurvePoint:
    """Metrics of one learned-model snapshot vs. the actual model."""

    documents: int
    queries: int
    percentage_learned: float
    ctf_ratio: float
    spearman: float


@dataclass(frozen=True)
class LearningCurve:
    """A labelled series of :class:`CurvePoint`."""

    database: str
    strategy: str
    docs_per_query: int
    points: tuple[CurvePoint, ...]

    def documents_to_reach_ctf(self, target: float) -> int | None:
        """First snapshot document count with ctf ratio ≥ ``target``.

        Returns ``None`` if the curve never reaches the target — the
        quantity tabulated in the paper's Table 2.
        """
        for point in self.points:
            if point.ctf_ratio >= target:
                return point.documents
        return None

    def value_at(self, documents: int, metric: str) -> float:
        """Metric value at the snapshot taken at ``documents``."""
        for point in self.points:
            if point.documents == documents:
                return getattr(point, metric)
        raise KeyError(f"no curve point at {documents} documents")


def run_sampling(
    server: SearchableDatabase,
    bootstrap: QueryTermSelector,
    strategy: QueryTermSelector | None = None,
    max_documents: int = 300,
    docs_per_query: int = 4,
    seed: int = 0,
    snapshot_interval: int = 50,
    unique_documents: bool = True,
    recorder: Recorder = NULL_RECORDER,
) -> SamplingRun:
    """Run one paper-style sampling experiment."""
    sampler = QueryBasedSampler(
        server,
        bootstrap=bootstrap,
        strategy=strategy,
        stopping=MaxDocuments(max_documents),
        analyzer=Analyzer.raw(),
        config=SamplerConfig(
            docs_per_query=docs_per_query,
            snapshot_interval=snapshot_interval,
            unique_documents=unique_documents,
        ),
        seed=seed,
        recorder=recorder,
    )
    return sampler.run()


def measure_run(
    run: SamplingRun,
    actual: LanguageModel,
    server_analyzer: Analyzer,
    database: str,
    strategy: str,
    docs_per_query: int,
) -> LearningCurve:
    """Score each snapshot against the actual model (incrementally).

    Produces the same curve as :func:`measure_run_full` — the
    incremental engine's equivalence contract — in O(changed terms) per
    snapshot instead of O(vocabulary).
    """
    measurer = IncrementalCurveMeasurer(actual, server_analyzer)
    points = []
    for snapshot in run.snapshots:
        percentage, ratio, spearman = measurer.measure(snapshot.model)
        points.append(
            CurvePoint(
                documents=snapshot.documents_examined,
                queries=snapshot.queries_run,
                percentage_learned=percentage,
                ctf_ratio=ratio,
                spearman=spearman,
            )
        )
    return LearningCurve(
        database=database,
        strategy=strategy,
        docs_per_query=docs_per_query,
        points=tuple(points),
    )


def measure_run_full(
    run: SamplingRun,
    actual: LanguageModel,
    server_analyzer: Analyzer,
    database: str,
    strategy: str,
    docs_per_query: int,
) -> LearningCurve:
    """Full-reprojection reference scorer.

    Projects every snapshot from scratch — O(snapshots × vocabulary).
    Kept as the ground truth :func:`measure_run` is tested against and
    as the "before" side of the performance-regression benchmarks.
    """
    points = []
    for snapshot in run.snapshots:
        projected = snapshot.model.project(server_analyzer)
        points.append(
            CurvePoint(
                documents=snapshot.documents_examined,
                queries=snapshot.queries_run,
                percentage_learned=percentage_learned(projected, actual),
                ctf_ratio=ctf_ratio(projected, actual),
                spearman=spearman_rank_correlation(projected, actual, metric="df"),
            )
        )
    return LearningCurve(
        database=database,
        strategy=strategy,
        docs_per_query=docs_per_query,
        points=tuple(points),
    )


def rdiff_series(
    run: SamplingRun, metric: str = "df"
) -> list[tuple[int, float]]:
    """Figure 4's series: rdiff between consecutive snapshots.

    Each element is ``(documents_examined_at_second_snapshot, rdiff)``.
    """
    series = []
    for first, second in zip(run.snapshots, run.snapshots[1:]):
        series.append(
            (second.documents_examined, rdiff(first.model, second.model, metric=metric))
        )
    return series


def average_curves(curves: list[LearningCurve]) -> LearningCurve:
    """Average parallel curves (same database/strategy, different seeds).

    Only document counts present in *every* curve are kept, so partial
    final snapshots do not skew the average.
    """
    if not curves:
        raise ValueError("need at least one curve")
    if len(curves) == 1:
        return curves[0]
    # Index each curve's points by document count once — the lookup
    # below is then O(1) per (document, curve) instead of a linear scan.
    by_documents = [
        {point.documents: point for point in curve.points} for curve in curves
    ]
    common_docs = set(by_documents[0])
    for indexed in by_documents[1:]:
        common_docs &= set(indexed)
    points = []
    for documents in sorted(common_docs):
        at_docs = [indexed[documents] for indexed in by_documents]
        count = len(at_docs)
        points.append(
            CurvePoint(
                documents=documents,
                queries=round(sum(p.queries for p in at_docs) / count),
                percentage_learned=sum(p.percentage_learned for p in at_docs) / count,
                ctf_ratio=sum(p.ctf_ratio for p in at_docs) / count,
                spearman=sum(p.spearman for p in at_docs) / count,
            )
        )
    return replace(curves[0], points=tuple(points))
