"""Minimal ASCII line plots for figure benchmarks.

The paper's figures are learning curves; the numeric series tables
(:func:`repro.experiments.reporting.format_series`) are the precise
record, and :func:`plot_series` renders the same data as a quick visual
— one character per series, linear axes, no dependencies.

.. code-block:: text

    ctf ratio vs documents examined
    0.94 |                          ··c
         |              ···ccc······
         |      ···cc···        wwww
         | c·www
    0.54 |_w___________________________
          50                        300
    c=cacm  w=wsj88
"""

from __future__ import annotations

from typing import Mapping, Sequence


def plot_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Each series is drawn with the first letter of its label (collisions
    get digits).  Points are nearest-cell plotted; later series
    overwrite earlier ones where they collide.
    """
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for index, label in enumerate(series):
        marker = label[0] if label and label[0] not in used else str(index)
        used.add(marker)
        markers[label] = marker

    for label, values in series.items():
        marker = markers[label]
        for x, y in values:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    y_high_text = f"{y_high:.3g}"
    y_low_text = f"{y_low:.3g}"
    gutter = max(len(y_high_text), len(y_low_text))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_high_text.rjust(gutter)
        elif row_index == height - 1:
            prefix = y_low_text.rjust(gutter)
        else:
            prefix = " " * gutter
        body = "".join(row)
        if row_index == height - 1:
            body = "".join("_" if ch == " " else ch for ch in body)
        lines.append(f"{prefix} |{body}")
    x_low_text = f"{x_low:g}"
    x_high_text = f"{x_high:g}"
    axis = " " * (gutter + 2) + x_low_text
    padding = width - len(x_low_text) - len(x_high_text)
    axis += " " * max(1, padding) + x_high_text
    lines.append(axis)
    lines.append("  ".join(f"{markers[label]}={label}" for label in series))
    return "\n".join(lines)
