"""Stopping criteria (paper Section 6).

A criterion observes the sampler's public state after every query and
decides whether the learned model is good enough to stop.  The paper's
key observation is that a criterion can be built from *observable*
information only: the rdiff between successive snapshots of the learned
model falls as sampling proceeds, roughly independently of database
size, so "rdiff below a threshold over k consecutive 50-document spans"
is a practical stopping rule (:class:`RdiffConvergence`).

Budget criteria (:class:`MaxDocuments`, :class:`MaxQueries`) reproduce
the paper's fixed-size experimental runs, and :class:`AnyOf` /
:class:`AllOf` compose criteria.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol

from repro.lm.compare import rdiff

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sampling.result import SamplerState


class StoppingCriterion(Protocol):
    """Decides when a sampling run has converged or exhausted its budget."""

    def should_stop(self, state: "SamplerState") -> bool:
        """True if sampling should stop now."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """Human-readable description for run reports."""
        ...  # pragma: no cover - protocol


class MaxDocuments:
    """Stop after examining ``limit`` (unique) documents."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit

    def should_stop(self, state: "SamplerState") -> bool:
        """True once the document budget is reached."""
        return state.documents_examined >= self.limit

    def describe(self) -> str:
        """Human-readable criterion description."""
        return f"max_documents({self.limit})"


class MaxQueries:
    """Stop after running ``limit`` queries (failed queries included)."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit

    def should_stop(self, state: "SamplerState") -> bool:
        """True once the query budget is reached."""
        return state.queries_run >= self.limit

    def describe(self) -> str:
        """Human-readable criterion description."""
        return f"max_queries({self.limit})"


class RdiffConvergence:
    """Stop when consecutive snapshots stop moving (paper Section 6).

    Computes rdiff between each pair of consecutive language-model
    snapshots (taken every ``span`` documents by the sampler) and stops
    once the last ``consecutive`` values all fall below ``threshold``.
    The paper's example rule — "rdiff ≤ 0.005 over 2 consecutive
    50-document spans" — is the default.
    """

    def __init__(
        self,
        threshold: float = 0.005,
        consecutive: int = 2,
        metric: str = "df",
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if consecutive <= 0:
            raise ValueError(f"consecutive must be positive, got {consecutive}")
        self.threshold = threshold
        self.consecutive = consecutive
        self.metric = metric

    def should_stop(self, state: "SamplerState") -> bool:
        """True once the recent snapshot spans are all below threshold."""
        snapshots = state.snapshots
        if len(snapshots) < self.consecutive + 1:
            return False
        recent = snapshots[-(self.consecutive + 1) :]
        values = [
            rdiff(first.model, second.model, metric=self.metric)
            for first, second in zip(recent, recent[1:])
        ]
        return all(value <= self.threshold for value in values)

    def describe(self) -> str:
        """Human-readable criterion description."""
        return (
            f"rdiff_convergence(threshold={self.threshold}, "
            f"consecutive={self.consecutive}, metric={self.metric})"
        )


class AnyOf:
    """Stop when any member criterion fires."""

    def __init__(self, criteria: Iterable[StoppingCriterion]) -> None:
        self.criteria = list(criteria)
        if not self.criteria:
            raise ValueError("AnyOf needs at least one criterion")

    def should_stop(self, state: "SamplerState") -> bool:
        """True if any member criterion fires."""
        return any(criterion.should_stop(state) for criterion in self.criteria)

    def describe(self) -> str:
        """Human-readable criterion description."""
        return "any_of(" + ", ".join(c.describe() for c in self.criteria) + ")"


class AllOf:
    """Stop only when every member criterion fires."""

    def __init__(self, criteria: Iterable[StoppingCriterion]) -> None:
        self.criteria = list(criteria)
        if not self.criteria:
            raise ValueError("AllOf needs at least one criterion")

    def should_stop(self, state: "SamplerState") -> bool:
        """True only if every member criterion fires."""
        return all(criterion.should_stop(state) for criterion in self.criteria)

    def describe(self) -> str:
        """Human-readable criterion description."""
        return "all_of(" + ", ".join(c.describe() for c in self.criteria) + ")"
