"""Multi-database sampling coordination.

A selection service doesn't sample one database — it maintains learned
models for *all* of them under a global resource budget (queries cost
money and time; Section 3's footnote).  :class:`SamplingPool` owns one
resumable :class:`~repro.sampling.sampler.QueryBasedSampler` per
database and allocates a total document budget across them according to
a scheduling policy:

* ``"uniform"`` — every database gets an equal share, sampled to
  completion one after another (the paper's implicit setup);
* ``"round_robin"`` — databases advance in fixed-size increments in
  turn, so partial models exist for everyone early (useful when the
  service must start answering queries before sampling finishes);
* ``"convergence"`` — each increment goes to the database whose model
  is *least converged*, measured by the observable rdiff of its last
  snapshot span (Section 6's signal put to work): well-understood
  databases stop consuming budget, hard ones get more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.sampling.result import SamplingRun
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig, SearchableDatabase
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.utils.rand import derive_seed

_SCHEDULERS = ("uniform", "round_robin", "convergence")


@dataclass(frozen=True)
class PoolResult:
    """Everything the pool learned, keyed by database name."""

    runs: dict[str, SamplingRun]

    @property
    def models(self) -> dict[str, object]:
        """Database name → learned language model."""
        return {name: run.model for name, run in self.runs.items()}

    @property
    def total_documents(self) -> int:
        """Documents examined across all databases."""
        return sum(run.documents_examined for run in self.runs.values())

    @property
    def total_queries(self) -> int:
        """Queries issued across all databases."""
        return sum(run.queries_run for run in self.runs.values())


class SamplingPool:
    """Samples a set of databases under one document budget.

    Parameters
    ----------
    databases:
        Name → searchable database.
    bootstrap_factory:
        Called once per database to create its bootstrap selector
        (selectors are stateful, so they cannot be shared).
    scheduler:
        One of ``uniform`` / ``round_robin`` / ``convergence``.
    increment:
        Documents allocated per scheduling turn (round_robin and
        convergence).  Keep it a multiple of the snapshot interval so
        the convergence signal refreshes every turn.
    config, seed:
        Passed to each per-database sampler (seeds are derived per
        database, so runs are independent and reproducible).
    """

    def __init__(
        self,
        databases: Mapping[str, SearchableDatabase],
        bootstrap_factory: Callable[[str], QueryTermSelector],
        scheduler: str = "uniform",
        increment: int = 50,
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
    ) -> None:
        if not databases:
            raise ValueError("need at least one database")
        if scheduler not in _SCHEDULERS:
            raise ValueError(f"scheduler must be one of {_SCHEDULERS}, got {scheduler!r}")
        if increment <= 0:
            raise ValueError("increment must be positive")
        self.scheduler = scheduler
        self.increment = increment
        self.samplers: dict[str, QueryBasedSampler] = {
            name: QueryBasedSampler(
                database,
                bootstrap=bootstrap_factory(name),
                config=config,
                seed=derive_seed(seed, "pool", name),
                name=name,
            )
            for name, database in databases.items()
        }

    def run(self, total_documents: int) -> PoolResult:
        """Distribute ``total_documents`` across the databases."""
        if total_documents <= 0:
            raise ValueError("total_documents must be positive")
        if self.scheduler == "uniform":
            runs = self._run_uniform(total_documents)
        else:
            runs = self._run_incremental(total_documents)
        return PoolResult(runs=runs)

    def _run_uniform(self, total_documents: int) -> dict[str, SamplingRun]:
        share = max(1, total_documents // len(self.samplers))
        return {
            name: sampler.run(MaxDocuments(share))
            for name, sampler in self.samplers.items()
        }

    def _run_incremental(self, total_documents: int) -> dict[str, SamplingRun]:
        remaining = total_documents
        runs: dict[str, SamplingRun] = {}
        exhausted: set[str] = set()
        order = list(self.samplers)
        turn = 0
        while remaining > 0 and len(exhausted) < len(self.samplers):
            name = self._pick_next(order, turn, exhausted)
            sampler = self.samplers[name]
            before = sampler.documents_examined
            grant = min(self.increment, remaining)
            runs[name] = sampler.run(MaxDocuments(before + grant))
            gained = sampler.documents_examined - before
            remaining -= gained
            if gained < grant or runs[name].stop_reason == "vocabulary_exhausted":
                # The database cannot yield more documents.
                exhausted.add(name)
            turn += 1
        # Databases never scheduled still contribute their (empty) state
        # without consuming any budget.
        for name, sampler in self.samplers.items():
            if name not in runs:
                runs[name] = SamplingRun(
                    model=sampler.model,
                    snapshots=list(sampler.snapshots),
                    queries=[],
                    stop_reason="not_scheduled",
                    documents=[],
                )
        return runs

    def _pick_next(self, order: list[str], turn: int, exhausted: set[str]) -> str:
        available = [name for name in order if name not in exhausted]
        if self.scheduler == "round_robin":
            return available[turn % len(available)]
        # convergence: prefer databases with no signal yet (never
        # sampled / single snapshot), least-sampled first so nobody
        # starves; then the largest last rdiff.
        def priority(name: str) -> tuple[int, float, str]:
            last = self.samplers[name].last_rdiff()
            if last is None:
                return (0, float(self.samplers[name].documents_examined), name)
            return (1, -last, name)  # larger rdiff first

        return min(available, key=priority)
