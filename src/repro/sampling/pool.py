"""Multi-database sampling coordination.

A selection service doesn't sample one database — it maintains learned
models for *all* of them under a global resource budget (queries cost
money and time; Section 3's footnote).  :class:`SamplingPool` owns one
resumable :class:`~repro.sampling.sampler.QueryBasedSampler` per
database and allocates a total document budget across them according to
a scheduling policy:

* ``"uniform"`` — every database gets an equal share, sampled to
  completion one after another (the paper's implicit setup);
* ``"round_robin"`` — databases advance in fixed-size increments in
  turn, so partial models exist for everyone early (useful when the
  service must start answering queries before sampling finishes);
* ``"convergence"`` — each increment goes to the database whose model
  is *least converged*, measured by the observable rdiff of its last
  snapshot span (Section 6's signal put to work): well-understood
  databases stop consuming budget, hard ones get more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Protocol

from repro.backend import SearchableDatabase
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.result import SamplingRun
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.utils.rand import derive_seed


class PoolCheckpointSink(Protocol):
    """Receives pool run state at grant boundaries for persistence.

    Implemented by :class:`repro.store.PoolCheckpointer`.  The pool
    calls :meth:`resume` once at the start of :meth:`SamplingPool.run`
    (returning the saved scheduling cursor, or ``None`` for a fresh
    run), :meth:`maybe_save` after every completed grant, and
    :meth:`save` when the allocation finishes.
    """

    def resume(self, pool: "SamplingPool", total_documents: int) -> dict[str, Any] | None:
        """Restore sampler states; return the saved cursor, if any."""
        ...  # pragma: no cover - protocol

    def maybe_save(self, pool: "SamplingPool", cursor: dict[str, Any]) -> None:
        """Persist if the sink's cadence says it is time."""
        ...  # pragma: no cover - protocol

    def save(self, pool: "SamplingPool", cursor: dict[str, Any]) -> None:
        """Persist unconditionally."""
        ...  # pragma: no cover - protocol

_SCHEDULERS = ("uniform", "round_robin", "convergence")

#: Stop reasons after which a database can yield no further documents —
#: its remaining budget is reallocated to the other databases.
_TERMINAL_STOPS = ("vocabulary_exhausted", "database_unreachable")


@dataclass(frozen=True)
class PoolResult:
    """Everything the pool learned, keyed by database name."""

    runs: dict[str, SamplingRun]

    @property
    def models(self) -> dict[str, object]:
        """Database name → learned language model."""
        return {name: run.model for name, run in self.runs.items()}

    @property
    def total_documents(self) -> int:
        """Documents examined across all databases."""
        return sum(run.documents_examined for run in self.runs.values())

    @property
    def total_queries(self) -> int:
        """Queries issued across all databases."""
        return sum(run.queries_run for run in self.runs.values())


class SamplingPool:
    """Samples a set of databases under one document budget.

    Parameters
    ----------
    databases:
        Name → searchable database.
    bootstrap_factory:
        Called once per database to create its bootstrap selector
        (selectors are stateful, so they cannot be shared).
    scheduler:
        One of ``uniform`` / ``round_robin`` / ``convergence``.
    increment:
        Documents allocated per scheduling turn (round_robin and
        convergence).  Keep it a multiple of the snapshot interval so
        the convergence signal refreshes every turn.
    config, seed:
        Passed to each per-database sampler (seeds are derived per
        database, so runs are independent and reproducible).
    recorder:
        Observability sink (:mod:`repro.obs`), shared by every
        per-database sampler; each :meth:`run` opens a ``pool_run``
        span over the whole allocation.
    """

    def __init__(
        self,
        databases: Mapping[str, SearchableDatabase],
        bootstrap_factory: Callable[[str], QueryTermSelector],
        scheduler: str = "uniform",
        increment: int = 50,
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not databases:
            raise ValueError("need at least one database")
        if scheduler not in _SCHEDULERS:
            raise ValueError(f"scheduler must be one of {_SCHEDULERS}, got {scheduler!r}")
        if increment <= 0:
            raise ValueError("increment must be positive")
        self.scheduler = scheduler
        self.increment = increment
        self.recorder = recorder
        self.samplers: dict[str, QueryBasedSampler] = {
            name: QueryBasedSampler(
                database,
                bootstrap=bootstrap_factory(name),
                config=config,
                seed=derive_seed(seed, "pool", name),
                name=name,
                recorder=recorder,
            )
            for name, database in databases.items()
        }

    def run(
        self,
        total_documents: int,
        *,
        checkpoint: PoolCheckpointSink | None = None,
    ) -> PoolResult:
        """Distribute ``total_documents`` across the databases.

        With a ``checkpoint`` sink, the pool persists every sampler's
        resumable state plus its own scheduling cursor after each
        grant; re-running with the same construction and the same sink
        resumes from the last persisted grant boundary and produces
        models bit-identical to an uninterrupted run.
        """
        if total_documents <= 0:
            raise ValueError("total_documents must be positive")
        cursor: dict[str, Any] = {}
        if checkpoint is not None:
            cursor = checkpoint.resume(self, total_documents) or {}
        with self.recorder.span(
            "pool_run", scheduler=self.scheduler, total_documents=total_documents
        ) as pool_span:
            if self.scheduler == "uniform":
                runs = self._run_uniform(total_documents, checkpoint, cursor)
            else:
                runs = self._run_incremental(total_documents, checkpoint, cursor)
            result = PoolResult(runs=runs)
            pool_span.set(
                documents_examined=result.total_documents,
                queries_run=result.total_queries,
            )
        return result

    # -- checkpoint plumbing ------------------------------------------------

    def _cursor(
        self, total_documents: int, runs: dict[str, SamplingRun], **fields: Any
    ) -> dict[str, Any]:
        """The scheduling cursor: loop position + per-run stop reasons.

        Together with each sampler's own state this fully determines
        the rest of the allocation, so a resumed run replays the exact
        grant sequence an uninterrupted run would have made.
        """
        return {
            "total_documents": total_documents,
            "runs": {name: {"stop_reason": run.stop_reason} for name, run in runs.items()},
            **fields,
        }

    def _reconstruct_runs(self, cursor: dict[str, Any]) -> dict[str, SamplingRun]:
        """Rebuild the runs-so-far table from a saved cursor."""
        runs: dict[str, SamplingRun] = {}
        for name, meta in cursor.get("runs", {}).items():
            stop_reason = meta["stop_reason"]
            if stop_reason == "not_scheduled":
                runs[name] = self._idle_run(name)
            else:
                runs[name] = self.samplers[name].current_run(stop_reason)
        return runs

    def _record(
        self,
        checkpoint: PoolCheckpointSink | None,
        cursor: dict[str, Any],
        final: bool = False,
    ) -> None:
        if checkpoint is None:
            return
        if final:
            checkpoint.save(self, cursor)
        else:
            checkpoint.maybe_save(self, cursor)

    def _run_uniform(
        self,
        total_documents: int,
        checkpoint: PoolCheckpointSink | None,
        cursor: dict[str, Any],
    ) -> dict[str, SamplingRun]:
        # Exact shares: base + one extra for the first ``remainder``
        # databases, so the pool samples precisely ``total_documents`` —
        # never the remainder-truncated count (100 over 3 must be
        # 34+33+33, not 33×3) and never an overshoot when the budget is
        # smaller than the number of databases (5 over 10 is five
        # single-document shares, not ten).
        names = list(self.samplers)
        base, remainder = divmod(total_documents, len(names))
        stage = cursor.get("stage", "initial")
        position = int(cursor.get("position", 0))
        shortfall = int(cursor.get("shortfall", 0))
        dead = set(cursor.get("dead", []))
        round_alive: list[str] | None = cursor.get("round_alive")
        round_position = int(cursor.get("round_position", 0))
        round_shortfall = int(cursor.get("round_shortfall", 0))
        runs = self._reconstruct_runs(cursor)
        if stage == "initial":
            while position < len(names):
                name = names[position]
                share = base + (1 if position < remainder else 0)
                position += 1
                if share == 0:
                    runs[name] = self._idle_run(name)
                    continue
                shortfall += share - self._grow(runs, name, share)
                self._record(
                    checkpoint,
                    self._cursor(
                        total_documents,
                        runs,
                        stage="initial",
                        position=position,
                        shortfall=shortfall,
                        dead=sorted(dead),
                    ),
                )
        # Budget a dead (exhausted / unreachable) database could not
        # spend flows to the databases that can still yield documents.
        while True:
            if round_alive is None:
                if shortfall <= 0:
                    break
                dead.update(
                    n for n, run in runs.items() if run.stop_reason in _TERMINAL_STOPS
                )
                round_alive = [name for name in names if name not in dead]
                if not round_alive:
                    round_alive = None
                    break
                round_shortfall = shortfall
                round_position = 0
                shortfall = 0
            extra_base, extra_remainder = divmod(round_shortfall, len(round_alive))
            while round_position < len(round_alive):
                slot = round_position
                name = round_alive[slot]
                round_position += 1
                extra = extra_base + (1 if slot < extra_remainder else 0)
                if extra == 0:
                    continue
                gained = self._grow(runs, name, extra)
                shortfall += extra - gained
                if gained < extra:
                    dead.add(name)
                self._record(
                    checkpoint,
                    self._cursor(
                        total_documents,
                        runs,
                        stage="redistribute",
                        position=position,
                        shortfall=shortfall,
                        dead=sorted(dead),
                        round_alive=round_alive,
                        round_position=round_position,
                        round_shortfall=round_shortfall,
                    ),
                )
            round_alive = None
        self._record(
            checkpoint,
            self._cursor(
                total_documents,
                runs,
                stage="redistribute",
                position=position,
                shortfall=0,
                dead=sorted(dead),
            ),
            final=True,
        )
        return runs

    def _grow(self, runs: dict[str, SamplingRun], name: str, grant: int) -> int:
        """Advance one sampler by ``grant`` documents; return the gain."""
        sampler = self.samplers[name]
        before = sampler.documents_examined
        runs[name] = sampler.run(MaxDocuments(before + grant))
        return sampler.documents_examined - before

    def _idle_run(self, name: str) -> SamplingRun:
        """A database's current state, reported without spending budget."""
        sampler = self.samplers[name]
        return SamplingRun(
            model=sampler.model,
            snapshots=list(sampler.snapshots),
            queries=[],
            stop_reason="not_scheduled",
            documents=[],
        )

    def _run_incremental(
        self,
        total_documents: int,
        checkpoint: PoolCheckpointSink | None,
        cursor: dict[str, Any],
    ) -> dict[str, SamplingRun]:
        remaining = int(cursor.get("remaining", total_documents))
        runs = self._reconstruct_runs(cursor)
        exhausted = set(cursor.get("exhausted", []))
        order = list(self.samplers)
        turn = int(cursor.get("turn", 0))
        while remaining > 0 and len(exhausted) < len(self.samplers):
            name = self._pick_next(order, turn, exhausted)
            grant = min(self.increment, remaining)
            gained = self._grow(runs, name, grant)
            remaining -= gained
            if gained < grant or runs[name].stop_reason in _TERMINAL_STOPS:
                # The database cannot yield more documents (empty or
                # unreachable); its budget flows to the others.
                exhausted.add(name)
            turn += 1
            self._record(
                checkpoint,
                self._cursor(
                    total_documents,
                    runs,
                    remaining=remaining,
                    turn=turn,
                    exhausted=sorted(exhausted),
                ),
            )
        # Databases never scheduled still contribute their (empty) state
        # without consuming any budget.
        for name in self.samplers:
            if name not in runs:
                runs[name] = self._idle_run(name)
        self._record(
            checkpoint,
            self._cursor(
                total_documents,
                runs,
                remaining=remaining,
                turn=turn,
                exhausted=sorted(exhausted),
            ),
            final=True,
        )
        return runs

    def _pick_next(self, order: list[str], turn: int, exhausted: set[str]) -> str:
        available = [name for name in order if name not in exhausted]
        if self.scheduler == "round_robin":
            return available[turn % len(available)]
        # convergence: prefer databases with no signal yet (never
        # sampled / single snapshot), least-sampled first so nobody
        # starves; then the largest last rdiff.
        def priority(name: str) -> tuple[int, float, str]:
            last = self.samplers[name].last_rdiff()
            if last is None:
                return (0, float(self.samplers[name].documents_examined), name)
            return (1, -last, name)  # larger rdiff first

        return min(available, key=priority)
