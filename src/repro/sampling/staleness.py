"""Staleness detection: does a learned model still match its database?

Databases change after they are sampled (documents added, topics
drift), and a selection service must notice *without* re-sampling
everything — re-sampling is the expensive operation the service is
trying to ration.  The observable trick mirrors the paper's Section 6
reasoning: run a handful of fresh probe queries, build a small fresh
mini-sample, and compare its term ranking to the stored model with the
same machinery used for convergence (rdiff / Spearman over common
terms).  A database that hasn't changed yields a mini-sample that looks
like a continuation of the old sample; a drifted database yields a
visibly different ranking.

:func:`staleness_probe` produces the score; :class:`RefreshPolicy`
turns it into a decision and (optionally) performs the re-sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.backend import SearchableDatabase
from repro.lm.compare import rdiff, spearman_rank_correlation
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import QueryTermSelector
from repro.sampling.stopping import MaxDocuments
from repro.text.analyzer import Analyzer
from repro.utils.rand import derive_seed


@dataclass(frozen=True)
class StalenessReport:
    """The observable comparison between a stored model and a fresh probe."""

    rdiff_score: float
    spearman: float
    probe_documents: int

    def is_stale(self, rdiff_threshold: float = 0.30, spearman_floor: float = 0.35) -> bool:
        """Decision rule: low rank agreement, or extreme rank churn.

        Spearman is the primary signal: a same-distribution probe
        agrees clearly (≳0.5 in calibration runs) while a drifted
        database collapses toward 0.  rdiff between a large stored
        model and a small probe is inherently noisy (≈0.2 even when
        fresh), so its threshold only catches extreme churn.
        """
        return self.spearman < spearman_floor or self.rdiff_score > rdiff_threshold


def staleness_probe(
    database: SearchableDatabase,
    stored_model: LanguageModel,
    bootstrap: QueryTermSelector,
    probe_documents: int = 50,
    analyzer: Analyzer | None = None,
    seed: int = 0,
    recorder: Recorder = NULL_RECORDER,
) -> StalenessReport:
    """Draw a fresh mini-sample and compare it to ``stored_model``.

    The probe sampler seeds its query selection from the *stored* model
    (querying vocabulary the service believes the database has — the
    cheapest realistic probe), falling back to ``bootstrap``.
    """
    if probe_documents <= 0:
        raise ValueError("probe_documents must be positive")
    sampler = QueryBasedSampler(
        database,
        bootstrap=bootstrap,
        stopping=MaxDocuments(probe_documents),
        analyzer=analyzer or Analyzer.raw(),
        config=SamplerConfig(keep_documents=False),
        seed=derive_seed(seed, "staleness-probe"),
        recorder=recorder,
    )
    probe = sampler.run()
    return StalenessReport(
        rdiff_score=rdiff(stored_model, probe.model),
        spearman=spearman_rank_correlation(probe.model, stored_model),
        probe_documents=probe.documents_examined,
    )


class RefreshPolicy:
    """Probe-then-refresh management of one database's model.

    Parameters
    ----------
    rdiff_threshold, spearman_floor:
        Passed to :meth:`StalenessReport.is_stale`.
    refresh_documents:
        Sample size of a full refresh.
    """

    def __init__(
        self,
        rdiff_threshold: float = 0.30,
        spearman_floor: float = 0.35,
        refresh_documents: int = 300,
    ) -> None:
        self.rdiff_threshold = rdiff_threshold
        self.spearman_floor = spearman_floor
        self.refresh_documents = refresh_documents

    def maybe_refresh(
        self,
        database: SearchableDatabase,
        stored_model: LanguageModel,
        bootstrap: QueryTermSelector,
        seed: int = 0,
        analyzer: Analyzer | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> tuple[LanguageModel, StalenessReport, bool]:
        """Probe; re-sample only if stale.

        Returns ``(model, report, refreshed)`` where ``model`` is either
        the stored model (fresh enough) or a newly learned one.

        ``analyzer`` must be the pipeline ``stored_model`` was built
        with (``None`` = raw tokens, the paper's client default).  Both
        the probe mini-sample and any triggered refresh run through it:
        a stemmed stored model probed with raw tokens compares two
        different vocabularies (spurious staleness), and a refresh under
        a different analyzer would silently install a model whose term
        space no longer matches the one it replaced.
        """
        report = staleness_probe(
            database,
            stored_model,
            bootstrap,
            analyzer=analyzer,
            seed=seed,
            recorder=recorder,
        )
        if not report.is_stale(self.rdiff_threshold, self.spearman_floor):
            return stored_model, report, False
        sampler = QueryBasedSampler(
            database,
            bootstrap=bootstrap,
            stopping=MaxDocuments(self.refresh_documents),
            analyzer=analyzer,
            seed=derive_seed(seed, "refresh"),
            recorder=recorder,
        )
        return sampler.run().model, report, True

    def refresh_all(
        self,
        databases: Mapping[str, SearchableDatabase],
        stored_models: Mapping[str, LanguageModel],
        bootstrap_factory: Callable[[str], QueryTermSelector],
        seed: int = 0,
        analyzer: Analyzer | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> tuple[dict[str, LanguageModel], dict[str, StalenessReport], tuple[str, ...]]:
        """Probe every database; re-sample only the stale ones.

        The whole-federation form of :meth:`maybe_refresh`, used by the
        federated service's staleness sweep.  Per-database seeds are
        derived from ``seed`` and the database name, so adding a
        database never perturbs the others' probes.  ``analyzer`` is
        the stored models' shared text pipeline, threaded through every
        probe and refresh (see :meth:`maybe_refresh`).  Returns
        ``(models, reports, refreshed)`` where ``models`` maps every
        database to its (possibly refreshed) model and ``refreshed``
        names the databases that were actually re-sampled — empty means
        the stored set is still fresh and nothing needs reinstalling.
        """
        missing = set(databases) - set(stored_models)
        if missing:
            raise ValueError(f"missing stored models for databases: {sorted(missing)}")
        models: dict[str, LanguageModel] = {}
        reports: dict[str, StalenessReport] = {}
        refreshed: list[str] = []
        for name, database in databases.items():
            with recorder.span("staleness_check", database=name) as span:
                model, report, did_refresh = self.maybe_refresh(
                    database,
                    stored_models[name],
                    bootstrap_factory(name),
                    seed=derive_seed(seed, "staleness", name),
                    analyzer=analyzer,
                    recorder=recorder,
                )
                span.set(stale=did_refresh, spearman=report.spearman)
            models[name] = model
            reports[name] = report
            if did_refresh:
                refreshed.append(name)
        return models, reports, tuple(refreshed)
