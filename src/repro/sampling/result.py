"""Result and state types for sampling runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.document import Document
from repro.lm.model import LanguageModel


@dataclass(frozen=True)
class Snapshot:
    """A frozen copy of the learned model at a document-count boundary."""

    documents_examined: int
    queries_run: int
    model: LanguageModel


@dataclass(frozen=True)
class QueryRecord:
    """What one query contributed to the run."""

    term: str
    documents_returned: int
    new_documents: int
    #: Transport error class name when the query was abandoned by the
    #: retry layer (None for queries that executed normally).
    error: str | None = None

    @property
    def failed(self) -> bool:
        """A failed query returned no documents (paper Section 5.2)."""
        return self.documents_returned == 0

    @property
    def abandoned(self) -> bool:
        """True when the query died in transport rather than returning."""
        return self.error is not None


@dataclass
class SamplerState:
    """The sampler's observable state, visible to stopping criteria.

    Everything here is information a real sampling client possesses:
    its own learned model, its own counters, and its own snapshots.
    Nothing refers to database ground truth.
    """

    model: LanguageModel
    documents_examined: int = 0
    queries_run: int = 0
    failed_queries: int = 0
    snapshots: list[Snapshot] = field(default_factory=list)


@dataclass
class SamplingRun:
    """The complete outcome of one query-based sampling run.

    Attributes
    ----------
    model:
        The final learned language model (raw client-side terms).
    snapshots:
        Periodic model copies, ordered by documents examined; the
        learning curves of Figures 1-4 are computed from these.
    queries:
        Per-query records in execution order.
    stop_reason:
        Which condition ended the run (a criterion description,
        ``"vocabulary_exhausted"``, ``"query_budget_guard"``, or
        ``"database_unreachable"`` when the transport layer's circuit
        breaker gave up on the database).
    documents:
        The sampled documents themselves (when the sampler is
        configured to keep them — the default).  The paper's Sections
        7-8 build summarization and query-expansion capabilities
        directly on this sample.
    """

    model: LanguageModel
    snapshots: list[Snapshot]
    queries: list[QueryRecord]
    stop_reason: str
    documents: list[Document] = field(default_factory=list)

    @property
    def documents_examined(self) -> int:
        """Unique documents folded into the model."""
        return self.model.documents_seen

    @property
    def queries_run(self) -> int:
        """Total queries issued, including failed ones."""
        return len(self.queries)

    @property
    def failed_queries(self) -> int:
        """Queries that returned no documents."""
        return sum(1 for record in self.queries if record.failed)

    @property
    def abandoned_queries(self) -> int:
        """Queries the transport layer abandoned after exhausting retries."""
        return sum(1 for record in self.queries if record.abandoned)

    @property
    def query_terms(self) -> list[str]:
        """The query terms in execution order."""
        return [record.term for record in self.queries]

    def snapshot_at(self, documents: int) -> Snapshot:
        """The snapshot taken at exactly ``documents`` examined.

        Raises ``KeyError`` if the run never crossed that boundary.
        """
        for snapshot in self.snapshots:
            if snapshot.documents_examined == documents:
                return snapshot
        raise KeyError(f"no snapshot at {documents} documents")
