"""Query-based sampling — the paper's core contribution (Section 3).

The algorithm:

1. select an initial query term;
2. run a one-term query on the database;
3. retrieve the top N documents returned;
4. update the learned language model from the retrieved documents;
5. if the stopping criterion is not met, select a new query term and
   repeat from 2.

The pluggable pieces the paper varies experimentally live here:

* **query-term selection strategies** (Section 5.2):
  :class:`RandomFromLearned` (the baseline), frequency-based selectors
  (:class:`FrequencyFromLearned` over df / ctf / avg-tf), and
  :class:`RandomFromOther` (the "olm" hypothesis);
* **documents per query** N (Section 5.1) — a sampler config knob;
* **stopping criteria** (Section 6): document/query budgets and the
  rdiff-convergence criterion the paper proposes.

:class:`QueryBasedSampler` orchestrates a run against a
:class:`~repro.index.server.DatabaseServer` (or anything with the same
``run_query`` surface) and produces a :class:`SamplingRun` carrying the
learned model, periodic snapshots (for learning curves and rdiff), and
full cost accounting.

Remote databases fail; :mod:`repro.sampling.transport` makes the loop
survive that: a retrying :class:`ResilientDatabase` client (exponential
backoff, circuit breaker, transport metrics), the
:class:`ServerError` exception taxonomy every database surface may
raise, and a deterministic fault injector (:class:`UnreliableServer`)
for experimenting on degraded transports.
"""

from repro.sampling.pool import PoolResult, SamplingPool
from repro.sampling.result import QueryRecord, SamplingRun, Snapshot
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig, SearchableDatabase
from repro.sampling.staleness import RefreshPolicy, StalenessReport, staleness_probe
from repro.sampling.selection import (
    FrequencyFromLearned,
    ListBootstrap,
    QueryTermSelector,
    RandomFromLearned,
    RandomFromOther,
    is_eligible_query_term,
)
from repro.sampling.stopping import (
    AllOf,
    AnyOf,
    MaxDocuments,
    MaxQueries,
    RdiffConvergence,
    StoppingCriterion,
)
from repro.sampling.transport import (
    CircuitBreaker,
    CircuitOpenError,
    PermanentServerError,
    RateLimitedError,
    ResilientDatabase,
    RetryPolicy,
    ServerError,
    ServerTimeout,
    SimulatedClock,
    TransientServerError,
    TransportMetrics,
    UnreliableServer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CircuitBreaker",
    "CircuitOpenError",
    "FrequencyFromLearned",
    "ListBootstrap",
    "MaxDocuments",
    "MaxQueries",
    "PermanentServerError",
    "PoolResult",
    "QueryBasedSampler",
    "QueryRecord",
    "QueryTermSelector",
    "RandomFromLearned",
    "RandomFromOther",
    "RateLimitedError",
    "RdiffConvergence",
    "RefreshPolicy",
    "ResilientDatabase",
    "RetryPolicy",
    "SamplerConfig",
    "SamplingPool",
    "SamplingRun",
    "SearchableDatabase",
    "ServerError",
    "ServerTimeout",
    "SimulatedClock",
    "Snapshot",
    "StalenessReport",
    "StoppingCriterion",
    "TransientServerError",
    "TransportMetrics",
    "UnreliableServer",
    "is_eligible_query_term",
    "staleness_probe",
]
