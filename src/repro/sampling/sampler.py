"""The query-based sampler (paper Section 3).

:class:`QueryBasedSampler` drives the run-query / retrieve / update
loop against any object exposing the minimal database surface
(``run_query(query, max_docs) -> list[Document]``).  Configuration
captures every parameter the paper studies:

* ``docs_per_query`` — N, the documents examined per query (Section
  5.1; paper baseline 4);
* the term-selection ``strategy`` (Section 5.2; paper baseline random
  from the learned model);
* a ``bootstrap`` selector supplying the initial query term (and any
  term needed while the learned model is empty — the paper draws it at
  random from a reference language model);
* the ``stopping`` criterion (Section 6);
* ``unique_documents`` — whether a document retrieved twice counts
  once (the paper's accounting) or every time (ablation Ext-3).

The sampler is **resumable**: :meth:`QueryBasedSampler.run` continues
from wherever the previous call stopped, so a caller (e.g. the
multi-database :class:`~repro.sampling.pool.SamplingPool`) can grow a
model incrementally by calling ``run`` with successively larger
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.backend import SearchableDatabase
from repro.corpus.document import Document
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.result import QueryRecord, SamplerState, SamplingRun, Snapshot
from repro.sampling.selection import QueryTermSelector, RandomFromLearned
from repro.sampling.stopping import MaxDocuments, StoppingCriterion
from repro.sampling.transport import CircuitOpenError, ServerError
from repro.text.analyzer import Analyzer
from repro.utils.rand import ensure_rng

__all__ = ["QueryBasedSampler", "SamplerConfig", "SearchableDatabase"]


@dataclass(frozen=True)
class SamplerConfig:
    """Tunable parameters of a sampling run.

    Parameters
    ----------
    docs_per_query:
        N, the number of top documents examined per query.
    snapshot_interval:
        Take a model snapshot every this many documents (50 in the
        paper's convergence analysis).
    unique_documents:
        Skip documents already examined (paper accounting).
    max_total_queries:
        Hard safety budget: the run always ends after this many
        queries even if no stopping criterion fired (prevents runaway
        loops against tiny or hostile databases).
    keep_documents:
        Retain the sampled documents on the :class:`SamplingRun` (the
        paper's summarization and query-expansion capabilities consume
        them); disable to minimise memory on very large samples.
    """

    docs_per_query: int = 4
    snapshot_interval: int = 50
    unique_documents: bool = True
    max_total_queries: int = 5_000
    keep_documents: bool = True

    def __post_init__(self) -> None:
        if self.docs_per_query <= 0:
            raise ValueError("docs_per_query must be positive")
        if self.snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        if self.max_total_queries <= 0:
            raise ValueError("max_total_queries must be positive")


class QueryBasedSampler:
    """Learns a database's language model by sampling it with queries.

    Parameters
    ----------
    database:
        Anything satisfying :class:`SearchableDatabase`.
    strategy:
        Query-term selector for steady state (default: the paper's
        baseline, random from the learned model).
    bootstrap:
        Selector used for the first query and whenever ``strategy``
        cannot produce a term (e.g. the learned model is empty or
        exhausted).  Required because the learned model starts empty.
    stopping:
        Default stopping criterion for :meth:`run` (the paper's
        300-document budget if omitted).
    analyzer:
        The *client's* text pipeline applied to retrieved documents
        (default: raw case-folded tokens, as in the paper).
    config:
        See :class:`SamplerConfig`.
    seed:
        Seed for the strategy's random choices.
    recorder:
        Observability sink (:mod:`repro.obs`): one span per
        :meth:`run` call and per query.  The default no-op recorder
        keeps the sampling loop overhead-free.
    """

    def __init__(
        self,
        database: SearchableDatabase,
        bootstrap: QueryTermSelector,
        strategy: QueryTermSelector | None = None,
        stopping: StoppingCriterion | None = None,
        analyzer: Analyzer | None = None,
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
        name: str | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.database = database
        self.recorder = recorder
        self.bootstrap = bootstrap
        self.strategy = strategy or RandomFromLearned()
        self.stopping = stopping or MaxDocuments(300)
        self.analyzer = analyzer or Analyzer.raw()
        self.config = config
        self.seed = seed
        self.name = name or getattr(database, "name", "database")
        # Mutable run state, created on first run() so the sampler is
        # resumable across calls.
        self._rng = ensure_rng(seed)
        self._model = LanguageModel(name=f"{self.name}-learned")
        self._state = SamplerState(model=self._model)
        self._queries: list[QueryRecord] = []
        self._used_terms: set[str] = set()
        self._seen_doc_ids: set[str] = set()
        self._kept_documents: list[Document] = []
        self._next_snapshot = config.snapshot_interval
        self._exhausted = False
        # Unconsumed tail of a query truncated by a mid-query budget
        # stop; consumed first on resume so stepped runs match one-shot
        # runs exactly.
        self._pending: list[Document] = []
        self._pending_query_index: int = -1

    # -- observable progress ----------------------------------------------

    @property
    def documents_examined(self) -> int:
        """Unique documents folded into the model so far."""
        return self._state.documents_examined

    @property
    def queries_run(self) -> int:
        """Queries issued so far (failed queries included)."""
        return self._state.queries_run

    @property
    def model(self) -> LanguageModel:
        """The learned model (live — snapshot via ``model.copy()``)."""
        return self._model

    @property
    def snapshots(self) -> list[Snapshot]:
        """Snapshots taken so far."""
        return self._state.snapshots

    def last_rdiff(self, metric: str = "df") -> float | None:
        """rdiff over the most recent snapshot span (None before two).

        The observable convergence signal of paper Section 6, exposed
        for schedulers that prioritise un-converged databases.
        """
        from repro.lm.compare import rdiff

        snapshots = self._state.snapshots
        if len(snapshots) < 2:
            return None
        return rdiff(snapshots[-2].model, snapshots[-1].model, metric=metric)

    # -- the sampling loop ---------------------------------------------------

    def run(self, stopping: StoppingCriterion | None = None) -> SamplingRun:
        """Sample until ``stopping`` (or the default criterion) fires.

        Resumable: a second call continues from the current state, so
        ``run(MaxDocuments(100))`` followed by ``run(MaxDocuments(200))``
        is equivalent to a single 200-document run.
        """
        criterion = stopping or self.stopping
        with self.recorder.span("sample_run", database=self.name) as run_span:
            result = self._run(criterion)
            run_span.set(
                documents_examined=result.documents_examined,
                queries_run=result.queries_run,
                stop_reason=result.stop_reason,
            )
        return result

    def _run(self, criterion: StoppingCriterion) -> SamplingRun:
        state = self._state
        recorder = self.recorder
        stop_reason: str | None = None

        if criterion.should_stop(state):
            stop_reason = criterion.describe()
        elif self._exhausted:
            stop_reason = "vocabulary_exhausted"
        elif self._pending:
            # Finish the query a previous run truncated mid-results.  That
            # query is already counted in queries_run, so snapshots taken
            # while absorbing the tail must not add an in-flight +1.
            new_documents, budget_hit, rest = self._absorb(
                self._pending, criterion, query_counted=True
            )
            self._pending = rest
            if new_documents:
                record = self._queries[self._pending_query_index]
                self._queries[self._pending_query_index] = replace(
                    record, new_documents=record.new_documents + new_documents
                )
            if budget_hit:
                stop_reason = criterion.describe()

        while stop_reason is None:
            term = self._next_term()
            if term is None:
                self._exhausted = True
                stop_reason = "vocabulary_exhausted"
                break
            self._used_terms.add(term)
            error_name: str | None = None
            unreachable = False
            with recorder.span("query", database=self.name, term=term) as query_span:
                try:
                    documents = self.database.run_query(
                        term, max_docs=self.config.docs_per_query
                    )
                except ServerError as error:
                    # An abandoned query costs its term and counts as failed,
                    # but never crashes the run (transport contract).
                    documents = []
                    error_name = type(error).__name__
                    unreachable = isinstance(error, CircuitOpenError) or bool(
                        getattr(self.database, "unreachable", False)
                    )
                new_documents, budget_hit, rest = self._absorb(documents, criterion)
                if recorder.enabled:
                    query_span.set(
                        documents_returned=len(documents),
                        new_documents=new_documents,
                        bytes_returned=sum(d.size_bytes for d in documents),
                    )
                    if error_name is not None:
                        query_span.set(error=error_name)
            self._queries.append(
                QueryRecord(
                    term=term,
                    documents_returned=len(documents),
                    new_documents=new_documents,
                    error=error_name,
                )
            )
            state.queries_run += 1
            if not documents:
                state.failed_queries += 1
            if budget_hit:
                self._pending = rest
                self._pending_query_index = len(self._queries) - 1
                stop_reason = criterion.describe()
            elif unreachable:
                stop_reason = "database_unreachable"
            elif criterion.should_stop(state):
                stop_reason = criterion.describe()
            elif state.queries_run >= self.config.max_total_queries:
                stop_reason = "query_budget_guard"

        # Final snapshot so curves always include the endpoint.
        if (
            not state.snapshots
            or state.snapshots[-1].documents_examined != state.documents_examined
        ):
            self._take_snapshot(in_flight_query=False)
        return SamplingRun(
            model=self._model,
            snapshots=list(state.snapshots),
            queries=list(self._queries),
            stop_reason=stop_reason,
            documents=list(self._kept_documents),
        )

    def _absorb(
        self,
        documents: list[Document],
        criterion: StoppingCriterion,
        query_counted: bool = False,
    ) -> tuple[int, bool, list[Document]]:
        """Fold documents into the model until the criterion fires.

        Returns (new documents absorbed, whether the criterion fired
        mid-list, the unconsumed tail).  Stopping the moment the
        criterion is met keeps runs at exact document budgets; the tail
        is preserved so a resumed run loses nothing.  ``query_counted``
        marks the pending tail of a previous run, whose query is
        already in ``queries_run`` — snapshots then skip the in-flight
        +1 so stepped and one-shot runs report identical counts.
        """
        state = self._state
        new_documents = 0
        for index, document in enumerate(documents):
            if self.config.unique_documents and document.doc_id in self._seen_doc_ids:
                continue
            self._seen_doc_ids.add(document.doc_id)
            if self.config.keep_documents:
                self._kept_documents.append(document)
            self._model.add_document(self.analyzer.analyze(document.text))
            new_documents += 1
            state.documents_examined += 1
            if state.documents_examined >= self._next_snapshot:
                self._take_snapshot(in_flight_query=not query_counted)
            if criterion.should_stop(state):
                return new_documents, True, list(documents[index + 1 :])
        return new_documents, False, []

    def _take_snapshot(self, in_flight_query: bool) -> None:
        state = self._state
        state.snapshots.append(
            Snapshot(
                documents_examined=state.documents_examined,
                queries_run=state.queries_run + (1 if in_flight_query else 0),
                model=self._model.copy(),
            )
        )
        while self._next_snapshot <= state.documents_examined:
            self._next_snapshot += self.config.snapshot_interval

    def _next_term(self) -> str | None:
        """Pick the next query term: strategy first, bootstrap fallback."""
        if len(self._model) > 0:
            term = self.strategy.select(self._model, self._used_terms, self._rng)
            if term is not None:
                return term
        return self.bootstrap.select(self._model, self._used_terms, self._rng)
