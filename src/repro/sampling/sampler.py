"""The query-based sampler (paper Section 3).

:class:`QueryBasedSampler` drives the run-query / retrieve / update
loop against any object exposing the minimal database surface
(``run_query(query, max_docs) -> list[Document]``).  Configuration
captures every parameter the paper studies:

* ``docs_per_query`` — N, the documents examined per query (Section
  5.1; paper baseline 4);
* the term-selection ``strategy`` (Section 5.2; paper baseline random
  from the learned model);
* a ``bootstrap`` selector supplying the initial query term (and any
  term needed while the learned model is empty — the paper draws it at
  random from a reference language model);
* the ``stopping`` criterion (Section 6);
* ``unique_documents`` — whether a document retrieved twice counts
  once (the paper's accounting) or every time (ablation Ext-3).

The sampler is **resumable**: :meth:`QueryBasedSampler.run` continues
from wherever the previous call stopped, so a caller (e.g. the
multi-database :class:`~repro.sampling.pool.SamplingPool`) can grow a
model incrementally by calling ``run`` with successively larger
budgets.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Protocol

from repro.backend import SearchableDatabase
from repro.corpus.document import Document
from repro.lm.io import dumps_language_model, loads_language_model
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sampling.result import QueryRecord, SamplerState, SamplingRun, Snapshot
from repro.sampling.selection import QueryTermSelector, RandomFromLearned
from repro.sampling.stopping import MaxDocuments, StoppingCriterion
from repro.sampling.transport import CircuitOpenError, ServerError
from repro.text.analyzer import Analyzer
from repro.utils.rand import ensure_rng

__all__ = [
    "CheckpointSink",
    "QueryBasedSampler",
    "SamplerConfig",
    "SearchableDatabase",
]


class CheckpointSink(Protocol):
    """Receives run state at safe boundaries for durable persistence.

    Implemented by :class:`repro.store.SamplerCheckpointer`; the
    sampler calls :meth:`maybe_save` after every completed query and
    :meth:`save` when a run ends, always at a consistent state
    boundary (never mid-query).
    """

    def maybe_save(self, sampler: "QueryBasedSampler") -> None:
        """Persist if the sink's cadence says it is time."""
        ...  # pragma: no cover - protocol

    def save(self, sampler: "QueryBasedSampler") -> None:
        """Persist unconditionally."""
        ...  # pragma: no cover - protocol


def _document_to_dict(document: Document) -> dict[str, Any]:
    return {
        "doc_id": document.doc_id,
        "text": document.text,
        "title": document.title,
        "topic": document.topic,
        "metadata": dict(document.metadata),
    }


def _document_from_dict(data: Mapping[str, Any]) -> Document:
    return Document(
        doc_id=data["doc_id"],
        text=data["text"],
        title=data.get("title", ""),
        topic=data.get("topic"),
        metadata=dict(data.get("metadata") or {}),
    )


@dataclass(frozen=True)
class SamplerConfig:
    """Tunable parameters of a sampling run.

    Parameters
    ----------
    docs_per_query:
        N, the number of top documents examined per query.
    snapshot_interval:
        Take a model snapshot every this many documents (50 in the
        paper's convergence analysis).
    unique_documents:
        Skip documents already examined (paper accounting).
    max_total_queries:
        Hard safety budget: the run always ends after this many
        queries even if no stopping criterion fired (prevents runaway
        loops against tiny or hostile databases).
    keep_documents:
        Retain the sampled documents on the :class:`SamplingRun` (the
        paper's summarization and query-expansion capabilities consume
        them); disable to minimise memory on very large samples.
    """

    docs_per_query: int = 4
    snapshot_interval: int = 50
    unique_documents: bool = True
    max_total_queries: int = 5_000
    keep_documents: bool = True

    def __post_init__(self) -> None:
        if self.docs_per_query <= 0:
            raise ValueError("docs_per_query must be positive")
        if self.snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        if self.max_total_queries <= 0:
            raise ValueError("max_total_queries must be positive")


class QueryBasedSampler:
    """Learns a database's language model by sampling it with queries.

    Parameters
    ----------
    database:
        Anything satisfying :class:`SearchableDatabase`.
    strategy:
        Query-term selector for steady state (default: the paper's
        baseline, random from the learned model).
    bootstrap:
        Selector used for the first query and whenever ``strategy``
        cannot produce a term (e.g. the learned model is empty or
        exhausted).  Required because the learned model starts empty.
    stopping:
        Default stopping criterion for :meth:`run` (the paper's
        300-document budget if omitted).
    analyzer:
        The *client's* text pipeline applied to retrieved documents
        (default: raw case-folded tokens, as in the paper).
    config:
        See :class:`SamplerConfig`.
    seed:
        Seed for the strategy's random choices.
    recorder:
        Observability sink (:mod:`repro.obs`): one span per
        :meth:`run` call and per query.  The default no-op recorder
        keeps the sampling loop overhead-free.
    """

    def __init__(
        self,
        database: SearchableDatabase,
        bootstrap: QueryTermSelector,
        strategy: QueryTermSelector | None = None,
        stopping: StoppingCriterion | None = None,
        analyzer: Analyzer | None = None,
        config: SamplerConfig = SamplerConfig(),
        seed: int = 0,
        name: str | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.database = database
        self.recorder = recorder
        self.bootstrap = bootstrap
        self.strategy = strategy or RandomFromLearned()
        self.stopping = stopping or MaxDocuments(300)
        self.analyzer = analyzer or Analyzer.raw()
        self.config = config
        self.seed = seed
        self.name = name or getattr(database, "name", "database")
        # Mutable run state, created on first run() so the sampler is
        # resumable across calls.
        self._rng = ensure_rng(seed)
        self._model = LanguageModel(name=f"{self.name}-learned")
        self._state = SamplerState(model=self._model)
        self._queries: list[QueryRecord] = []
        self._used_terms: set[str] = set()
        self._seen_doc_ids: set[str] = set()
        self._kept_documents: list[Document] = []
        self._next_snapshot = config.snapshot_interval
        self._exhausted = False
        # Unconsumed tail of a query truncated by a mid-query budget
        # stop; consumed first on resume so stepped runs match one-shot
        # runs exactly.
        self._pending: list[Document] = []
        self._pending_query_index: int = -1

    # -- observable progress ----------------------------------------------

    @property
    def documents_examined(self) -> int:
        """Unique documents folded into the model so far."""
        return self._state.documents_examined

    @property
    def queries_run(self) -> int:
        """Queries issued so far (failed queries included)."""
        return self._state.queries_run

    @property
    def model(self) -> LanguageModel:
        """The learned model (live — snapshot via ``model.copy()``)."""
        return self._model

    @property
    def snapshots(self) -> list[Snapshot]:
        """Snapshots taken so far."""
        return self._state.snapshots

    def last_rdiff(self, metric: str = "df") -> float | None:
        """rdiff over the most recent snapshot span (None before two).

        The observable convergence signal of paper Section 6, exposed
        for schedulers that prioritise un-converged databases.
        """
        from repro.lm.compare import rdiff

        snapshots = self._state.snapshots
        if len(snapshots) < 2:
            return None
        return rdiff(snapshots[-2].model, snapshots[-1].model, metric=metric)

    # -- the sampling loop ---------------------------------------------------

    def run(
        self,
        stopping: StoppingCriterion | None = None,
        *,
        checkpoint: CheckpointSink | None = None,
    ) -> SamplingRun:
        """Sample until ``stopping`` (or the default criterion) fires.

        Resumable: a second call continues from the current state, so
        ``run(MaxDocuments(100))`` followed by ``run(MaxDocuments(200))``
        is equivalent to a single 200-document run.

        ``checkpoint`` (a :class:`CheckpointSink`, e.g.
        :class:`repro.store.SamplerCheckpointer`) is offered the run
        state after every completed query and once when the run ends;
        a process killed mid-run resumes bit-identically from the last
        persisted boundary via :meth:`load_state_dict`.
        """
        criterion = stopping or self.stopping
        with self.recorder.span("sample_run", database=self.name) as run_span:
            result = self._run(criterion, checkpoint)
            run_span.set(
                documents_examined=result.documents_examined,
                queries_run=result.queries_run,
                stop_reason=result.stop_reason,
            )
        return result

    def _run(
        self, criterion: StoppingCriterion, checkpoint: CheckpointSink | None = None
    ) -> SamplingRun:
        state = self._state
        recorder = self.recorder
        stop_reason: str | None = None

        if criterion.should_stop(state):
            stop_reason = criterion.describe()
        elif self._exhausted:
            stop_reason = "vocabulary_exhausted"
        elif self._pending:
            # Finish the query a previous run truncated mid-results.  That
            # query is already counted in queries_run, so snapshots taken
            # while absorbing the tail must not add an in-flight +1.
            new_documents, budget_hit, rest = self._absorb(
                self._pending, criterion, query_counted=True
            )
            self._pending = rest
            if new_documents:
                record = self._queries[self._pending_query_index]
                self._queries[self._pending_query_index] = replace(
                    record, new_documents=record.new_documents + new_documents
                )
            if budget_hit:
                stop_reason = criterion.describe()

        while stop_reason is None:
            term = self._next_term()
            if term is None:
                self._exhausted = True
                stop_reason = "vocabulary_exhausted"
                break
            self._used_terms.add(term)
            error_name: str | None = None
            unreachable = False
            with recorder.span("query", database=self.name, term=term) as query_span:
                try:
                    documents = self.database.run_query(
                        term, max_docs=self.config.docs_per_query
                    )
                except ServerError as error:
                    # An abandoned query costs its term and counts as failed,
                    # but never crashes the run (transport contract).
                    documents = []
                    error_name = type(error).__name__
                    unreachable = isinstance(error, CircuitOpenError) or bool(
                        getattr(self.database, "unreachable", False)
                    )
                new_documents, budget_hit, rest = self._absorb(documents, criterion)
                if recorder.enabled:
                    query_span.set(
                        documents_returned=len(documents),
                        new_documents=new_documents,
                        bytes_returned=sum(d.size_bytes for d in documents),
                    )
                    if error_name is not None:
                        query_span.set(error=error_name)
            self._queries.append(
                QueryRecord(
                    term=term,
                    documents_returned=len(documents),
                    new_documents=new_documents,
                    error=error_name,
                )
            )
            state.queries_run += 1
            if not documents:
                state.failed_queries += 1
            if budget_hit:
                self._pending = rest
                self._pending_query_index = len(self._queries) - 1
                stop_reason = criterion.describe()
            elif unreachable:
                stop_reason = "database_unreachable"
            elif criterion.should_stop(state):
                stop_reason = criterion.describe()
            elif state.queries_run >= self.config.max_total_queries:
                stop_reason = "query_budget_guard"
            if checkpoint is not None:
                checkpoint.maybe_save(self)

        # Final snapshot so curves always include the endpoint.
        if (
            not state.snapshots
            or state.snapshots[-1].documents_examined != state.documents_examined
        ):
            self._take_snapshot(in_flight_query=False)
        if checkpoint is not None:
            checkpoint.save(self)
        return self.current_run(stop_reason)

    def current_run(self, stop_reason: str) -> SamplingRun:
        """The sampler's accumulated state packaged as a run result.

        Exactly what :meth:`run` would return had it just stopped with
        ``stop_reason``; used by checkpoint resume to reconstruct the
        result of a run that completed before a crash.
        """
        return SamplingRun(
            model=self._model,
            snapshots=list(self._state.snapshots),
            queries=list(self._queries),
            stop_reason=stop_reason,
            documents=list(self._kept_documents),
        )

    def _absorb(
        self,
        documents: list[Document],
        criterion: StoppingCriterion,
        query_counted: bool = False,
    ) -> tuple[int, bool, list[Document]]:
        """Fold documents into the model until the criterion fires.

        Returns (new documents absorbed, whether the criterion fired
        mid-list, the unconsumed tail).  Stopping the moment the
        criterion is met keeps runs at exact document budgets; the tail
        is preserved so a resumed run loses nothing.  ``query_counted``
        marks the pending tail of a previous run, whose query is
        already in ``queries_run`` — snapshots then skip the in-flight
        +1 so stepped and one-shot runs report identical counts.

        Model updates are folded in batches via
        :meth:`~repro.lm.model.LanguageModel.add_documents`: documents
        accumulate between snapshot/stop boundaries and are flushed
        before any snapshot is copied and before returning, so
        snapshots and results always see a fully up-to-date model.
        (State *counters* are exact per document; only the live model's
        term statistics lag by at most one sub-batch while this method
        runs, which the built-in criteria — budget counters and
        snapshot rdiff — never observe.)
        """
        state = self._state
        analyze = self.analyzer.analyze
        new_documents = 0
        batch: list[list[str]] = []
        for index, document in enumerate(documents):
            if self.config.unique_documents and document.doc_id in self._seen_doc_ids:
                continue
            self._seen_doc_ids.add(document.doc_id)
            if self.config.keep_documents:
                self._kept_documents.append(document)
            batch.append(analyze(document.text))
            new_documents += 1
            state.documents_examined += 1
            if state.documents_examined >= self._next_snapshot:
                self._model.add_documents(batch)
                batch.clear()
                self._take_snapshot(in_flight_query=not query_counted)
            if criterion.should_stop(state):
                if batch:
                    self._model.add_documents(batch)
                return new_documents, True, list(documents[index + 1 :])
        if batch:
            self._model.add_documents(batch)
        return new_documents, False, []

    def _take_snapshot(self, in_flight_query: bool) -> None:
        state = self._state
        state.snapshots.append(
            Snapshot(
                documents_examined=state.documents_examined,
                queries_run=state.queries_run + (1 if in_flight_query else 0),
                model=self._model.copy(),
            )
        )
        while self._next_snapshot <= state.documents_examined:
            self._next_snapshot += self.config.snapshot_interval

    def _next_term(self) -> str | None:
        """Pick the next query term: strategy first, bootstrap fallback."""
        if len(self._model) > 0:
            term = self.strategy.select(self._model, self._used_terms, self._rng)
            if term is not None:
                return term
        return self.bootstrap.select(self._model, self._used_terms, self._rng)

    # -- checkpoint / resume ----------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the complete resumable state.

        Captures everything a future process needs to continue this
        run bit-identically: the learned model, counters, snapshots,
        query history, the used-term and seen-document sets, any
        pending mid-query document tail, and the exact RNG state (the
        library's default PCG64 generator state serializes to plain
        integers).  Selector objects are *not* captured — they are
        deterministic functions of this state, so reconstructing the
        sampler with the same configuration and calling
        :meth:`load_state_dict` resumes the identical trajectory.
        """
        state = self._state
        return {
            "name": self.name,
            "seed": self.seed,
            "config": asdict(self.config),
            "strategy": getattr(self.strategy, "name", type(self.strategy).__name__),
            "bootstrap": getattr(self.bootstrap, "name", type(self.bootstrap).__name__),
            "rng": self._rng.bit_generator.state,
            "model": dumps_language_model(self._model),
            "documents_examined": state.documents_examined,
            "queries_run": state.queries_run,
            "failed_queries": state.failed_queries,
            "snapshots": [
                {
                    "documents_examined": snapshot.documents_examined,
                    "queries_run": snapshot.queries_run,
                    "model": dumps_language_model(snapshot.model),
                }
                for snapshot in state.snapshots
            ],
            "queries": [
                {
                    "term": record.term,
                    "documents_returned": record.documents_returned,
                    "new_documents": record.new_documents,
                    "error": record.error,
                }
                for record in self._queries
            ],
            "used_terms": sorted(self._used_terms),
            "seen_doc_ids": sorted(self._seen_doc_ids),
            "kept_documents": [_document_to_dict(d) for d in self._kept_documents],
            "pending": [_document_to_dict(d) for d in self._pending],
            "pending_query_index": self._pending_query_index,
            "next_snapshot": self._next_snapshot,
            "exhausted": self._exhausted,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this sampler.

        The sampler must have been constructed with the same name,
        seed, configuration, and selector types as the one that was
        checkpointed — resuming under different parameters would
        silently diverge, so any mismatch raises ``ValueError``
        instead.
        """
        mismatches = []
        for field_name, current in (
            ("name", self.name),
            ("seed", self.seed),
            ("config", asdict(self.config)),
            ("strategy", getattr(self.strategy, "name", type(self.strategy).__name__)),
            ("bootstrap", getattr(self.bootstrap, "name", type(self.bootstrap).__name__)),
        ):
            saved = state.get(field_name)
            if saved != current:
                mismatches.append(f"{field_name}: checkpoint {saved!r} != sampler {current!r}")
        if mismatches:
            raise ValueError(
                "checkpoint does not match this sampler's construction: "
                + "; ".join(mismatches)
            )
        self._rng = ensure_rng(self.seed)
        self._rng.bit_generator.state = state["rng"]
        self._model = loads_language_model(state["model"])
        self._state = SamplerState(
            model=self._model,
            documents_examined=int(state["documents_examined"]),
            queries_run=int(state["queries_run"]),
            failed_queries=int(state["failed_queries"]),
            snapshots=[
                Snapshot(
                    documents_examined=int(snapshot["documents_examined"]),
                    queries_run=int(snapshot["queries_run"]),
                    model=loads_language_model(snapshot["model"]),
                )
                for snapshot in state["snapshots"]
            ],
        )
        self._queries = [
            QueryRecord(
                term=record["term"],
                documents_returned=int(record["documents_returned"]),
                new_documents=int(record["new_documents"]),
                error=record.get("error"),
            )
            for record in state["queries"]
        ]
        self._used_terms = set(state["used_terms"])
        self._seen_doc_ids = set(state["seen_doc_ids"])
        self._kept_documents = [_document_from_dict(d) for d in state["kept_documents"]]
        self._pending = [_document_from_dict(d) for d in state["pending"]]
        self._pending_query_index = int(state["pending_query_index"])
        self._next_snapshot = int(state["next_snapshot"])
        self._exhausted = bool(state["exhausted"])
