"""Query-term selection strategies (paper Sections 4.4 and 5.2).

All strategies enforce the paper's eligibility rules: a query term
"could not be a number and was required to be 3 or more characters
long", and a term is never reused within one sampling run.

The strategies tested by the paper:

* ``Random, llm`` — uniform choice from the *learned* language model
  (the paper's empirical baseline, and its best performer);
* ``df / ctf / avg-tf, llm`` — highest-frequency eligible term from the
  learned model under each frequency metric (the paper's falsified
  "frequent terms give random samples" hypothesis);
* ``Random, olm`` — uniform choice from some *other*, more complete
  language model (the paper's "olm" hypothesis; learns faster per
  document but runs many failing queries — Table 3).
"""

from __future__ import annotations

from bisect import insort
from typing import Protocol, Sequence

import numpy as np

from repro.lm.model import LanguageModel
from repro.text.tokenizer import Tokenizer

#: Minimum query-term length (paper Section 4.4).
MIN_QUERY_TERM_LENGTH = 3


def is_eligible_query_term(term: str, min_length: int = MIN_QUERY_TERM_LENGTH) -> bool:
    """Apply the paper's query-term requirements."""
    return (
        len(term) >= min_length
        and Tokenizer.is_word(term)
        and not Tokenizer.is_numeric(term)
    )


class QueryTermSelector(Protocol):
    """Chooses the next query term, or ``None`` when out of candidates."""

    name: str

    def select(
        self,
        learned: LanguageModel,
        used: set[str],
        rng: np.random.Generator,
    ) -> str | None:
        """Return the next query term not in ``used``, or ``None``."""
        ...  # pragma: no cover - protocol


def _eligible_terms(
    vocabulary: Sequence[str] | set[str], used: set[str], min_length: int
) -> list[str]:
    return sorted(
        term
        for term in vocabulary
        if term not in used and is_eligible_query_term(term, min_length)
    )


class _EligibilityCache:
    """Incrementally tracked eligible vocabulary of one growing model.

    A learned model's vocabulary only grows, and query-term eligibility
    depends on nothing but the term itself, so re-filtering (and
    re-sorting) the whole vocabulary on every query — the dominant cost
    of a sampling run, by profile — is wasted work.  This cache screens
    only the terms added since the previous call and maintains the
    sorted eligible list by insertion, making selection O(new terms +
    eligible) per query instead of O(V log V).  A different model
    object (or a model that shrank, e.g. after a checkpoint restore)
    resets the cache, so selectors stay reusable across runs.
    """

    def __init__(self, min_length: int) -> None:
        self.min_length = min_length
        self._model: LanguageModel | None = None
        self._scanned = 0
        self._eligible: list[str] = []

    def eligible(self, learned: LanguageModel) -> list[str]:
        """The sorted eligible terms of ``learned`` (shared list — do not mutate)."""
        if learned is not self._model or len(learned) < self._scanned:
            self._model = learned
            self._scanned = 0
            self._eligible = []
        if len(learned) != self._scanned:
            eligible = self._eligible
            min_length = self.min_length
            for term in learned.terms_since(self._scanned):
                if is_eligible_query_term(term, min_length):
                    insort(eligible, term)
            self._scanned = len(learned)
        return self._eligible


class RandomFromLearned:
    """Uniform random choice from the learned model's vocabulary."""

    name = "random_llm"

    def __init__(self, min_length: int = MIN_QUERY_TERM_LENGTH) -> None:
        self.min_length = min_length
        self._cache = _EligibilityCache(min_length)

    def select(
        self, learned: LanguageModel, used: set[str], rng: np.random.Generator
    ) -> str | None:
        """Pick an unused eligible learned term uniformly at random."""
        candidates = [term for term in self._cache.eligible(learned) if term not in used]
        if not candidates:
            return None
        return candidates[int(rng.integers(len(candidates)))]


class FrequencyFromLearned:
    """Highest-frequency eligible term from the learned model.

    ``metric`` is one of ``"df"``, ``"ctf"``, or ``"avg_tf"`` — the
    three frequency criteria the paper tests in Section 5.2.
    """

    def __init__(self, metric: str = "df", min_length: int = MIN_QUERY_TERM_LENGTH) -> None:
        if metric not in ("df", "ctf", "avg_tf"):
            raise ValueError(f"metric must be df/ctf/avg_tf, got {metric!r}")
        self.metric = metric
        self.min_length = min_length
        self.name = f"{metric}_llm"
        self._cache = _EligibilityCache(min_length)

    def select(
        self, learned: LanguageModel, used: set[str], rng: np.random.Generator
    ) -> str | None:
        """Pick the highest-frequency unused eligible learned term."""
        getter = {
            "df": learned.df,
            "ctf": learned.ctf,
            "avg_tf": learned.avg_tf,
        }[self.metric]
        best_term: str | None = None
        best_value = -1.0
        # The eligible list is sorted, so "strictly greater wins" picks
        # the alphabetically-first term among ties — the same
        # deterministic winner the full vocabulary scan produced.
        for term in self._cache.eligible(learned):
            if term in used:
                continue
            value = float(getter(term))
            if value > best_value:
                best_term = term
                best_value = value
        return best_term


class RandomFromOther:
    """Uniform random choice from a reference ("other") language model.

    The paper's olm strategy: draw query terms from a complete language
    model of some other collection.  Terms the target database has never
    seen simply fail (zero hits), which is why this strategy runs about
    twice as many queries per sampled document (Table 3).
    """

    name = "random_olm"

    def __init__(
        self, other: LanguageModel, min_length: int = MIN_QUERY_TERM_LENGTH
    ) -> None:
        self.other = other
        self.min_length = min_length
        self._candidates: list[str] | None = None

    def select(
        self, learned: LanguageModel, used: set[str], rng: np.random.Generator
    ) -> str | None:
        """Pick an unused eligible term from the other model at random."""
        if self._candidates is None:
            self._candidates = _eligible_terms(self.other.vocabulary, set(), self.min_length)
        available = [term for term in self._candidates if term not in used]
        if not available:
            return None
        return available[int(rng.integers(len(available)))]


class ListBootstrap:
    """Draws terms from a fixed list, in order, skipping used terms.

    Convenient as an explicit, reproducible source of initial query
    terms when no reference language model is available.
    """

    name = "list"

    def __init__(self, terms: Sequence[str], min_length: int = MIN_QUERY_TERM_LENGTH) -> None:
        self.terms = [t for t in terms if is_eligible_query_term(t, min_length)]
        if not self.terms:
            raise ValueError("no eligible terms in bootstrap list")

    def select(
        self, learned: LanguageModel, used: set[str], rng: np.random.Generator
    ) -> str | None:
        """Return the first unused term of the list."""
        for term in self.terms:
            if term not in used:
                return term
        return None
