"""Fault-tolerant transport for remote sampling.

The paper samples *uncooperative remote databases* over their ordinary
search interface (Section 3).  Real remote interfaces time out, throw
transient errors, rate-limit aggressive clients, and truncate result
lists — and a production selection service (the ROADMAP north-star)
must keep learning language models anyway.  This module supplies the
three pieces of that robustness layer:

* an **exception taxonomy** every ``run_query`` surface may raise:
  :class:`ServerTimeout`, :class:`TransientServerError`, and
  :class:`RateLimitedError` are retryable; :class:`PermanentServerError`
  is not; :class:`CircuitOpenError` is raised client-side without
  contacting the database at all.  All derive from :class:`ServerError`
  so callers can catch the whole family.
* :class:`UnreliableServer` — a deterministic, seeded fault-injection
  wrapper that makes any searchable database exhibit those failures at
  configurable rates, so every experiment on degraded transports is
  exactly reproducible.
* :class:`ResilientDatabase` — a client-side wrapper combining a
  :class:`RetryPolicy` (bounded attempts, exponential backoff with
  jitter on a :class:`SimulatedClock`, honouring rate-limit
  retry-after) with a :class:`CircuitBreaker` (open after K consecutive
  permanent failures, half-open probe after a cooldown) and full
  :class:`TransportMetrics`.

Backoff runs on a *simulated* clock: experiments measure the cost of
faults in simulated seconds without ever actually sleeping, and a fixed
seed reproduces the same retry schedule every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import SearchableDatabase
from repro.corpus.document import Document
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.utils.rand import derive_rng

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultStats",
    "PermanentServerError",
    "RETRYABLE_ERRORS",
    "RateLimitedError",
    "ResilientDatabase",
    "RetryPolicy",
    "ServerError",
    "ServerTimeout",
    "SimulatedClock",
    "TransientServerError",
    "TransportMetrics",
    "UnreliableServer",
]


# -- exception taxonomy --------------------------------------------------------


class ServerError(RuntimeError):
    """Base class for every failure a remote ``run_query`` may raise."""


class ServerTimeout(ServerError):
    """The query did not complete in time (retryable).

    Models the case where the server *did* run the query but the reply
    was lost: server-side cost meters tick even though the client sees
    nothing.
    """


class TransientServerError(ServerError):
    """A momentary server-side failure, e.g. HTTP 502/503 (retryable)."""


class RateLimitedError(ServerError):
    """The server asked the client to slow down (retryable after waiting)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds the server asks the client to wait before retrying.
        self.retry_after = float(retry_after)


class PermanentServerError(ServerError):
    """A failure no retry can fix (endpoint gone, access revoked)."""


class CircuitOpenError(ServerError):
    """Raised client-side when the circuit breaker refuses to even try."""


#: Exception classes a :class:`RetryPolicy` is allowed to retry.
RETRYABLE_ERRORS = (ServerTimeout, TransientServerError, RateLimitedError)


# -- simulated time ------------------------------------------------------------


class SimulatedClock:
    """A manually advanced clock, so backoff is deterministic and instant.

    The transport layer never calls ``time.sleep``; it sleeps on this
    clock, which simply advances a counter.  Experiments read the
    counter to cost out retry schedules in simulated seconds.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` (negative values are ignored)."""
        if seconds > 0:
            self._now += float(seconds)


# -- deterministic fault injection ---------------------------------------------


@dataclass
class FaultStats:
    """What an :class:`UnreliableServer` actually injected."""

    calls: int = 0
    timeouts: int = 0
    transient_errors: int = 0
    rate_limited: int = 0
    permanent_errors: int = 0
    truncated: int = 0


class UnreliableServer:
    """Deterministic seeded fault injection around any searchable database.

    Each ``run_query`` call draws from a seeded stream and either
    delegates honestly or injects one failure mode.  For a fixed seed
    and call sequence the faults are exactly reproducible, which keeps
    whole degraded-transport experiments deterministic end to end.

    Parameters
    ----------
    inner:
        The database to wrap (anything with ``run_query``).
    timeout_rate, transient_rate, rate_limit_rate, permanent_rate:
        Per-call probabilities of each failure mode (their sum must not
        exceed 1).  Timeouts execute the query on the inner database
        first — the server worked, the reply was lost — so server-side
        cost meters stay honest; the other failures fire before the
        inner database sees the query.
    truncate_rate:
        Probability that a *successful* result list is cut short (many
        real services return fewer results than requested under load).
    retry_after:
        The wait, in seconds, a :class:`RateLimitedError` asks for.
    seed:
        Seed of the fault stream.
    """

    def __init__(
        self,
        inner: SearchableDatabase,
        *,
        timeout_rate: float = 0.0,
        transient_rate: float = 0.0,
        rate_limit_rate: float = 0.0,
        permanent_rate: float = 0.0,
        truncate_rate: float = 0.0,
        retry_after: float = 2.0,
        seed: int = 0,
    ) -> None:
        rates = (timeout_rate, transient_rate, rate_limit_rate, permanent_rate, truncate_rate)
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ValueError("fault rates must be within [0, 1]")
        if timeout_rate + transient_rate + rate_limit_rate + permanent_rate > 1.0:
            raise ValueError("error rates must sum to at most 1")
        if retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        self.inner = inner
        self.name = getattr(inner, "name", "database")
        self.timeout_rate = timeout_rate
        self.transient_rate = transient_rate
        self.rate_limit_rate = rate_limit_rate
        self.permanent_rate = permanent_rate
        self.truncate_rate = truncate_rate
        self.retry_after = retry_after
        self.stats = FaultStats()
        self._rng = derive_rng(seed, "faults", self.name)

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Delegate to the inner database, possibly injecting a fault."""
        self.stats.calls += 1
        draw = float(self._rng.random())
        threshold = self.timeout_rate
        if draw < threshold:
            self.stats.timeouts += 1
            # The server processed the query; only the reply is lost.
            self.inner.run_query(query, max_docs=max_docs)
            raise ServerTimeout(f"{self.name}: query {query!r} timed out")
        threshold += self.transient_rate
        if draw < threshold:
            self.stats.transient_errors += 1
            raise TransientServerError(f"{self.name}: transient failure for {query!r}")
        threshold += self.rate_limit_rate
        if draw < threshold:
            self.stats.rate_limited += 1
            raise RateLimitedError(
                f"{self.name}: rate limited on {query!r}", retry_after=self.retry_after
            )
        threshold += self.permanent_rate
        if draw < threshold:
            self.stats.permanent_errors += 1
            raise PermanentServerError(f"{self.name}: permanent failure for {query!r}")
        documents = self.inner.run_query(query, max_docs=max_docs)
        if self.truncate_rate and len(documents) > 1:
            if float(self._rng.random()) < self.truncate_rate:
                self.stats.truncated += 1
                keep = 1 + int(self._rng.integers(len(documents) - 1))
                documents = documents[:keep]
        return documents

    def hit_count(self, query: str) -> int:
        """Delegate hit counting unchanged (fault injection covers retrieval)."""
        return self.inner.hit_count(query)


# -- retry policy and circuit breaker ------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ResilientDatabase` retries retryable failures.

    Parameters
    ----------
    max_attempts:
        Total attempts per query, the first included (1 disables
        retries entirely).
    base_delay:
        Backoff before the first retry, in (simulated) seconds.
    multiplier:
        Exponential growth factor between consecutive backoffs.
    max_delay:
        Cap on any single backoff.
    jitter:
        Fraction of each delay perturbed uniformly in ``±jitter`` to
        de-synchronise client fleets (0 disables jitter).
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff in seconds after failed attempt number ``attempt`` (1-based)."""
        if attempt <= 0:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


class CircuitBreaker:
    """Stops hammering a database that keeps failing permanently.

    Classic three-state breaker: **closed** (calls flow) → **open**
    after ``failure_threshold`` consecutive permanent failures (calls
    are rejected without contacting the database) → **half-open** once
    ``cooldown`` simulated seconds elapse (exactly one probe is let
    through; success closes the breaker, failure re-opens it).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 60.0,
        clock: SimulatedClock | None = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or SimulatedClock()
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def rejecting(self) -> bool:
        """True while calls would be rejected (open, cooldown not elapsed)."""
        return (
            self.state == self.OPEN
            and self.clock.now - self._opened_at < self.cooldown
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now (may move open → half-open)."""
        if self.state == self.OPEN:
            if self.rejecting:
                return False
            self.state = self.HALF_OPEN
        return True

    def record_success(self) -> None:
        """Note a successful call: the breaker closes and failures reset."""
        self.state = self.CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a permanent failure; the breaker may open (or re-open)."""
        self._consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self._opened_at = self.clock.now


# -- the resilient client ------------------------------------------------------


@dataclass
class TransportMetrics:
    """Cumulative transport accounting for one resilient client."""

    queries: int = 0  #: run_query calls made by the sampling client
    attempts: int = 0  #: calls actually forwarded to the wrapped database
    retries: int = 0  #: attempts beyond the first, per query
    successes: int = 0
    queries_abandoned: int = 0  #: retry budget exhausted without an answer
    permanent_failures: int = 0
    circuit_rejections: int = 0  #: failed fast while the breaker was open
    total_backoff: float = 0.0  #: simulated seconds spent backing off


class ResilientDatabase:
    """Wraps any searchable database with retries and a circuit breaker.

    Satisfies the same ``run_query`` surface as the database it wraps,
    so a :class:`~repro.sampling.sampler.QueryBasedSampler` can use it
    unchanged.  Retryable failures (:data:`RETRYABLE_ERRORS`) are
    retried under ``policy`` with exponential backoff on the simulated
    clock, honouring any rate-limit ``retry_after``.  Permanent
    failures propagate immediately and feed the circuit breaker; once
    the breaker opens, calls raise :class:`CircuitOpenError` without
    touching the database until the cooldown elapses.

    Parameters
    ----------
    inner:
        The (possibly unreliable) database to wrap.
    policy:
        Retry/backoff configuration.
    breaker:
        Circuit breaker; defaults to a fresh one sharing this client's
        clock.  Pass your own to share a breaker across clients.
    clock:
        Simulated clock for backoff (a fresh one if omitted).
    seed:
        Seed of the jitter stream.
    recorder:
        Observability sink (:mod:`repro.obs`): one ``retry`` event per
        backoff and ``circuit_opened`` / ``circuit_closed`` /
        ``circuit_rejected`` events on breaker activity.  The default
        no-op recorder keeps the retry loop overhead-free.
    """

    def __init__(
        self,
        inner: SearchableDatabase,
        policy: RetryPolicy = RetryPolicy(),
        breaker: CircuitBreaker | None = None,
        clock: SimulatedClock | None = None,
        seed: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.inner = inner
        self.name = getattr(inner, "name", "database")
        self.policy = policy
        # Backoff and breaker cooldown must tick on the same clock.
        self.clock = clock or (breaker.clock if breaker is not None else SimulatedClock())
        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self.metrics = TransportMetrics()
        self.recorder = recorder
        self._rng = derive_rng(seed, "transport", self.name)

    @property
    def unreachable(self) -> bool:
        """True while the breaker refuses to contact the database at all."""
        return self.breaker.rejecting

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Run ``query`` with retries; raise the final error if all fail."""
        self.metrics.queries += 1
        if not self.breaker.allow():
            self.metrics.circuit_rejections += 1
            self.recorder.event("circuit_rejected", database=self.name)
            raise CircuitOpenError(f"{self.name}: circuit breaker open")
        last_error: ServerError | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.metrics.attempts += 1
            try:
                documents = self.inner.run_query(query, max_docs=max_docs)
            except PermanentServerError:
                self.metrics.permanent_failures += 1
                was_rejecting = self.breaker.rejecting
                self.breaker.record_failure()
                if self.breaker.rejecting and not was_rejecting:
                    self.recorder.event("circuit_opened", database=self.name)
                raise
            except RETRYABLE_ERRORS as error:
                last_error = error
                if attempt == self.policy.max_attempts:
                    break
                delay = self.policy.delay_for(attempt, self._rng)
                if isinstance(error, RateLimitedError):
                    delay = max(delay, error.retry_after)
                self.metrics.retries += 1
                self.metrics.total_backoff += delay
                self.recorder.event(
                    "retry",
                    database=self.name,
                    attempt=attempt,
                    delay=delay,
                    error=type(error).__name__,
                )
                self.clock.sleep(delay)
            else:
                if self.breaker.state == CircuitBreaker.HALF_OPEN:
                    self.recorder.event("circuit_closed", database=self.name)
                self.breaker.record_success()
                self.metrics.successes += 1
                return documents
        self.metrics.queries_abandoned += 1
        assert last_error is not None
        raise last_error

    def hit_count(self, query: str) -> int:
        """Delegate hit counting to the wrapped database (no retry layer)."""
        return self.inner.hit_count(query)
