"""Command-line interface.

Exposes the library's main workflows as ``repro <subcommand>``:

.. code-block:: text

    repro generate  --profile wsj88 --scale 0.1 -o corpus.jsonl
    repro stats     corpus.jsonl
    repro search    corpus.jsonl "market court" -n 5
    repro sample    corpus.jsonl -o model.lm --max-docs 300
    repro compare   model.lm corpus.jsonl
    repro summarize model.lm --rank-by avg_tf -k 20
    repro estimate-size corpus.jsonl --method sample_resample
    repro federate a.jsonl b.jsonl c.jsonl --query "market court" -n 5
    repro serve-bench --synthetic 4 --scale 0.05 --budget 0.5
    repro serve     --synthetic 4 --port 8642
    repro load-bench --synthetic 4 --qps 20 40 80 -o BENCH_serving_load.json
    repro experiments --only fig1 fig3 --scale 0.1 --workers 4
    repro trace run.trace.jsonl
    repro store models-dir --verify
    repro fleet migrate models-dir sharded-dir --num-shards 16
    repro fleet status sharded-dir --queue queue-dir
    repro fleet run-workers a.jsonl b.jsonl --models sharded-dir --queue queue-dir
    repro fleet bench -o BENCH_fleet.json
    repro classify probe --synthetic 4 --save-router models-dir
    repro classify bench -o BENCH_classify.json
    repro scenarios list
    repro scenarios bench --only drift overlap -o BENCH_scenarios.json

``sample`` and ``federate`` accept ``--trace PATH`` to record a
structured JSONL trace of the run (:mod:`repro.obs`); ``repro trace``
renders the per-database activity report from such a file.

Persistence (:mod:`repro.store`): ``sample --checkpoint DIR`` makes the
run crash-safe — kill it at any point and the same command resumes
from the last checkpoint, producing a model bit-identical to an
uninterrupted run.  ``federate --save-models DIR`` persists the learned
model set to a durable store; ``federate --models DIR`` warm-starts
from one instead of re-sampling; ``repro store DIR`` inspects one
(``--prune`` deletes crash-leftover orphans after a clean verify).
Stores may be flat or sharded — every consumer autodetects the layout.

Fleet lifecycle (:mod:`repro.fleet`): ``repro fleet migrate`` re-homes
a store into hash-bucketed shards, ``fleet status`` shows the shard
table and refresh-queue depth, ``fleet run-workers`` drains a durable
refresh queue with a crash-tolerant worker pool, and ``fleet bench``
measures refresh throughput and the staleness-aware scheduler against
a uniform baseline (``BENCH_fleet.json``).  ``serve``, ``serve-bench``
and ``load-bench`` accept ``--models DIR`` to serve from a store
instead of ground truth.

Topic classification (:mod:`repro.classify`): ``repro classify probe``
classifies a federation's databases by query probing (hit counts only)
and can persist the resulting router beside a model store
(``--save-router DIR``); ``repro classify bench`` measures the
accuracy-vs-probe-budget curve and the routed-vs-broadcast serving
saving (``BENCH_classify.json``).  ``serve``, ``serve-bench``,
``load-bench`` and ``federate`` accept ``--route-topics`` to restrict
each query's fan-out to databases classified under its topics
(classifying live for synthetic federations, loading persisted
classifications from the ``--models`` store otherwise).

Corpora are JSONL files (``{"doc_id", "text", ...}`` per line); models
use the library's text format (:mod:`repro.lm.io`).  Every stochastic
command takes ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import Sequence

from repro.corpus.readers import read_jsonl, write_jsonl
from repro.experiments.reporting import format_table
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.index.server import DatabaseServer
from repro.lm.compare import ctf_ratio, percentage_learned, spearman_rank_correlation
from repro.lm.io import load_language_model, save_language_model
from repro.obs import TraceRecorder, format_trace_report, read_trace
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import FrequencyFromLearned, ListBootstrap, RandomFromLearned
from repro.sampling.stopping import MaxDocuments
from repro.obs.trace import NULL_RECORDER
from repro.sampling.transport import (
    ResilientDatabase,
    RetryPolicy,
    SimulatedClock,
    UnreliableServer,
)
from repro.sizeest.orchestrate import estimate_database_size
from repro.store import ModelStore, SamplerCheckpointer, StoreIntegrityError, open_store
from repro.summarize.summary import format_summary_grid, summarize
from repro.synth.profiles import PROFILES_BY_NAME
from repro.text.analyzer import Analyzer
from repro.utils.rand import derive_seed


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a synthetic corpus from a named profile"
    )
    parser.add_argument("--profile", choices=sorted(PROFILES_BY_NAME), default="wsj88")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", required=True, help="output JSONL path")


def _add_stats(subparsers) -> None:
    parser = subparsers.add_parser("stats", help="corpus statistics (Table 1 row)")
    parser.add_argument("corpus", help="corpus JSONL path")
    parser.add_argument(
        "--indexed",
        action="store_true",
        help="report statistics under the stop+stem pipeline instead of raw tokens",
    )


def _add_search(subparsers) -> None:
    parser = subparsers.add_parser("search", help="run a query against a corpus")
    parser.add_argument("corpus", help="corpus JSONL path")
    parser.add_argument("query")
    parser.add_argument("-n", type=int, default=10)


def _add_sample(subparsers) -> None:
    parser = subparsers.add_parser(
        "sample", help="learn a language model by query-based sampling"
    )
    parser.add_argument("corpus", help="corpus JSONL path")
    parser.add_argument("-o", "--output", required=True, help="output model path")
    parser.add_argument("--max-docs", type=int, default=300)
    parser.add_argument("--docs-per-query", type=int, default=4)
    parser.add_argument(
        "--strategy",
        choices=("random", "df", "ctf", "avg_tf"),
        default="random",
        help="query-term selection strategy (paper Section 5.2)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--bootstrap",
        nargs="*",
        default=None,
        help="explicit initial query terms (default: frequent corpus terms)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="simulate an unreliable transport: per-query probability of a "
        "transient failure (sampled through the retrying client)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="retries per query before abandoning it (with --fault-rate)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured JSONL trace of the run (see `repro trace`)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist a resumable checkpoint in DIR; rerunning the same "
        "command resumes from it (crash-safe, bit-identical)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="K",
        help="checkpoint every K queries (with --checkpoint)",
    )
    parser.add_argument(
        # Deterministic crash injection for the interrupt-and-resume
        # smoke test; simulates a hard kill (no cleanup) after N queries.
        "--crash-after-queries",
        type=int,
        default=None,
        help=argparse.SUPPRESS,
    )


def _add_compare(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="score a learned model against a corpus's actual model"
    )
    parser.add_argument("model", help="learned model path")
    parser.add_argument("corpus", help="corpus JSONL path")


def _add_summarize(subparsers) -> None:
    parser = subparsers.add_parser(
        "summarize", help="top-term summary of a language model (Table 4 style)"
    )
    parser.add_argument("model", help="model path")
    parser.add_argument("--rank-by", choices=("df", "ctf", "avg_tf"), default="avg_tf")
    parser.add_argument("-k", type=int, default=20)
    parser.add_argument("--min-df", type=int, default=2)


def _add_estimate_size(subparsers) -> None:
    parser = subparsers.add_parser(
        "estimate-size", help="estimate a corpus's size from its search surface"
    )
    parser.add_argument("corpus", help="corpus JSONL path")
    parser.add_argument(
        "--method",
        choices=("sample_resample", "schnabel", "schumacher_eschmeyer"),
        default="sample_resample",
    )
    parser.add_argument("--sample-docs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)


def _add_federate(subparsers) -> None:
    parser = subparsers.add_parser(
        "federate",
        help="sample several corpora, select with CORI, search, and merge",
    )
    parser.add_argument("corpora", nargs="+", help="corpus JSONL paths (>= 2)")
    parser.add_argument("--query", required=True)
    parser.add_argument("-n", type=int, default=10)
    parser.add_argument("--sample-docs", type=int, default=100,
                        help="sampling budget per database")
    parser.add_argument("--databases-per-query", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured JSONL trace of the run (see `repro trace`)",
    )
    parser.add_argument(
        "--models",
        default=None,
        metavar="DIR",
        help="warm-start from a durable model store instead of sampling "
        "(see `repro store`)",
    )
    parser.add_argument(
        "--save-models",
        default=None,
        metavar="DIR",
        help="persist the learned model set to a durable store directory",
    )
    parser.add_argument(
        "--route-topics",
        action="store_true",
        help="restrict fan-out by topic classification (needs a --models "
        "store with persisted classifications; see `repro classify probe`)",
    )


def _add_store(subparsers) -> None:
    parser = subparsers.add_parser(
        "store",
        help="inspect a durable model store directory",
    )
    parser.add_argument("directory", help="model store directory (see `repro federate --save-models`)")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-read every model and check its manifest checksum",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="delete orphan files (verifies first; refuses on integrity problems)",
    )


def _add_serve_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve-bench",
        help="throughput of the serving path (vectorized CORI, caches, fan-out)",
    )
    parser.add_argument(
        "corpora",
        nargs="*",
        help="corpus JSONL paths (omit to benchmark a synthetic federation)",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        default=4,
        metavar="K",
        help="number of synthetic databases when no corpora are given",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="synthetic corpus scale factor"
    )
    parser.add_argument(
        "--queries", type=int, default=12, help="distinct bench queries to cycle"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=0.5,
        help="wall-clock seconds per measured mode",
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="fan-out thread-pool bound"
    )
    parser.add_argument(
        "--backend-latency",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="injected per-search backend latency for the fan-out modes",
    )
    parser.add_argument("--databases-per-query", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--models",
        default=None,
        metavar="DIR",
        help="serve models from a durable store (flat or sharded) instead of "
        "the databases' ground truth",
    )
    parser.add_argument(
        "--route-topics",
        action="store_true",
        help="add a topic-routed fan-out mode: classify the federation (or "
        "load persisted classifications from --models) and measure "
        "search_routed against search_concurrent",
    )


def _add_federation_source(parser, default_synthetic: int = 4) -> None:
    """Shared corpora-or-synthetic federation options (serve, load-bench)."""
    parser.add_argument(
        "corpora",
        nargs="*",
        help="corpus JSONL paths (omit to use a synthetic federation)",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        default=default_synthetic,
        metavar="K",
        help="number of synthetic databases when no corpora are given",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="synthetic corpus scale factor"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--databases-per-query", type=int, default=3, help="selection depth per query"
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="frontend fan-out thread-pool bound"
    )
    parser.add_argument(
        "--slow-backend",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="inject this retrieval latency into one backend (streaming demo: "
        "partial frames flush while the slow backend is still working)",
    )
    parser.add_argument(
        "--models",
        default=None,
        metavar="DIR",
        help="warm-start serving from a durable model store (flat or sharded) "
        "instead of the databases' ground truth",
    )
    parser.add_argument(
        "--route-topics",
        action="store_true",
        help="classify the federation by query probing (or load persisted "
        "classifications from --models) and restrict each query's fan-out "
        "to databases matching its topics",
    )


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the federated-search gateway as a network service",
    )
    _add_federation_source(parser)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue capacity; requests beyond it are shed",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, help="requests executed at once"
    )


def _add_load_bench(subparsers) -> None:
    parser = subparsers.add_parser(
        "load-bench",
        help="open-loop QPS sweep against the gateway -> BENCH_serving_load.json",
    )
    _add_federation_source(parser)
    parser.add_argument(
        "--host",
        default=None,
        help="target a running `repro serve` gateway (default: self-host in-process)",
    )
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--qps",
        nargs="+",
        type=float,
        default=(10.0, 20.0, 40.0, 80.0),
        help="offered-QPS ladder, one open-loop level per rate",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, help="seconds per level"
    )
    parser.add_argument(
        "--pool", type=int, default=4, help="pooled client connections"
    )
    parser.add_argument(
        "--queries", type=int, default=12, help="distinct bench queries to cycle"
    )
    parser.add_argument("-n", type=int, default=10, help="merged results per query")
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request total deadline in seconds (propagated to backends)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64, help="self-hosted gateway queue capacity"
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, help="self-hosted gateway workers"
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_serving_load.json",
        help="where the machine-readable report lands",
    )


def _add_fleet(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet",
        help="fleet-scale model lifecycle: sharded store, refresh queue, workers",
    )
    fleet = parser.add_subparsers(dest="fleet_command", required=True)

    status = fleet.add_parser(
        "status", help="shard table of a model store, plus optional queue counts"
    )
    status.add_argument("directory", help="model store directory (flat or sharded)")
    status.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="also report job counts for this durable refresh queue",
    )

    migrate = fleet.add_parser(
        "migrate", help="re-home a model store into a new sharded layout"
    )
    migrate.add_argument("source", help="existing store directory (flat or sharded)")
    migrate.add_argument("dest", help="target directory (must not hold a store yet)")
    migrate.add_argument(
        "--num-shards", type=int, default=16, help="shard count of the new store"
    )

    run = fleet.add_parser(
        "run-workers",
        help="drain a durable refresh queue with a worker pool, folding "
        "refreshed models back into the store",
    )
    run.add_argument(
        "corpora",
        nargs="*",
        help="corpus JSONL paths (omit to run against a synthetic federation)",
    )
    run.add_argument(
        "--synthetic",
        type=int,
        default=4,
        metavar="K",
        help="number of synthetic databases when no corpora are given",
    )
    run.add_argument(
        "--scale", type=float, default=0.05, help="synthetic corpus scale factor"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--models",
        required=True,
        metavar="DIR",
        help="durable model store the sweep probes against and updates",
    )
    run.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="durable job queue directory (restarts resume it)",
    )
    run.add_argument("--workers", type=int, default=2, help="worker thread count")
    run.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="job lease duration; a crashed worker's job is reclaimed after this",
    )
    run.add_argument(
        "--refresh-docs", type=int, default=300, help="sample size of a full refresh"
    )
    run.add_argument(
        "--budget",
        type=int,
        default=None,
        help="enqueue at most this many databases (highest priority first)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="give up draining the queue after this many wall-clock seconds",
    )
    # Test hook: die via os._exit while holding a lease, after N jobs.
    run.add_argument("--crash-after-jobs", type=int, default=None, help=argparse.SUPPRESS)

    bench = fleet.add_parser(
        "bench",
        help="refresh throughput and scheduler-vs-uniform -> BENCH_fleet.json",
    )
    bench.add_argument(
        "--databases", type=int, default=8, help="synthetic fleet size"
    )
    bench.add_argument(
        "--scale", type=float, default=0.04, help="synthetic corpus scale factor"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--budget",
        type=int,
        default=3,
        help="databases each scheduling policy may probe per round",
    )
    bench.add_argument(
        "--worker-levels",
        nargs="+",
        type=int,
        default=(1, 4),
        help="worker counts for the throughput-scaling sweep",
    )
    bench.add_argument(
        "--probe-latency",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help="injected per-search backend latency (models remote fleet I/O)",
    )
    bench.add_argument(
        "-o",
        "--output",
        default="BENCH_fleet.json",
        help="where the machine-readable report lands",
    )


def _add_classify(subparsers) -> None:
    parser = subparsers.add_parser(
        "classify",
        help="topic classification by query probing, and its benchmark",
    )
    classify = parser.add_subparsers(dest="classify_command", required=True)

    probe = classify.add_parser(
        "probe",
        help="classify a federation's databases from probe hit counts alone",
    )
    probe.add_argument(
        "corpora",
        nargs="*",
        help="corpus JSONL paths (omit to classify a synthetic federation)",
    )
    probe.add_argument(
        "--synthetic",
        type=int,
        default=4,
        metavar="K",
        help="number of synthetic databases when no corpora are given",
    )
    probe.add_argument(
        "--profile",
        choices=sorted(PROFILES_BY_NAME),
        default="wsj88",
        help="topic space the probes are derived from; for corpus files this "
        "must match the `repro generate` profile/scale/seed that built them",
    )
    probe.add_argument(
        "--scale", type=float, default=0.05, help="corpus scale factor"
    )
    probe.add_argument("--seed", type=int, default=0)
    probe.add_argument(
        "--probes-per-topic",
        type=int,
        default=8,
        help="probe budget per topic (the accuracy/cost dial)",
    )
    probe.add_argument(
        "--tau-coverage",
        type=float,
        default=1.0,
        help="minimum total matches for a topic to be assignable",
    )
    probe.add_argument(
        "--tau-specificity",
        type=float,
        default=0.1,
        help="minimum share of a database's matches a topic must hold",
    )
    probe.add_argument(
        "--save-router",
        default=None,
        metavar="DIR",
        help="persist the classifications beside a model store, so serving "
        "warm-starts topic routing (`repro serve --route-topics --models DIR`)",
    )

    bench = classify.add_parser(
        "bench",
        help="accuracy-vs-probe-budget curve and routed-vs-broadcast saving "
        "-> BENCH_classify.json",
    )
    bench.add_argument(
        "--profile", choices=sorted(PROFILES_BY_NAME), default="wsj88"
    )
    bench.add_argument(
        "--databases", type=int, default=4, help="synthetic federation size"
    )
    bench.add_argument(
        "--scale", type=float, default=0.05, help="synthetic corpus scale factor"
    )
    bench.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=(0, 1, 2),
        help="seeds averaged by the curve and the routing comparison",
    )
    bench.add_argument(
        "--budgets",
        nargs="+",
        type=int,
        default=(1, 2, 4, 8, 16),
        help="probes-per-topic levels of the accuracy curve",
    )
    bench.add_argument(
        "--databases-per-query", type=int, default=3, help="broadcast depth"
    )
    bench.add_argument("-n", type=int, default=10, help="merged results per query")
    bench.add_argument(
        "-o",
        "--output",
        default="BENCH_classify.json",
        help="where the machine-readable report lands",
    )


def _add_scenarios(subparsers) -> None:
    parser = subparsers.add_parser(
        "scenarios",
        help="adversarial-world testbeds: drift, overlap, clusters, caps, sizes",
    )
    scenarios = parser.add_subparsers(dest="scenarios_command", required=True)

    scenarios.add_parser(
        "list", help="the scenario registry: what each world breaks, and how"
    )

    bench = scenarios.add_parser(
        "bench",
        help="measure every scenario's robustness pin "
        "(the committed BENCH_scenarios.json)",
    )
    bench.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="SCENARIO",
        help="subset of scenario names to run (default: all; see "
        "`repro scenarios list`)",
    )
    bench.add_argument(
        "--scale", type=float, default=1.0, help="testbed scale factor"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "-o",
        "--output",
        default="BENCH_scenarios.json",
        help="where the machine-readable report lands",
    )


def _add_experiments(subparsers) -> None:
    parser = subparsers.add_parser(
        "experiments",
        help="regenerate the paper's figures/tables from synthetic testbeds",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=("fig1", "fig3", "fig4", "table2", "table3"),
        default=None,
        help="subset of experiments to run (default: all)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes to fan independent trials across (1 = serial; "
        "results are identical for any worker count)",
    )
    parser.add_argument("--seed", type=int, default=0, help="testbed seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="corpus scale factor (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--seeds",
        nargs="*",
        type=int,
        default=(0, 1, 2),
        help="per-trial seeds averaged by each experiment",
    )


def _add_trace(subparsers) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="per-database activity report from a JSONL trace file",
    )
    parser.add_argument("trace_file", help="JSONL trace written with --trace")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-based sampling for text database language models "
        "(Callan, Connell & Du, SIGMOD 1999)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_stats(subparsers)
    _add_search(subparsers)
    _add_sample(subparsers)
    _add_compare(subparsers)
    _add_summarize(subparsers)
    _add_estimate_size(subparsers)
    _add_federate(subparsers)
    _add_store(subparsers)
    _add_serve_bench(subparsers)
    _add_serve(subparsers)
    _add_load_bench(subparsers)
    _add_fleet(subparsers)
    _add_classify(subparsers)
    _add_scenarios(subparsers)
    _add_experiments(subparsers)
    _add_trace(subparsers)
    return parser


def _default_bootstrap(server: DatabaseServer) -> ListBootstrap:
    seeds = [s.term for s in server.actual_language_model().top_terms(200, "ctf")]
    return ListBootstrap(seeds)


def _make_strategy(name: str):
    if name == "random":
        return RandomFromLearned()
    return FrequencyFromLearned(name)


class _CrashAfterQueries:
    """Checkpoint wrapper simulating a hard kill after N queries.

    Drives the interrupt-and-resume smoke test deterministically:
    checkpoints pass through to the real checkpointer, and once the
    sampler has run ``queries`` queries the process dies via
    ``os._exit`` — no cleanup, no final save, exactly like a SIGKILL
    at a query boundary.
    """

    def __init__(self, inner: SamplerCheckpointer, queries: int) -> None:
        self.inner = inner
        self.queries = queries

    def maybe_save(self, sampler) -> None:
        self.inner.maybe_save(sampler)
        if sampler.queries_run >= self.queries:
            import os

            print(
                f"simulated crash after {sampler.queries_run} queries",
                file=sys.stderr,
                flush=True,
            )
            os._exit(3)

    def save(self, sampler) -> None:
        self.inner.save(sampler)


def _cmd_generate(args) -> int:
    profile = PROFILES_BY_NAME[args.profile]()
    corpus = profile.build(seed=args.seed, scale=args.scale)
    write_jsonl(corpus, args.output)
    print(f"wrote {len(corpus):,} documents to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    corpus = read_jsonl(args.corpus)
    analyzer = Analyzer.inquery_style() if args.indexed else Analyzer.raw()
    stats = corpus.stats(analyzer)
    print(format_table([stats.as_row()], title=f"Corpus statistics ({args.corpus})"))
    return 0


def _cmd_search(args) -> int:
    server = DatabaseServer(read_jsonl(args.corpus))
    results = server.engine.search(args.query, n=args.n)
    if not results:
        print("no results")
        return 1
    rows = [
        {"rank": i, "doc_id": r.doc_id, "score": round(r.score, 4)}
        for i, r in enumerate(results, start=1)
    ]
    print(format_table(rows, title=f"Top {len(results)} for {args.query!r}"))
    return 0


def _cmd_sample(args) -> int:
    if not 0.0 <= args.fault_rate < 1.0:
        print("--fault-rate must be in [0, 1)", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return 2
    server = DatabaseServer(read_jsonl(args.corpus))
    bootstrap = (
        ListBootstrap(args.bootstrap) if args.bootstrap else _default_bootstrap(server)
    )
    database = server
    recorder = NULL_RECORDER
    if args.fault_rate > 0:
        # The trace recorder (if any) must tick on the same simulated
        # clock as the transport's backoff, so span timestamps line up
        # with retry delays.
        clock = SimulatedClock()
        if args.trace:
            recorder = TraceRecorder(clock=clock)
        database = ResilientDatabase(
            UnreliableServer(
                server,
                transient_rate=args.fault_rate,
                seed=derive_seed(args.seed, "faults"),
            ),
            policy=RetryPolicy(max_attempts=args.max_retries + 1),
            clock=clock,
            seed=args.seed,
            recorder=recorder,
        )
    elif args.trace:
        recorder = TraceRecorder()
    sampler = QueryBasedSampler(
        database,
        bootstrap=bootstrap,
        strategy=_make_strategy(args.strategy),
        stopping=MaxDocuments(args.max_docs),
        config=SamplerConfig(docs_per_query=args.docs_per_query, keep_documents=False),
        seed=args.seed,
        recorder=recorder,
    )
    checkpointer = None
    if args.checkpoint:
        if args.checkpoint_every <= 0:
            print("--checkpoint-every must be positive", file=sys.stderr)
            return 2
        checkpointer = SamplerCheckpointer(
            args.checkpoint, every_queries=args.checkpoint_every, recorder=recorder
        )
        try:
            resumed = checkpointer.resume(sampler)
        except ValueError as exc:
            print(f"cannot resume from {args.checkpoint}: {exc}", file=sys.stderr)
            return 2
        if resumed:
            print(
                f"resumed from checkpoint: {sampler.documents_examined} documents, "
                f"{sampler.queries_run} queries already done"
            )
        if args.crash_after_queries is not None:
            checkpointer = _CrashAfterQueries(checkpointer, args.crash_after_queries)
    run = sampler.run(checkpoint=checkpointer)
    save_language_model(run.model, args.output)
    print(
        f"sampled {run.documents_examined} documents with {run.queries_run} queries "
        f"({run.failed_queries} failed); learned {len(run.model):,} terms -> {args.output}"
    )
    if args.trace:
        lines = recorder.write_jsonl(args.trace)
        print(f"trace: {lines} records -> {args.trace}")
    if args.fault_rate > 0:
        metrics = database.metrics
        print(
            f"transport: {metrics.attempts} attempts for {metrics.queries} queries, "
            f"{metrics.retries} retries, {metrics.queries_abandoned} abandoned, "
            f"{metrics.total_backoff:.1f}s simulated backoff"
        )
    if run.stop_reason == "database_unreachable":
        print("warning: database became unreachable; the model is partial",
              file=sys.stderr)
    return 0


def _cmd_compare(args) -> int:
    learned = load_language_model(args.model)
    server = DatabaseServer(read_jsonl(args.corpus))
    actual = server.actual_language_model()
    projected = learned.project(server.index.analyzer)
    rows = [
        {"metric": "percentage_learned", "value": round(percentage_learned(projected, actual), 4)},
        {"metric": "ctf_ratio", "value": round(ctf_ratio(projected, actual), 4)},
        {"metric": "spearman_rank_correlation",
         "value": round(spearman_rank_correlation(projected, actual), 4)},
    ]
    print(format_table(rows, title=f"{args.model} vs {args.corpus}"))
    return 0


def _cmd_summarize(args) -> int:
    model = load_language_model(args.model)
    summary = summarize(model, k=args.k, rank_by=args.rank_by, min_df=args.min_df)
    print(format_summary_grid(summary, columns=4))
    return 0


def _cmd_estimate_size(args) -> int:
    server = DatabaseServer(read_jsonl(args.corpus))
    estimate = estimate_database_size(
        server,
        _default_bootstrap(server),
        method=args.method,
        sample_documents=args.sample_docs,
        seed=args.seed,
    )
    print(f"estimated size: {estimate:,.0f} documents ({args.method})")
    print(f"actual size:    {server.num_documents:,} documents")
    return 0


def _cmd_federate(args) -> int:
    if len(args.corpora) < 2:
        print("federate needs at least two corpora", file=sys.stderr)
        return 2
    servers = {}
    for path in args.corpora:
        corpus = read_jsonl(path)
        if corpus.name in servers:
            print(f"duplicate corpus name {corpus.name!r}", file=sys.stderr)
            return 2
        servers[corpus.name] = DatabaseServer(corpus)
    recorder = TraceRecorder() if args.trace else NULL_RECORDER
    service = FederatedSearchService(
        servers,
        databases_per_query=min(args.databases_per_query, len(servers)),
        recorder=recorder,
    )
    if args.models:
        try:
            store = open_store(args.models)
            store.recorder = recorder
            service.load_models(store)
        except (FileNotFoundError, StoreIntegrityError, ValueError) as exc:
            print(f"cannot load models from {args.models}: {exc}", file=sys.stderr)
            return 2
        print(
            f"warm-started {len(service.models)} models from {args.models} "
            f"(epoch {service.model_epoch})"
        )
        if args.route_topics:
            try:
                service.router = _topic_router_for(servers, args)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            print(f"topic routing over {len(service.router.topics)} topics")
    else:
        if args.route_topics:
            print(
                "--route-topics needs a --models store holding persisted "
                "classifications (see `repro classify probe --save-router`)",
                file=sys.stderr,
            )
            return 2
        service.learn_models(
            lambda name: _default_bootstrap(servers[name]),
            total_documents=args.sample_docs * len(servers),
            scheduler="round_robin",
            seed=args.seed,
        )
        if args.save_models:
            store = open_store(args.save_models)
            store.recorder = recorder
            service.save_models(store)
            print(f"saved {len(service.models)} models to {args.save_models}")
    response = service.search(SearchRequest(query=args.query, n=args.n))
    if args.trace:
        lines = recorder.write_jsonl(args.trace)
        print(f"trace: {lines} records -> {args.trace}")
    ranking_rows = [
        {"rank": i, "database": entry.name, "score": round(entry.score, 4),
         "searched": entry.name in response.searched}
        for i, entry in enumerate(response.ranking.entries, start=1)
    ]
    print(format_table(ranking_rows, title=f"Database ranking for {args.query!r}"))
    if response.routing is not None:
        decision = response.routing
        detail = (
            f"topics={','.join(decision.topics) or '-'} "
            f"confidence={decision.confidence:.2f}"
        )
        if decision.fell_back:
            detail += f" fell_back={decision.reason}"
        print(f"routing: {decision.mode} ({detail})")
    if not response.results:
        print("no results")
        return 1
    result_rows = [
        {"rank": i, "database": item.database, "doc_id": item.doc_id,
         "score": round(item.score, 4)}
        for i, item in enumerate(response.results, start=1)
    ]
    print(format_table(result_rows, title="Merged results"))
    return 0


def _cmd_store(args) -> int:
    from repro.store import ShardedModelStore

    store = open_store(args.directory)
    if not store.exists():
        print(f"no model store at {args.directory}", file=sys.stderr)
        return 2
    try:
        if isinstance(store, ShardedModelStore):
            fleet = store.read_fleet_manifest()
            rows = [
                {"shard": shard_id, "models": summary.models, "epoch": summary.model_epoch}
                for shard_id, summary in sorted(fleet.shards.items())
            ]
            print(
                format_table(
                    rows,
                    title=f"Sharded model store {args.directory} "
                    f"({fleet.num_shards} shards, {fleet.total_models} models, "
                    f"epoch {fleet.model_epoch})",
                )
            )
        else:
            manifest = store.read_manifest()
            rows = [
                {
                    "name": name,
                    "file": entry.file,
                    "terms": entry.terms,
                    "documents_seen": entry.documents_seen,
                    "tokens_seen": entry.tokens_seen,
                    "sha256": entry.sha256[:12],
                }
                for name, entry in sorted(manifest.models.items())
            ]
            print(
                format_table(
                    rows,
                    title=f"Model store {args.directory} (epoch {manifest.model_epoch}, "
                    f"{len(rows)} models)",
                )
            )
    except StoreIntegrityError as exc:
        print(f"corrupt store manifest: {exc}", file=sys.stderr)
        return 1
    orphans = store.orphans()
    if orphans:
        print(f"orphan files (unreferenced, safe to delete): {', '.join(orphans)}")
    if args.verify or args.prune:
        problems = store.verify()
        if problems:
            for problem in problems:
                print(f"INTEGRITY: {problem}", file=sys.stderr)
            if args.prune:
                print(
                    "refusing to prune an unhealthy store: fix the integrity "
                    "problems first",
                    file=sys.stderr,
                )
            return 1
        print("store ok: every model matches its manifest checksum")
    if args.prune:
        removed = store.prune_orphans()
        if removed:
            print(f"pruned {len(removed)} orphan files: {', '.join(removed)}")
        else:
            print("nothing to prune")
    return 0


def _federation_parts(
    corpora: Sequence[str],
    synthetic: int,
    scale: float,
    seed: int,
    profile: str = "wsj88",
):
    """The federation's corpora: read from files, or synthesized.

    Synthetic parts are built exactly as
    :func:`repro.serving.bench.build_synthetic_federation` builds its
    servers (wsj88 profile, topically skewed partition), so every
    subcommand sees the same federation for the same flags.  Raises
    :class:`ValueError` with a user-facing message on a bad spec.
    """
    from repro.federation.testbed import build_skewed_partition

    if corpora:
        if len(corpora) < 2:
            raise ValueError("a federation needs at least two corpora")
        parts = []
        names = set()
        for path in corpora:
            corpus = read_jsonl(path)
            if corpus.name in names:
                raise ValueError(f"duplicate corpus name {corpus.name!r}")
            names.add(corpus.name)
            parts.append(corpus)
        return parts
    if synthetic < 2:
        raise ValueError("--synthetic must be >= 2")
    corpus = PROFILES_BY_NAME[profile]().build(seed=seed, scale=scale)
    return build_skewed_partition(corpus, num_databases=synthetic, seed=seed)


def _federation_servers(
    corpora: Sequence[str], synthetic: int, scale: float, seed: int
) -> dict[str, DatabaseServer]:
    """Database servers from corpus files or a synthetic federation.

    Raises :class:`ValueError` with a user-facing message on a bad
    federation spec (the subcommands print it and exit 2).
    """
    parts = _federation_parts(corpora, synthetic, scale, seed)
    return {part.name: DatabaseServer(part) for part in parts}


def _topic_router_for(servers, args, *, profile: str = "wsj88"):
    """Build or load the topic router ``--route-topics`` asked for.

    Persisted classifications in the ``--models`` store win; otherwise
    a synthetic federation is classified live — the probe set derives
    from the same profile/scale/seed that generated the corpora, so the
    topic vocabulary matches.  Raises :class:`ValueError` with a
    user-facing message when neither path is available.
    """
    from repro.classify import (
        ClassifyParameters,
        QueryProbeClassifier,
        TopicRouter,
        build_probe_set,
        load_router,
    )

    if getattr(args, "models", None):
        router = load_router(open_store(args.models))
        if router is not None:
            return router
    if args.corpora:
        raise ValueError(
            "--route-topics over corpus files needs a --models store holding "
            "persisted classifications (see `repro classify probe --save-router`)"
        )
    space = PROFILES_BY_NAME[profile]().topic_space(seed=args.seed, scale=args.scale)
    probe_set = build_probe_set(space, seed=args.seed)
    classifier = QueryProbeClassifier(probe_set, ClassifyParameters())
    return TopicRouter.from_probes(probe_set, classifier.classify_all(servers))


def _store_models_for(servers, directory):
    """Load one model per federation database from a durable store.

    Works on flat and sharded stores alike (only the shards the names
    hash to are read).  Raises :class:`ValueError` with a user-facing
    message on a missing store, missing models, or integrity trouble.
    """
    store = open_store(directory)
    if not store.exists():
        raise ValueError(f"no model store at {directory}")
    missing = set(servers) - set(store.model_names())
    if missing:
        raise ValueError(
            f"store at {directory} is missing models for databases: {sorted(missing)}"
        )
    try:
        return {name: store.load_model(name) for name in servers}
    except StoreIntegrityError as exc:
        raise ValueError(f"cannot load models from {directory}: {exc}") from exc


def _cmd_serve_bench(args) -> int:
    # Imported lazily: serving pulls in the synthetic/testbed machinery
    # only this subcommand needs.
    from repro.serving.bench import format_serve_bench, run_serve_bench

    if args.budget <= 0:
        print("--budget must be positive", file=sys.stderr)
        return 2
    if args.backend_latency < 0:
        print("--backend-latency must be non-negative", file=sys.stderr)
        return 2
    try:
        parts = _federation_parts(args.corpora, args.synthetic, args.scale, args.seed)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    servers = {part.name: DatabaseServer(part) for part in parts}
    models = None
    if args.models:
        try:
            models = _store_models_for(servers, args.models)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    router = None
    queries = None
    if args.route_topics:
        from repro.federation.testbed import topical_queries

        try:
            router = _topic_router_for(servers, args)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        # Topical queries exercise the router; broadcast modes run the
        # same set so the fan-out comparison is apples to apples.
        topical = [query.text for query in topical_queries(parts)]
        queries = topical or None
    try:
        report = run_serve_bench(
            servers,
            queries,
            num_queries=args.queries,
            budget=args.budget,
            workers=args.workers,
            backend_latency=args.backend_latency,
            databases_per_query=args.databases_per_query,
            models=models,
            router=router,
        )
    except TypeError as exc:
        # E.g. a federation of databases without evaluable ground-truth
        # models: a configuration error, not a crash.
        print(f"serve-bench cannot run on this federation: {exc}", file=sys.stderr)
        return 2
    print(format_serve_bench(report))
    return 0


def _gateway_frontend(args):
    """Build the serving frontend a gateway subcommand asked for.

    Returns ``(frontend, num_databases)``; raises :class:`ValueError`
    with a user-facing message on a bad spec.
    """
    from repro.gateway import frontend_from_servers
    from repro.serving.bench import LatencyInjected

    servers = _federation_servers(args.corpora, args.synthetic, args.scale, args.seed)
    if args.slow_backend < 0:
        raise ValueError("--slow-backend must be non-negative")
    models = None
    if args.models:
        models = _store_models_for(servers, args.models)
    router = None
    if getattr(args, "route_topics", False):
        # Classify before any latency wrapping: LatencyInjected proxies
        # retrieval only and exposes no hit_count for probes.
        router = _topic_router_for(servers, args)
    if args.slow_backend > 0:
        # Models come from the store or the unwrapped servers; the
        # injected latency slows retrieval only, so streaming has a
        # straggler to beat.
        if models is None:
            models = {
                name: server.actual_language_model()
                for name, server in servers.items()
            }
        slowest = sorted(servers)[0]
        servers = {
            name: (
                LatencyInjected(server, args.slow_backend)
                if name == slowest
                else server
            )
            for name, server in servers.items()
        }
    try:
        frontend = frontend_from_servers(
            servers,
            models=models,
            databases_per_query=args.databases_per_query,
            workers=args.workers,
        )
    except TypeError as exc:
        raise ValueError(f"cannot serve this federation: {exc}") from exc
    if router is not None:
        frontend.service.router = router
    return frontend, len(servers)


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.gateway import GatewayServer

    try:
        frontend, num_databases = _gateway_frontend(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.queue_limit <= 0 or args.concurrency <= 0:
        print("--queue-limit and --concurrency must be positive", file=sys.stderr)
        return 2
    server = GatewayServer(
        frontend,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        concurrency=args.concurrency,
    )

    async def run() -> None:
        async with server:
            print(
                f"gateway listening on {server.host}:{server.port} "
                f"({num_databases} databases, queue limit {server.queue_limit}, "
                f"concurrency {server.concurrency})",
                flush=True,
            )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except NotImplementedError:  # pragma: no cover - non-unix
                    pass
            await stop.wait()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        frontend.close()
    stats = server.stats
    print(
        f"gateway stopped: {stats.completed} served, {stats.shed} shed, "
        f"{stats.errors} errors, {stats.streamed_partials} streamed partials, "
        f"max queue depth {stats.max_queue_depth}"
    )
    return 0


def _cmd_load_bench(args) -> int:
    from repro.gateway import format_load_bench, run_load_bench, write_load_bench
    from repro.gateway.client import GatewayError
    from repro.serving.bench import queries_from_models

    if args.duration <= 0:
        print("--duration must be positive", file=sys.stderr)
        return 2
    if any(qps <= 0 for qps in args.qps):
        print("--qps rates must be positive", file=sys.stderr)
        return 2
    try:
        frontend, _ = _gateway_frontend(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        queries = queries_from_models(frontend.service.models, args.queries)
        if args.host is not None:
            # Remote mode: the local federation only supplied the
            # query vocabulary; the sweep hits the running gateway.
            frontend.close()
            report = run_load_bench(
                address=(args.host, args.port),
                queries=queries,
                qps_levels=args.qps,
                duration=args.duration,
                pool_size=args.pool,
                n=args.n,
                deadline=args.deadline,
                seed=args.seed,
            )
        else:
            report = run_load_bench(
                frontend=frontend,
                queries=queries,
                qps_levels=args.qps,
                duration=args.duration,
                pool_size=args.pool,
                n=args.n,
                deadline=args.deadline,
                queue_limit=args.queue_limit,
                concurrency=args.concurrency,
                seed=args.seed,
            )
    except GatewayError as exc:
        print(f"load-bench failed: {exc}", file=sys.stderr)
        return 2
    finally:
        frontend.close()
    print(format_load_bench(report))
    write_load_bench(report, args.output)
    print(f"\nwrote {args.output}")
    return 0


def _cmd_fleet_status(args) -> int:
    from repro.store import ShardedModelStore

    store = open_store(args.directory)
    if not store.exists():
        print(f"no model store at {args.directory}", file=sys.stderr)
        return 2
    if isinstance(store, ShardedModelStore):
        try:
            fleet = store.read_fleet_manifest()
        except StoreIntegrityError as exc:
            print(f"corrupt fleet manifest: {exc}", file=sys.stderr)
            return 1
        rows = [
            {"shard": shard_id, "models": summary.models, "epoch": summary.model_epoch}
            for shard_id, summary in sorted(fleet.shards.items())
        ]
        print(
            format_table(
                rows,
                title=f"Sharded model store {args.directory} "
                f"({fleet.num_shards} shards, {fleet.total_models} models, "
                f"epoch {fleet.model_epoch})",
            )
        )
    else:
        print(
            f"flat model store {args.directory}: {len(store.model_names())} models, "
            f"epoch {store.model_epoch()} (shard it with `repro fleet migrate`)"
        )
    if args.queue:
        from repro.fleet import DurableJobQueue, JobState

        counts = DurableJobQueue(args.queue).counts()
        summary = ", ".join(f"{state}={counts[state]}" for state in JobState.ALL)
        print(f"refresh queue {args.queue}: {summary}")
    return 0


def _cmd_fleet_migrate(args) -> int:
    from repro.store import ShardedModelStore

    source = open_store(args.source)
    if not source.exists():
        print(f"no model store at {args.source}", file=sys.stderr)
        return 2
    try:
        target = ShardedModelStore.migrate(
            source, args.dest, num_shards=args.num_shards
        )
    except (StoreIntegrityError, ValueError) as exc:
        print(f"migration failed: {exc}", file=sys.stderr)
        return 1
    fleet = target.read_fleet_manifest()
    print(
        f"migrated {fleet.total_models} models into {len(fleet.shards)} occupied "
        f"shards (of {fleet.num_shards}) at {args.dest}, epoch {fleet.model_epoch}"
    )
    return 0


class _CrashDuringJob:
    """Job-handler wrapper simulating a hard kill while a lease is held.

    Lets ``after`` jobs finish, then dies via ``os._exit`` at the start
    of the next claim's execution — no cleanup, no completion, exactly
    like a SIGKILL.  The queue is left with a live lease owned by a
    dead process, which is the situation the lease-expiry machinery
    exists for: drive the crash-resume smoke test with it.
    """

    def __init__(self, handler, after: int) -> None:
        self.handler = handler
        self.after = after
        self._done = 0
        self._lock = threading.Lock()

    def __call__(self, job):
        with self._lock:
            if self._done >= self.after:
                import os

                print(
                    f"simulated crash holding the lease on {job.job_id}",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(3)
        result = self.handler(job)
        with self._lock:
            self._done += 1
        return result


def _cmd_fleet_run_workers(args) -> int:
    import time

    from repro.fleet import (
        REFRESH_JOB_KIND,
        DurableJobQueue,
        FleetScheduler,
        JobState,
        RefreshOutcome,
        RefreshRunner,
        run_workers,
    )
    from repro.sampling.staleness import RefreshPolicy
    from repro.store import ShardedModelStore

    if args.workers <= 0 or args.lease_seconds <= 0 or args.timeout <= 0:
        print(
            "--workers, --lease-seconds, and --timeout must be positive",
            file=sys.stderr,
        )
        return 2
    try:
        servers = _federation_servers(
            args.corpora, args.synthetic, args.scale, args.seed
        )
        stored = _store_models_for(servers, args.models)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    store = open_store(args.models)

    queue = DurableJobQueue(args.queue, lease_seconds=args.lease_seconds)
    # Only databases without a job on file are (re-)enqueued: a restart
    # resumes the existing round — done jobs stay done (exactly-once),
    # pending and expired-lease jobs get picked back up.
    existing = {job.database for job in queue.jobs() if job.kind == REFRESH_JOB_KIND}
    fresh = [name for name in sorted(servers) if name not in existing]
    if fresh:
        FleetScheduler().enqueue(queue, fresh, seed=args.seed, budget=args.budget)
    counts = queue.counts()
    print(
        f"queue {args.queue}: "
        + ", ".join(f"{state}={counts[state]}" for state in JobState.ALL)
    )

    outcome = RefreshOutcome()
    runner = RefreshRunner(
        servers,
        stored,
        lambda name: _default_bootstrap(servers[name]),
        RefreshPolicy(refresh_documents=args.refresh_docs),
        outcome,
        checkpoint_root=Path(args.queue) / "checkpoints",
    )
    execute = (
        _CrashDuringJob(runner, args.crash_after_jobs)
        if args.crash_after_jobs is not None
        else runner
    )
    install_lock = threading.Lock()

    def install(job, result) -> None:
        # Fold a refreshed model into the store *before* the job
        # completes, so its effect is durable even if this process dies
        # the next instant.  A replayed job (crash between install and
        # complete) re-probes against the already-refreshed set and
        # comes back fresh — the install is effectively exactly-once.
        if not result.get("refreshed"):
            return
        model = outcome.models[job.database]
        with install_lock:
            if isinstance(store, ShardedModelStore):
                store.update({job.database: model})
            else:
                merged = store.load()
                merged[job.database] = model
                store.save(merged, model_epoch=store.model_epoch() + 1)

    def handler(job):
        result = execute(job)
        install(job, result)
        return result

    deadline = time.monotonic() + args.timeout
    completed = failed = 0
    while True:
        for stats in run_workers(
            queue, handler, num_workers=args.workers, poll_interval=0.05
        ):
            completed += stats.completed
            failed += stats.failed
        if queue.drained():
            break
        if time.monotonic() > deadline:
            print(
                "timed out waiting for the queue to drain "
                "(a dead worker's lease may still be held)",
                file=sys.stderr,
            )
            return 1
        # Leased jobs belong to a dead process; wait out the lease.
        time.sleep(min(1.0, max(0.1, args.lease_seconds / 4)))

    refreshed = sorted(outcome.refreshed)
    print(
        f"drained: {completed} jobs completed, {failed} attempts failed, "
        f"{len(refreshed)} models refreshed"
        + (f" ({', '.join(refreshed)})" if refreshed else "")
    )
    final = queue.counts()
    if final[JobState.FAILED]:
        print(f"{final[JobState.FAILED]} jobs exhausted their retries", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet_bench(args) -> int:
    from repro.fleet.bench import format_fleet_bench, run_fleet_bench, write_fleet_bench

    if args.budget <= 0:
        print("--budget must be positive", file=sys.stderr)
        return 2
    if args.databases < 2:
        print("--databases must be >= 2", file=sys.stderr)
        return 2
    if any(level <= 0 for level in args.worker_levels):
        print("--worker-levels must be positive", file=sys.stderr)
        return 2
    report = run_fleet_bench(
        num_databases=args.databases,
        scale=args.scale,
        seed=args.seed,
        budget=args.budget,
        worker_levels=tuple(args.worker_levels),
        probe_latency=args.probe_latency,
    )
    print(format_fleet_bench(report))
    write_fleet_bench(report, args.output)
    print(f"\nwrote {args.output}")
    return 0


_FLEET_COMMANDS = {
    "status": _cmd_fleet_status,
    "migrate": _cmd_fleet_migrate,
    "run-workers": _cmd_fleet_run_workers,
    "bench": _cmd_fleet_bench,
}


def _cmd_fleet(args) -> int:
    return _FLEET_COMMANDS[args.fleet_command](args)


def _cmd_classify_probe(args) -> int:
    from repro.classify import (
        ClassifyParameters,
        QueryProbeClassifier,
        TopicRouter,
        build_probe_set,
        save_router,
    )

    try:
        parts = _federation_parts(
            args.corpora, args.synthetic, args.scale, args.seed, args.profile
        )
        params = ClassifyParameters(
            tau_coverage=args.tau_coverage,
            tau_specificity=args.tau_specificity,
            probes_per_topic=args.probes_per_topic,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    servers = {part.name: DatabaseServer(part) for part in parts}
    space = PROFILES_BY_NAME[args.profile]().topic_space(
        seed=args.seed, scale=args.scale
    )
    probe_set = build_probe_set(space, seed=args.seed)
    classifier = QueryProbeClassifier(probe_set, params)
    classifications = classifier.classify_all(servers)
    rows = [
        {
            "database": name,
            "assigned": ",".join(c.assigned) or "-",
            "confidence": round(c.confidence, 3),
            "probes": c.probes_issued,
        }
        for name, c in classifications.items()
    ]
    print(
        format_table(
            rows,
            title=f"Classification over {len(probe_set.topics)} topics "
            f"(budget {args.probes_per_topic} probes/topic)",
        )
    )
    diffuse = [name for name, c in classifications.items() if not c.assigned]
    if diffuse:
        print(f"topically diffuse (will broadcast): {', '.join(diffuse)}")
    if args.save_router:
        router = TopicRouter.from_probes(probe_set, classifications)
        path = save_router(router, args.save_router)
        print(f"saved classifications -> {path}")
    return 0


def _cmd_classify_bench(args) -> int:
    from repro.classify.bench import (
        format_classify_bench,
        run_classify_bench,
        write_classify_bench,
    )

    if args.databases < 2:
        print("--databases must be >= 2", file=sys.stderr)
        return 2
    if any(budget <= 0 for budget in args.budgets):
        print("--budgets must be positive", file=sys.stderr)
        return 2
    report = run_classify_bench(
        profile=args.profile,
        num_databases=args.databases,
        scale=args.scale,
        seeds=tuple(args.seeds),
        budgets=tuple(args.budgets),
        databases_per_query=args.databases_per_query,
        n=args.n,
    )
    print(format_classify_bench(report))
    write_classify_bench(report, args.output)
    print(f"\nwrote {args.output}")
    return 0


_CLASSIFY_COMMANDS = {
    "probe": _cmd_classify_probe,
    "bench": _cmd_classify_bench,
}


def _cmd_classify(args) -> int:
    return _CLASSIFY_COMMANDS[args.classify_command](args)


def _cmd_scenarios_list(args) -> int:
    from repro.scenarios import SCENARIO_SPECS

    for spec in SCENARIO_SPECS:
        print(f"{spec.name}: {spec.description}")
        print(f"  breaks: {spec.breaks}")
        print(f"  signal: {spec.signal}")
    return 0


def _cmd_scenarios_bench(args) -> int:
    from repro.scenarios import (
        format_scenarios_bench,
        run_scenarios_bench,
        scenario_names,
        write_scenarios_bench,
    )

    if args.scale <= 0:
        print("--scale must be positive", file=sys.stderr)
        return 2
    if args.only:
        unknown = sorted(set(args.only) - set(scenario_names()))
        if unknown:
            print(
                f"unknown scenarios: {', '.join(unknown)} "
                f"(known: {', '.join(scenario_names())})",
                file=sys.stderr,
            )
            return 2
    report = run_scenarios_bench(scale=args.scale, seed=args.seed, only=args.only)
    print(format_scenarios_bench(report))
    write_scenarios_bench(report, args.output)
    print(f"\nwrote {args.output}")
    return 0 if report.all_passed else 1


_SCENARIOS_COMMANDS = {
    "list": _cmd_scenarios_list,
    "bench": _cmd_scenarios_bench,
}


def _cmd_scenarios(args) -> int:
    return _SCENARIOS_COMMANDS[args.scenarios_command](args)


def _cmd_experiments(args) -> int:
    # Imported lazily: the experiments package pulls in the synthetic
    # corpus machinery, which the file-based subcommands never need.
    from repro.experiments import (
        Testbed,
        figure1_and_2_curves,
        figure3_strategy_curves,
        figure4_rdiff_series,
        format_series,
        format_table,
        table2_docs_per_query,
    )
    from repro.experiments.reporting import curve_series

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    wanted = set(args.only) if args.only else {"fig1", "fig3", "fig4", "table2", "table3"}
    seeds = tuple(args.seeds)
    testbed = Testbed(seed=args.seed, scale=args.scale)
    if "fig1" in wanted:
        curves = figure1_and_2_curves(testbed, seeds=seeds, workers=args.workers)
        for metric, title in (
            ("percentage_learned", "Figure 1a: fraction of terms learned"),
            ("ctf_ratio", "Figure 1b: ctf ratio"),
            ("spearman", "Figure 2: Spearman rank correlation"),
        ):
            print(format_series(curve_series(curves, metric), title=title))
            print()
    run_fig3 = "fig3" in wanted
    if run_fig3 or "table3" in wanted:
        results = figure3_strategy_curves(testbed, seeds=seeds, workers=args.workers)
        if run_fig3:
            strategy_curves = {label: curve for label, (curve, _) in results.items()}
            print(
                format_series(
                    curve_series(strategy_curves, "ctf_ratio"),
                    title="Figure 3: ctf ratio by query-selection strategy (wsj88)",
                )
            )
            print()
        if "table3" in wanted:
            rows = [
                {"strategy": label, "mean_queries": round(queries, 1)}
                for label, (_, queries) in results.items()
            ]
            print(format_table(rows, title="Table 3: queries to exhaust the budget"))
            print()
    if "fig4" in wanted:
        series = figure4_rdiff_series(testbed, seeds=seeds, workers=args.workers)
        print(format_series(series, title="Figure 4: rdiff between snapshots"))
        print()
    if "table2" in wanted:
        rows = table2_docs_per_query(testbed, seeds=seeds, workers=args.workers)
        print(format_table(rows, title="Table 2: effect of docs per query (N)"))
        print()
    return 0


def _cmd_trace(args) -> int:
    try:
        records = read_trace(args.trace_file)
    except OSError as exc:
        print(f"cannot read trace file: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid trace file: {exc}", file=sys.stderr)
        return 2
    print(format_trace_report(records))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "search": _cmd_search,
    "sample": _cmd_sample,
    "compare": _cmd_compare,
    "summarize": _cmd_summarize,
    "estimate-size": _cmd_estimate_size,
    "federate": _cmd_federate,
    "store": _cmd_store,
    "serve-bench": _cmd_serve_bench,
    "serve": _cmd_serve,
    "load-bench": _cmd_load_bench,
    "fleet": _cmd_fleet,
    "classify": _cmd_classify,
    "scenarios": _cmd_scenarios,
    "experiments": _cmd_experiments,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
