"""The federation frontend: fast, concurrent federated query serving.

:class:`FederationFrontend` wraps a
:class:`~repro.federation.service.FederatedSearchService` and makes its
query path production-shaped without changing a single answer:

1. **Vectorized selection** — when the service selects with CORI, the
   frontend compiles the installed models into a
   :class:`~repro.dbselect.vectorized.CoriScorer` once per *model
   epoch* and scores every database per query in a handful of numpy
   operations (equivalence-tested against the scalar selector).  Other
   selectors fall back to the service's own ``rank`` — still cached.
2. **Caching** — an LRU over analyzed queries and an LRU over selection
   rankings, keyed by the analyzed terms and the model epoch.  Both are
   invalidated whenever the service installs new models
   (``learn_models`` / ``use_models`` / a staleness refresh), observed
   through :attr:`~repro.federation.service.FederatedSearchService.model_epoch`.
3. **Topic-aware routing** — when the wrapped service carries a
   :class:`~repro.classify.TopicRouter`, the CORI candidate set is
   restricted to databases classified under the query's topics before
   fan-out (service method
   :meth:`~repro.federation.service.FederatedSearchService.resolve_candidates`
   — one shared routing point for both the service and this frontend),
   with the decision reported in
   :attr:`~repro.federation.service.FederatedResponse.routing`.
4. **Concurrent fan-out** — selected backends are searched on a bounded
   :class:`~concurrent.futures.ThreadPoolExecutor` under the request's
   deadline.  A backend that misses the deadline or raises from the
   transport error taxonomy
   (:class:`~repro.sampling.transport.ServerError`) is *dropped* from
   the merge and reported in
   :attr:`~repro.federation.service.FederatedResponse.dropped` — one
   slow or failing database degrades the answer, never the service.

Everything is instrumented through :mod:`repro.obs`: a
``frontend_search`` span per query, ``serving.*`` cache hit/miss
counters, a ``backend_search`` latency timer per backend, and
``backend_dropped`` events for degradations.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    ALL_COMPLETED,
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.dbselect.base import DatabaseRanking, analyze_query
from repro.dbselect.cori import CoriSelector
from repro.dbselect.merge import MergedResult
from repro.dbselect.vectorized import CoriScorer
from repro.federation.service import (
    FederatedResponse,
    FederatedSearchService,
    SearchRequest,
)
from repro.index.search import SearchResult
from repro.obs.trace import Recorder
from repro.sampling.transport import ServerError
from repro.serving.cache import LruCache
from repro.store.base import ModelStorage, open_store
from repro.store.sharded import ShardedModelStore

__all__ = ["FederationFrontend", "PartialUpdate"]

#: One backend retrieval's outcome: (results, elapsed seconds, error name).
_BackendOutcome = tuple[list[SearchResult] | None, float, str | None]


@dataclass(frozen=True)
class PartialUpdate:
    """An early merged result set, flushed before slow backends finish.

    Produced by :meth:`FederationFrontend.search_incremental` every
    time one or more backends complete while others are still pending:
    ``results`` is the merge over every backend answered *so far*,
    ``searched`` those backends, and ``pending`` the ones still
    outstanding (each of which will either make the final response or
    land in its ``dropped``).  ``sequence`` counts partials within one
    request, starting at 1.
    """

    query: str
    sequence: int
    results: tuple[MergedResult, ...]
    searched: tuple[str, ...]
    pending: tuple[str, ...]


class FederationFrontend:
    """High-throughput query serving over a federated search service.

    The frontend holds no model state of its own — it observes the
    service's :attr:`~repro.federation.service.FederatedSearchService.model_epoch`
    and recompiles its scorer / drops its caches whenever the epoch
    moves, so it can never serve rankings from a superseded model set.

    Parameters
    ----------
    service:
        The wrapped service (owns servers, models, selector, merger).
    max_workers:
        Bound of the fan-out thread pool.
    analyzed_cache_size, selection_cache_size:
        LRU budgets for the two selection-path caches.
    recorder:
        Observability sink; defaults to the service's recorder.

    The frontend is a context manager; leaving the ``with`` block (or
    calling :meth:`close`) shuts the thread pool down.
    """

    def __init__(
        self,
        service: FederatedSearchService,
        *,
        max_workers: int = 8,
        analyzed_cache_size: int = 4096,
        selection_cache_size: int = 4096,
        recorder: Recorder | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.service = service
        self.recorder = recorder if recorder is not None else service.recorder
        self.max_workers = max_workers
        self.analyzed_queries: LruCache[str, tuple[str, ...]] = LruCache(
            analyzed_cache_size, name="serving.analyzed", recorder=self.recorder
        )
        self.selections: LruCache[tuple, DatabaseRanking] = LruCache(
            selection_cache_size, name="serving.selection", recorder=self.recorder
        )
        self._scorer: CoriScorer | None = None
        self._compiled_epoch = -1
        self._executor: ThreadPoolExecutor | None = None
        self._warm_store: ModelStorage | None = None
        self._store_epochs: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def from_store(
        cls,
        service: FederatedSearchService,
        store: ModelStorage | str | Path,
        *,
        max_workers: int = 8,
        analyzed_cache_size: int = 4096,
        selection_cache_size: int = 4096,
        recorder: Recorder | None = None,
    ) -> "FederationFrontend":
        """Boot a frontend warm-started from a durable model store.

        Loads the store's model set into ``service`` (bumping its
        model epoch — see
        :meth:`~repro.federation.service.FederatedSearchService.load_models`)
        and eagerly compiles the vectorized scorer, so the first query
        after a restart pays no cold-start cost and no stale cache
        entry can survive the restart.  The store may be flat or
        sharded (a path autodetects via :func:`repro.store.open_store`);
        a sharded store additionally enables per-shard invalidation
        through :meth:`refresh_from_store`.

        If the store carries persisted topic classifications (written
        by :func:`repro.classify.save_router`) and the service has no
        router yet, a :class:`~repro.classify.TopicRouter` is rebuilt
        from them, so topic-aware routing warm-starts together with the
        models.
        """
        resolved = open_store(store) if isinstance(store, (str, Path)) else store
        service.load_models(resolved)
        if service.router is None:
            from repro.classify.persist import load_router

            service.router = load_router(resolved)
        frontend = cls(
            service,
            max_workers=max_workers,
            analyzed_cache_size=analyzed_cache_size,
            selection_cache_size=selection_cache_size,
            recorder=recorder,
        )
        frontend._warm_store = resolved
        frontend._store_epochs = frontend._epochs_of(resolved)
        frontend._ensure_current()
        return frontend

    @staticmethod
    def _epochs_of(store: ModelStorage) -> dict[str, int]:
        """The store's invalidation keys: per shard, or one for a flat store."""
        if isinstance(store, ShardedModelStore):
            return store.shard_epochs()
        return {"": store.model_epoch()}

    def refresh_from_store(
        self, store: ModelStorage | str | Path | None = None
    ) -> tuple[str, ...]:
        """Reload only the models whose shard moved since the last load.

        Compares the store's per-shard epochs (one epoch total for a
        flat store) against those seen at :meth:`from_store` / the last
        refresh, reads back *only* the databases living in shards that
        moved, and installs the merged set (one service epoch bump, so
        caches and the compiled scorer invalidate once).  Returns the
        reloaded database names — empty means the store hasn't moved
        and nothing was touched, not even the caches.

        This is the serving half of the fleet refresh loop: workers
        fold refreshed models into the sharded store shard by shard
        (:meth:`~repro.store.ShardedModelStore.update`), and a serving
        process polls this method to pick changes up without re-reading
        the untouched majority of the fleet.
        """
        if store is None:
            if self._warm_store is None:
                raise RuntimeError(
                    "no store to refresh from; boot with from_store() or pass one"
                )
            resolved: ModelStorage = self._warm_store
        else:
            resolved = open_store(store) if isinstance(store, (str, Path)) else store
        current = self._epochs_of(resolved)
        changed = {
            shard_id
            for shard_id, epoch in current.items()
            if self._store_epochs.get(shard_id) != epoch
        }
        if not changed:
            return ()
        service = self.service
        if isinstance(resolved, ShardedModelStore):
            affected = sorted(
                name
                for name in service.servers
                if resolved.shard_for(name).root.name in changed
            )
        else:
            affected = sorted(service.servers)
        reloaded = {name: resolved.load_model(name) for name in affected}
        merged = dict(service.models)
        merged.update(reloaded)
        service.use_models(merged)
        self._warm_store = resolved
        self._store_epochs = current
        self.recorder.count("serving.shard_reloads", len(changed))
        self._ensure_current()
        return tuple(affected)

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "FederationFrontend":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- model-epoch tracking ----------------------------------------------

    @property
    def compiled_epoch(self) -> int:
        """Model epoch the current scorer/caches were built against."""
        return self._compiled_epoch

    def invalidate(self) -> None:
        """Drop caches and force a scorer recompile on the next query."""
        self.analyzed_queries.clear()
        self.selections.clear()
        self._scorer = None
        self._compiled_epoch = -1

    def _ensure_current(self) -> None:
        """Recompile the scorer and drop caches if new models landed."""
        service = self.service
        if not service.models:
            raise RuntimeError("no language models acquired yet; call learn_models()")
        epoch = service.model_epoch
        if epoch == self._compiled_epoch:
            return
        self.analyzed_queries.clear()
        self.selections.clear()
        if isinstance(service.selector, CoriSelector):
            with self.recorder.span("compile_scorer", epoch=epoch) as span:
                self._scorer = CoriScorer(
                    service.models,
                    service.selector.params,
                    analyzer=service.selector.analyzer,
                )
                span.set(
                    databases=self._scorer.num_databases,
                    vocabulary=self._scorer.vocabulary_size,
                )
        else:
            self._scorer = None
        self._compiled_epoch = epoch

    # -- selection ---------------------------------------------------------

    def _analyzed(self, query: str) -> tuple[str, ...]:
        terms = self.analyzed_queries.get(query)
        if terms is None:
            analyzer = (
                self.service.selector.analyzer
                if isinstance(self.service.selector, CoriSelector)
                else None
            )
            terms = tuple(analyze_query(query, analyzer))
            self.analyzed_queries.put(query, terms)
        return terms

    def select(self, query: str) -> DatabaseRanking:
        """Rank the databases for ``query`` (cached, vectorized).

        Produces the same ranking ``service.select`` would, via the
        compiled scorer when the service selects with CORI.
        """
        self._ensure_current()
        if self._scorer is None:
            # Non-CORI selector: cache its rankings, keyed by raw query.
            key = (query, self._compiled_epoch)
            ranking = self.selections.get(key)
            if ranking is None:
                ranking = self.service.select(query)
                self.selections.put(key, ranking)
            return ranking
        terms = self._analyzed(query)
        key = (terms, self._compiled_epoch)
        ranking = self.selections.get(key)
        if ranking is None:
            ranking = self._scorer.rank_terms(query, terms)
            self.selections.put(key, ranking)
            return ranking
        if ranking.query == query:
            return ranking
        # Cache hit from a differently spelled query with the same
        # analyzed terms: rankings are identical, relabel the query.
        return DatabaseRanking(query=query, entries=ranking.entries)

    # -- query answering ---------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="serving-fanout"
            )
        return self._executor

    def _search_backend(self, name: str, request: SearchRequest) -> _BackendOutcome:
        """Run one backend retrieval on a pool thread; never raises
        transport errors (they become a drop, not a crash)."""
        server = self.service.servers[name]
        started = time.perf_counter()
        try:
            results = server.engine.search(  # type: ignore[attr-defined]
                request.query, n=request.docs_per_database
            )
        except ServerError as error:
            return None, time.perf_counter() - started, type(error).__name__
        return results, time.perf_counter() - started, None

    def search(self, request: SearchRequest) -> FederatedResponse:
        """Answer ``request`` with cached selection and concurrent fan-out.

        Selected backends run concurrently, each holding the full
        ``request.deadline`` budget; a backend that misses it (or raises
        a :class:`~repro.sampling.transport.ServerError`) is dropped
        from the merge and listed in ``response.dropped``.
        """
        return self.search_incremental(request)

    def search_incremental(
        self,
        request: SearchRequest,
        on_partial: Callable[[PartialUpdate], None] | None = None,
    ) -> FederatedResponse:
        """Answer ``request``, flushing early merges as backends complete.

        Identical to :meth:`search` — same fan-out, same deadline
        semantics, same final response — except that when
        ``on_partial`` is given it is called with a
        :class:`PartialUpdate` every time one or more backends complete
        while others are still outstanding: the first merged hits reach
        the caller as soon as the *fastest* backends answer, instead of
        waiting out the slowest (or the deadline).  The network gateway
        (:mod:`repro.gateway`) turns these into streamed partial
        frames.

        ``on_partial`` runs on the calling thread, between fan-out
        waits; a slow callback delays later partials but never the
        backends themselves.
        """
        recorder = self.recorder
        with recorder.span("frontend_search", query=request.query) as span:
            ranking = self.select(request.query)
            selected, routing = self.service.resolve_candidates(request, ranking)
            # Misconfiguration (a selected backend with no retrieval
            # engine) stays a hard error; only runtime failures degrade.
            for name in selected:
                self.service.require_retrievable(name)
            futures: dict[Future[_BackendOutcome], str] = {
                self._pool().submit(self._search_backend, name, request): name
                for name in selected
            }
            started = time.perf_counter()
            pending = set(futures)
            per_database: dict[str, list[SearchResult]] = {}
            timings: dict[str, float] = {}
            failures: dict[str, str] = {}
            sequence = 0
            while pending:
                remaining = None
                if request.deadline is not None:
                    remaining = request.deadline - (time.perf_counter() - started)
                    if remaining <= 0:
                        break
                done, pending = wait(
                    pending,
                    timeout=remaining,
                    return_when=FIRST_COMPLETED if on_partial else ALL_COMPLETED,
                )
                if not done:  # deadline ran out with backends still pending
                    break
                for future in done:
                    name = futures[future]
                    results, elapsed, error = future.result()
                    timings[name] = elapsed
                    recorder.observe("backend_search", elapsed)
                    if error is not None or results is None:
                        failures[name] = error or "unknown"
                        recorder.event(
                            "backend_dropped", database=name, reason=error or "unknown"
                        )
                    else:
                        per_database[name] = results
                if on_partial is not None and pending and per_database:
                    sequence += 1
                    early = self.service.merger.merge(
                        ranking, per_database, n=request.n
                    )
                    recorder.count("serving.partial_flushes")
                    on_partial(
                        PartialUpdate(
                            query=request.query,
                            sequence=sequence,
                            results=tuple(early),
                            searched=tuple(
                                name for name in selected if name in per_database
                            ),
                            pending=tuple(
                                sorted(futures[future] for future in pending)
                            ),
                        )
                    )
            timed_out = {futures[future] for future in pending}
            for future in pending:
                future.cancel()
            for name in sorted(timed_out):
                recorder.event("backend_dropped", database=name, reason="deadline")
            searched = tuple(name for name in selected if name in per_database)
            dropped = tuple(
                name for name in selected if name in failures or name in timed_out
            )
            merged = self.service.merger.merge(ranking, per_database, n=request.n)
            recorder.count("serving.queries")
            if dropped:
                recorder.count("serving.degraded_queries")
            span.set(searched=list(searched), dropped=list(dropped), results=len(merged))
        return FederatedResponse(
            query=request.query,
            ranking=ranking,
            searched=searched,
            results=tuple(merged),
            dropped=dropped,
            timings=timings,
            routing=routing,
        )

    def search_many(
        self, requests: Iterable[SearchRequest]
    ) -> list[FederatedResponse]:
        """Answer a batch of requests (experiment replay).

        Requests are answered in order — each one's fan-out is already
        concurrent — so responses align with the input sequence and
        warm the caches for later duplicates.
        """
        batch: Sequence[SearchRequest] = list(requests)
        with self.recorder.span("search_many", requests=len(batch)):
            return [self.search(request) for request in batch]
