"""High-throughput federated query serving.

The paper's end product is a *database selection service*: something
that fields live queries against many text databases, fast.  This
package is that serving layer, wrapped around the library's
:class:`~repro.federation.service.FederatedSearchService`:

* :class:`FederationFrontend` — vectorized CORI selection (a
  :class:`~repro.dbselect.vectorized.CoriScorer` compiled once per
  model epoch), LRU caches over query analysis and selection rankings
  (invalidated on model installs), and concurrent backend fan-out with
  per-backend deadlines that degrade — a slow or failing backend is
  dropped and reported, never fatal.
* :class:`LruCache` — the bounded cache primitive, instrumented through
  :mod:`repro.obs`.
* :func:`run_serve_bench` / ``repro serve-bench`` — throughput
  measurement of the serving path against its serial/scalar baselines.

Requests and responses are the service's own
:class:`~repro.federation.service.SearchRequest` /
:class:`~repro.federation.service.FederatedResponse` types, re-exported
here so serving callers import one package.
"""

from repro.federation.service import FederatedResponse, SearchRequest
from repro.serving.bench import (
    LatencyInjected,
    ServeBenchReport,
    build_synthetic_federation,
    format_serve_bench,
    queries_from_models,
    run_serve_bench,
)
from repro.serving.cache import LruCache
from repro.serving.frontend import FederationFrontend, PartialUpdate

__all__ = [
    "FederatedResponse",
    "FederationFrontend",
    "LatencyInjected",
    "LruCache",
    "PartialUpdate",
    "SearchRequest",
    "ServeBenchReport",
    "build_synthetic_federation",
    "format_serve_bench",
    "queries_from_models",
    "run_serve_bench",
]
