"""The ``repro serve-bench`` harness: throughput of the serving path.

Measures the three layers the serving frontend adds — vectorized
selection, selection caching, concurrent fan-out — against their
baselines (scalar CORI, cold caches, the service's serial retrieval
loop) on one federation, and reports ops/sec per mode plus the derived
speedups.  The same functions back the CLI subcommand, the CI smoke
run, and the ``benchmarks/test_bench_serving.py`` perf baselines.

Backend latency can be injected (:class:`LatencyInjected`) to model
remote databases: the serial loop pays the latency once per selected
backend, the concurrent fan-out pays it roughly once per query — the
gap *is* the point of the fan-out.

With a :class:`~repro.classify.TopicRouter` (``--route-topics``), an
extra ``search_routed`` mode runs the same fan-out with the CORI
candidate set restricted to the query's classified topics; the report
then also carries mean ``databases_per_query`` per mode, so the
fan-out saving is visible next to the throughput numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.backend import EvaluableDatabase, SearchableDatabase
from repro.corpus.document import Document
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.federation.testbed import build_skewed_partition
from repro.index.server import DatabaseServer
from repro.lm.model import LanguageModel
from repro.serving.frontend import FederationFrontend
from repro.synth.profiles import PROFILES_BY_NAME
from repro.utils.stats import latency_summary

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.classify.router import TopicRouter

__all__ = [
    "LatencyInjected",
    "ServeBenchReport",
    "build_synthetic_federation",
    "format_serve_bench",
    "queries_from_models",
    "run_serve_bench",
]


class _DelayedEngine:
    """Engine proxy that sleeps before every search (simulated RTT)."""

    def __init__(self, inner, delay: float) -> None:
        self._inner = inner
        self._delay = delay

    def search(self, query: str, n: int = 10):
        time.sleep(self._delay)
        return self._inner.search(query, n=n)


class LatencyInjected:
    """A retrievable database whose every search pays a fixed latency.

    Unlike the transport layer's fault injector (which perturbs
    *sampling* queries), this wrapper targets the ranked-retrieval
    engine the federated fan-out calls — the serving-side analogue of a
    slow remote backend.
    """

    def __init__(self, inner: SearchableDatabase, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.inner = inner
        self.name = getattr(inner, "name", "database")
        self.engine = _DelayedEngine(inner.engine, delay)  # type: ignore[attr-defined]

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        """Delegate sampling queries unchanged."""
        return self.inner.run_query(query, max_docs=max_docs)


def build_synthetic_federation(
    num_databases: int = 4,
    scale: float = 0.05,
    seed: int = 0,
    profile: str = "wsj88",
) -> dict[str, DatabaseServer]:
    """A topically skewed federation over one synthetic corpus."""
    corpus = PROFILES_BY_NAME[profile]().build(seed=seed, scale=scale)
    parts = build_skewed_partition(corpus, num_databases=num_databases, seed=seed)
    return {part.name: DatabaseServer(part) for part in parts}


def queries_from_models(
    models: Mapping[str, LanguageModel], count: int, terms_per_query: int = 3
) -> list[str]:
    """Deterministic bench queries from the federation's own vocabulary.

    Interleaves each database's frequent terms so queries discriminate
    between databases instead of all hitting the global head.
    """
    if count <= 0 or terms_per_query <= 0:
        raise ValueError("count and terms_per_query must be positive")
    pool: list[str] = []
    seen: set[str] = set()
    per_model = max(2, (count * terms_per_query) // max(len(models), 1) + 1)
    for model in models.values():
        for stats in model.top_terms(per_model + 5, "ctf"):
            if len(stats.term) >= 3 and stats.term not in seen:
                seen.add(stats.term)
                pool.append(stats.term)
    if not pool:
        raise ValueError("models have no usable vocabulary for bench queries")
    return [
        " ".join(
            pool[(i * terms_per_query + j) % len(pool)] for j in range(terms_per_query)
        )
        for i in range(count)
    ]


def _throughput(
    operation: Callable[[], object], budget: float
) -> tuple[float, int, Mapping[str, float]]:
    """(seconds per op, ops, latency summary) within a time budget.

    Every operation is timed individually so the summary carries the
    tail (p95/p99), not just the mean that ops/sec alone would give.
    """
    operation()  # warm-up, uncounted
    samples: list[float] = []
    started = time.perf_counter()
    while True:
        before = time.perf_counter()
        operation()
        now = time.perf_counter()
        samples.append(now - before)
        if now - started >= budget:
            break
    elapsed = now - started
    return elapsed / len(samples), len(samples), latency_summary(samples)


@dataclass(frozen=True)
class ServeBenchReport:
    """Everything one serve-bench run measured."""

    num_databases: int
    num_queries: int
    backend_latency: float
    #: mode → (seconds per op, ops measured)
    modes: Mapping[str, tuple[float, int]]
    #: label → before/after ratio
    speedups: Mapping[str, float]
    #: mode → per-op latency summary in seconds (count/mean/min/max/p50/p95/p99)
    latency: Mapping[str, Mapping[str, float]]
    #: mode → mean databases searched per query (populated when routing)
    fanout: Mapping[str, float] = field(default_factory=dict)


def run_serve_bench(
    servers: Mapping[str, DatabaseServer],
    queries: Sequence[str] | None = None,
    *,
    num_queries: int = 12,
    budget: float = 0.5,
    workers: int = 8,
    backend_latency: float = 0.0,
    databases_per_query: int = 3,
    models: Mapping[str, LanguageModel] | None = None,
    router: "TopicRouter | None" = None,
) -> ServeBenchReport:
    """Benchmark serial/scalar/cold baselines against the serving path.

    ``budget`` is the wall-clock budget *per measured mode* (six
    modes).  ``models`` defaults to the databases' actual language
    models — the bench measures serving, not acquisition; pass a
    store-loaded set (``repro serve-bench --models DIR``) to bench the
    warm-start path instead.  With ``router``, a seventh
    ``search_routed`` mode re-runs the concurrent fan-out with
    topic-aware candidate restriction, and ``report.fanout`` compares
    mean databases searched per query between the two fan-out modes.
    """
    if models is None:
        models = {
            name: server.actual_language_model()
            for name, server in servers.items()
            if isinstance(server, EvaluableDatabase)
        }
        if set(models) != set(servers):
            raise TypeError("serve-bench needs evaluable databases (actual models)")
    else:
        missing = set(servers) - set(models)
        if missing:
            raise TypeError(f"serve-bench models missing databases: {sorted(missing)}")
        models = {name: models[name] for name in servers}
    if queries is None:
        queries = queries_from_models(models, num_queries)
    depth = min(databases_per_query, len(servers))

    service = FederatedSearchService(servers, databases_per_query=depth)
    service.use_models(models)

    modes: dict[str, tuple[float, int]] = {}
    latency: dict[str, Mapping[str, float]] = {}

    def measure(mode: str, operation: Callable[[], object]) -> None:
        seconds, ops, summary = _throughput(operation, budget)
        modes[mode] = (seconds, ops)
        latency[mode] = summary

    def cycle(run_one: Callable[[str], object]) -> Callable[[], object]:
        state = {"i": 0}

        def step() -> object:
            query = queries[state["i"] % len(queries)]
            state["i"] += 1
            return run_one(query)

        return step

    # Selection: scalar reference vs compiled scorer vs caches.
    measure("select_scalar", cycle(service.select))
    with FederationFrontend(service, max_workers=workers) as frontend:
        frontend.select(queries[0])  # compile outside the timed region

        def cold_select(query: str) -> object:
            frontend.analyzed_queries.clear()
            frontend.selections.clear()
            return frontend.select(query)

        measure("select_vectorized", cycle(cold_select))
        modes["select_cold_cache"] = modes["select_vectorized"]
        latency["select_cold_cache"] = latency["select_vectorized"]
        measure("select_warm_cache", cycle(frontend.select))

    # End-to-end retrieval: serial service loop vs concurrent fan-out,
    # optionally against latency-injected backends.
    fanout_servers: Mapping[str, SearchableDatabase] = servers
    if backend_latency > 0:
        fanout_servers = {
            name: LatencyInjected(server, backend_latency)
            for name, server in servers.items()
        }
    fanout_service = FederatedSearchService(fanout_servers, databases_per_query=depth)
    fanout_service.use_models(models)
    measure(
        "search_serial",
        cycle(lambda query: fanout_service.search(SearchRequest(query=query))),
    )
    with FederationFrontend(fanout_service, max_workers=workers) as frontend:
        measure(
            "search_concurrent",
            cycle(lambda query: frontend.search(SearchRequest(query=query))),
        )

    fanout: dict[str, float] = {}
    if router is not None:
        routed_service = FederatedSearchService(
            fanout_servers, databases_per_query=depth, router=router
        )
        routed_service.use_models(models)
        searched: list[int] = []
        with FederationFrontend(routed_service, max_workers=workers) as frontend:

            def routed_one(query: str) -> object:
                response = frontend.search(SearchRequest(query=query))
                searched.append(len(response.searched))
                return response

            measure("search_routed", cycle(routed_one))
        fanout = {
            "search_concurrent": float(depth),
            "search_routed": sum(searched) / len(searched) if searched else 0.0,
        }

    speedups = {
        "vectorized_vs_scalar_select": modes["select_scalar"][0]
        / modes["select_vectorized"][0],
        "warm_vs_cold_cache_select": modes["select_cold_cache"][0]
        / modes["select_warm_cache"][0],
        "concurrent_vs_serial_fanout": modes["search_serial"][0]
        / modes["search_concurrent"][0],
    }
    if "search_routed" in modes:
        speedups["routed_vs_broadcast_search"] = (
            modes["search_concurrent"][0] / modes["search_routed"][0]
        )
    return ServeBenchReport(
        num_databases=len(servers),
        num_queries=len(queries),
        backend_latency=backend_latency,
        modes=modes,
        speedups=speedups,
        latency=latency,
        fanout=fanout,
    )


def format_serve_bench(report: ServeBenchReport) -> str:
    """Human-readable serve-bench tables (CLI output)."""
    from repro.experiments.reporting import format_table

    mode_rows = []
    for mode, (seconds, ops) in report.modes.items():
        summary = report.latency.get(mode, {})
        mode_rows.append(
            {
                "mode": mode,
                "ops_per_sec": round(1.0 / seconds, 1) if seconds > 0 else float("inf"),
                "ms_per_op": round(seconds * 1000.0, 4),
                "p50_ms": round(summary.get("p50", 0.0) * 1000.0, 4),
                "p95_ms": round(summary.get("p95", 0.0) * 1000.0, 4),
                "p99_ms": round(summary.get("p99", 0.0) * 1000.0, 4),
                "ops": ops,
            }
        )
    speedup_rows = [
        {"speedup": label, "x": round(value, 2)}
        for label, value in report.speedups.items()
    ]
    title = (
        f"serve-bench: {report.num_databases} databases, "
        f"{report.num_queries} queries, "
        f"{report.backend_latency * 1000:.0f}ms injected backend latency"
    )
    rendered = (
        format_table(mode_rows, title=title)
        + "\n\n"
        + format_table(speedup_rows, title="Derived speedups")
    )
    if report.fanout:
        fanout_rows = [
            {"mode": mode, "databases_per_query": round(value, 2)}
            for mode, value in report.fanout.items()
        ]
        rendered += "\n\n" + format_table(
            fanout_rows, title="Fan-out (topic-aware routing)"
        )
    return rendered
