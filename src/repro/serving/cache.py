"""Serving-side caches: analyzed queries and selection rankings.

A selection service sees heavy query repetition (head queries, replayed
experiment batches), and both stages of the selection hot path are pure
functions of inputs the service controls:

* query analysis depends only on the query text and the analyzer;
* the database ranking depends only on the analyzed terms and the
  installed model set — versioned by the service's *model epoch*.

So the serving frontend puts a small LRU in front of each stage and
invalidates whenever the model epoch moves (new models installed by
``learn_models`` / ``use_models`` / a staleness refresh).  The cache
keeps its own hit/miss/eviction counts and mirrors them into a
:class:`~repro.obs.trace.Recorder` so ``repro trace`` reports and the
metrics snapshot see cache behaviour without extra wiring.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.obs.trace import NULL_RECORDER, Recorder

__all__ = ["LruCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Distinguishes "key absent" from a cached falsy value.
_MISSING = object()


class LruCache(Generic[K, V]):
    """A bounded mapping evicting the least recently used entry.

    Thread-safe: the cache sits behind
    :class:`~repro.serving.frontend.FederationFrontend`'s concurrent
    fan-out and batch entry points, so every operation — including the
    hit/miss/eviction counters and the recency reordering — runs under
    one internal lock.  Operations are O(1) dictionary moves, so the
    critical sections are tiny.

    Parameters
    ----------
    maxsize:
        Entry budget; inserting beyond it evicts the least recently
        *used* (looked-up or inserted) entry.
    name:
        Metric namespace — hits and misses are counted as
        ``{name}.hit`` / ``{name}.miss`` on ``recorder``.
    recorder:
        Observability sink; the default no-op recorder keeps lookups
        allocation-free.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        *,
        name: str = "cache",
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.name = name
        self.recorder = recorder
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: K) -> V | None:
        """The cached value for ``key``, or ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                self.recorder.count(f"{self.name}.miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.recorder.count(f"{self.name}.hit")
            return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
            if len(entries) > self.maxsize:
                entries.popitem(last=False)
                self.evictions += 1
                self.recorder.count(f"{self.name}.eviction")

    def clear(self) -> None:
        """Drop every entry (hit/miss counts survive — they are history)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LruCache(name={self.name!r}, size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
