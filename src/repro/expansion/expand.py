"""EMIM-weighted co-occurrence query expansion."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.expansion.cooccurrence import SampleCollection
from repro.lm.model import LanguageModel


@dataclass(frozen=True)
class ExpansionTerm:
    """One candidate expansion term with its association score."""

    term: str
    score: float


@dataclass(frozen=True)
class ExpandedQuery:
    """A query plus its expansion terms."""

    original: str
    expansions: tuple[ExpansionTerm, ...]

    @property
    def text(self) -> str:
        """The expanded query string (original terms first)."""
        return " ".join([self.original, *(e.term for e in self.expansions)])


class QueryExpander:
    """Expands queries from a sample collection's co-occurrence patterns.

    Candidate terms are scored by **EMIM** (expected mutual information
    measure) against each query term:

    .. code-block:: text

        emim(q, u) = n(q, u) · log( N · n(q, u) / (n(q) · n(u)) )

    where ``n(·)`` are document frequencies within the collection and
    ``N`` its size.  Scores sum over query terms; negative associations
    are clamped to zero.
    """

    def __init__(self, collection: SampleCollection, min_df: int = 2) -> None:
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.collection = collection
        self.min_df = min_df

    def expand(self, query: str, k: int = 5) -> ExpandedQuery:
        """Return ``query`` with its top ``k`` expansion terms."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        query_terms = self.collection.analyzer.analyze(query)
        total = len(self.collection)
        scores: Counter = Counter()
        for query_term in query_terms:
            n_q = self.collection.df(query_term)
            if n_q == 0:
                continue
            for term, n_qu in self.collection.cooccurrence_counts(query_term).items():
                n_u = self.collection.df(term)
                if n_u < self.min_df or len(term) < 3 or term.isdigit():
                    continue
                association = n_qu * math.log(total * n_qu / (n_q * n_u))
                if association > 0:
                    scores[term] += association
        for term in query_terms:
            scores.pop(term, None)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]
        return ExpandedQuery(
            original=query,
            expansions=tuple(ExpansionTerm(term=t, score=s) for t, s in ranked),
        )


def expansion_bias(
    expanded: ExpandedQuery, models: dict[str, LanguageModel]
) -> dict[str, float]:
    """How strongly an expansion favors each database.

    Each expansion term's occurrence mass is split across the databases
    in proportion to its ctf in their language models; a database's
    bias is the score-weighted average of those shares.  Values sum to
    ~1 across databases (terms unknown everywhere contribute nothing).
    An expansion mined from a single database's sample concentrates on
    vocabulary characteristic of that database (its share exceeds
    1/|databases|); an expansion mined from the union of samples
    spreads more evenly — the effect extension experiment Ext-2
    measures.
    """
    total = sum(e.score for e in expanded.expansions)
    bias = {name: 0.0 for name in models}
    if total == 0:
        return bias
    for expansion in expanded.expansions:
        term_mass = sum(model.ctf(expansion.term) for model in models.values())
        if term_mass == 0:
            continue
        for name, model in models.items():
            share = model.ctf(expansion.term) / term_mass
            bias[name] += (expansion.score / total) * share
    return bias
