"""Document-level co-occurrence statistics over sampled documents.

The collection keeps, per document, the multiset of analyzed terms and
the source database name, plus an inverted term → document-index map so
"which documents contain term t" is O(1).  Pairwise co-occurrence
counts are computed lazily per query term (materialising the full
term-pair matrix would be quadratic in vocabulary for no benefit).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.corpus.document import Document
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class SampleDocument:
    """One sampled document, analyzed, with provenance."""

    doc_id: str
    source: str
    term_counts: dict[str, int]

    @property
    def length(self) -> int:
        """Token count after analysis."""
        return sum(self.term_counts.values())


@dataclass
class SampleCollection:
    """The union (or any subset) of per-database document samples."""

    analyzer: Analyzer = field(default_factory=Analyzer.stopped)
    _documents: list[SampleDocument] = field(default_factory=list)
    _postings: dict[str, list[int]] = field(default_factory=dict)
    _df: Counter = field(default_factory=Counter)

    def add_document(self, document: Document, source: str) -> None:
        """Analyze and add one sampled document from database ``source``."""
        counts = dict(Counter(self.analyzer.analyze(document.text)))
        index = len(self._documents)
        self._documents.append(
            SampleDocument(doc_id=document.doc_id, source=source, term_counts=counts)
        )
        for term in counts:
            self._postings.setdefault(term, []).append(index)
            self._df[term] += 1

    def add_sample(self, documents: Iterable[Document], source: str) -> None:
        """Add a whole database sample."""
        for document in documents:
            self.add_document(document, source)

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def documents(self) -> list[SampleDocument]:
        """All sample documents (list is the collection's own; don't mutate)."""
        return self._documents

    @property
    def sources(self) -> set[str]:
        """The set of database names represented."""
        return {document.source for document in self._documents}

    def df(self, term: str) -> int:
        """Number of sample documents containing ``term``."""
        return self._df.get(term, 0)

    def documents_containing(self, term: str) -> list[SampleDocument]:
        """All sample documents containing ``term``."""
        return [self._documents[i] for i in self._postings.get(term, ())]

    def cooccurrence_counts(self, term: str) -> Counter:
        """df-style co-occurrence: for each u, #docs containing both."""
        counts: Counter = Counter()
        for index in self._postings.get(term, ()):
            for other in self._documents[index].term_counts:
                counts[other] += 1
        counts.pop(term, None)
        return counts

    def source_counts(self, term: str) -> Counter:
        """How many containing documents come from each source database."""
        counts: Counter = Counter()
        for index in self._postings.get(term, ()):
            counts[self._documents[index].source] += 1
        return counts
