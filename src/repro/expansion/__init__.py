"""Co-occurrence query expansion from sample unions (paper Section 8).

Co-occurrence-based query expansion needs a representative document
collection to mine expansion terms from.  For *database selection*
queries, expanding from any single database biases selection toward
that database; the paper's insight is that the union of the sampling
service's document samples s₁ ∪ s₂ ∪ … ∪ sₙ "favors no specific
database, but reflects patterns that are common to them all" — it is
the right expansion collection.

:class:`SampleCollection` stores analyzed sample documents (with their
source database), :class:`QueryExpander` mines doc-level co-occurrence
statistics (EMIM-weighted) from one, and :func:`expansion_bias`
quantifies how much an expansion favors each source database — the
measurement behind extension experiment Ext-2.
"""

from repro.expansion.cooccurrence import SampleCollection, SampleDocument
from repro.expansion.expand import ExpandedQuery, ExpansionTerm, QueryExpander, expansion_bias

__all__ = [
    "ExpandedQuery",
    "ExpansionTerm",
    "QueryExpander",
    "SampleCollection",
    "SampleDocument",
    "expansion_bias",
]
