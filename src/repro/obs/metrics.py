"""Counters and timers: structured metrics for the backend seam.

Generalizes the per-server :class:`~repro.index.server.QueryCosts`
dataclass into reusable primitives any layer can meter itself with:
a :class:`Counter` accumulates occurrences or sizes, a :class:`Timer`
accumulates durations with min/max, and a :class:`MetricSet` is a
lazily populated registry of both, snapshotable to plain dicts for
reports and JSON emission.

Ipeirotis & Gravano's query-probing line of work (PAPERS.md) shows
that richer per-probe accounting is what enables smarter acquisition
policies; these primitives are that accounting, one level below the
span/trace layer of :mod:`repro.obs.trace` (a
:class:`~repro.obs.trace.TraceRecorder` owns a :class:`MetricSet` and
feeds it automatically from finished spans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Counter", "MetricSet", "Timer"]


@dataclass
class Counter:
    """A monotonically growing count (queries, retries, bytes, ...)."""

    name: str
    value: float = 0

    def add(self, amount: float = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only grow; use a separate counter instead")
        self.value += amount


@dataclass
class Timer:
    """Accumulated durations of one repeated operation."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one observed duration into the aggregate."""
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self.count += 1
        self.total += seconds
        self.min = seconds if seconds < self.min else self.min
        self.max = seconds if seconds > self.max else self.max

    @property
    def mean(self) -> float:
        """Average observed duration (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


class MetricSet:
    """A lazily populated registry of named counters and timers."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        """The timer called ``name`` (created on first use)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def count(self, name: str, amount: float = 1) -> None:
        """Shorthand for ``self.counter(name).add(amount)``."""
        self.counter(name).add(amount)

    def counters(self) -> Iterator[Counter]:
        """All counters, in creation order."""
        return iter(self._counters.values())

    def timers(self) -> Iterator[Timer]:
        """All timers, in creation order."""
        return iter(self._timers.values())

    def update_from(self, values: Mapping[str, float], prefix: str = "") -> None:
        """Fold a plain name → value mapping into namespaced counters.

        Bridges legacy meters — e.g.
        ``metrics.update_from(server.costs.as_dict(), prefix="server.")``
        folds a :class:`~repro.index.server.QueryCosts` into this set.
        """
        for name, value in values.items():
            self.count(f"{prefix}{name}", value)

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every metric, for reports and JSON."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "timers": {
                name: {
                    "count": t.count,
                    "total": t.total,
                    "mean": t.mean,
                    "min": (0.0 if t.count == 0 else t.min),
                    "max": t.max,
                }
                for name, t in self._timers.items()
            },
        }
