"""Structured observability for the sampling/federation stack.

Three small layers, all optional and all off by default:

* :mod:`repro.obs.trace` — spans and events.  Every instrumented
  layer (sampler, transport, acquisition, pool, federation) accepts a
  :class:`Recorder`; the default :data:`NULL_RECORDER` is a shared
  no-op so un-traced runs pay nothing, while a :class:`TraceRecorder`
  captures one span per sampling run / query / acquisition plus
  retry and circuit-breaker events, and writes JSON-lines traces.
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Timer` /
  :class:`MetricSet` primitives generalizing the per-server
  :class:`~repro.index.server.QueryCosts`; a trace recorder feeds its
  metric set automatically from finished spans and events.
* :mod:`repro.obs.report` — the ``repro trace`` report: reads a JSONL
  trace and renders per-database query volume, failures, retries,
  circuit-breaker activity, bytes moved, and latency quantiles.
"""

from repro.obs.metrics import Counter, MetricSet, Timer
from repro.obs.report import (
    DatabaseTraceSummary,
    format_trace_report,
    read_trace,
    summarize_trace,
)
from repro.obs.trace import (
    NULL_RECORDER,
    Clock,
    NullRecorder,
    Recorder,
    Span,
    TraceRecorder,
    WallClock,
)

__all__ = [
    "NULL_RECORDER",
    "Clock",
    "Counter",
    "DatabaseTraceSummary",
    "MetricSet",
    "NullRecorder",
    "Recorder",
    "Span",
    "Timer",
    "TraceRecorder",
    "WallClock",
    "format_trace_report",
    "read_trace",
    "summarize_trace",
]
