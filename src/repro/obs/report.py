"""Trace-file analysis: the ``repro trace`` report.

Reads a JSONL trace emitted by
:meth:`~repro.obs.trace.TraceRecorder.write_jsonl` and aggregates it
into the summary an operator actually wants from a sampling /
federation run: per-database query volume, failure and retry activity,
circuit-breaker behaviour, bytes moved, and the query latency
distribution (p50 / p95 / max in clock seconds — simulated or wall,
whichever clock the recorder ran on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

__all__ = ["DatabaseTraceSummary", "format_trace_report", "read_trace", "summarize_trace"]

#: Event names the transport layer emits (counted per database).
_RETRY_EVENTS = ("retry",)
_CIRCUIT_EVENTS = ("circuit_opened", "circuit_rejected", "circuit_closed")


def read_trace(path_or_handle: str | IO[str]) -> list[dict[str, object]]:
    """Parse a JSONL trace file into record dicts (meta line included).

    Raises ``ValueError`` on malformed JSON, with the line number.
    """
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "r", encoding="utf-8") as handle:
            return read_trace(handle)
    records = []
    for lineno, line in enumerate(path_or_handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed trace line {lineno}: {exc}") from exc
    return records


@dataclass
class DatabaseTraceSummary:
    """Aggregated trace activity of one database."""

    database: str
    queries: int = 0
    errors: int = 0
    retries: int = 0
    circuit_events: int = 0
    documents: int = 0
    bytes_returned: int = 0
    backoff_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)

    def latency_quantile(self, q: float) -> float:
        """The ``q``-quantile of query latency (nearest-rank, 0 if empty)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]


def _attr(record: dict[str, object], key: str) -> object:
    attributes = record.get("attributes")
    if isinstance(attributes, dict):
        return attributes.get(key)
    return None


def summarize_trace(
    records: Iterable[dict[str, object]],
) -> dict[str, DatabaseTraceSummary]:
    """Aggregate trace records per database (name → summary).

    Records without a ``database`` attribute (meta line, service-level
    spans) are grouped under ``"-"`` only when they are query spans or
    transport events; purely structural spans are skipped.
    """
    summaries: dict[str, DatabaseTraceSummary] = {}

    def summary_for(record: dict[str, object]) -> DatabaseTraceSummary:
        database = _attr(record, "database")
        name = database if isinstance(database, str) else "-"
        if name not in summaries:
            summaries[name] = DatabaseTraceSummary(database=name)
        return summaries[name]

    for record in records:
        kind = record.get("type")
        name = record.get("name")
        if kind == "span" and name == "query":
            summary = summary_for(record)
            summary.queries += 1
            if record.get("status") == "error" or _attr(record, "error"):
                summary.errors += 1
            duration = record.get("duration")
            if isinstance(duration, (int, float)):
                summary.latencies.append(float(duration))
            returned = _attr(record, "documents_returned")
            if isinstance(returned, int):
                summary.documents += returned
            size = _attr(record, "bytes_returned")
            if isinstance(size, int):
                summary.bytes_returned += size
        elif kind == "event" and name in _RETRY_EVENTS:
            summary = summary_for(record)
            summary.retries += 1
            delay = _attr(record, "delay")
            if isinstance(delay, (int, float)):
                summary.backoff_seconds += float(delay)
        elif kind == "event" and name in _CIRCUIT_EVENTS:
            summary_for(record).circuit_events += 1
    return summaries


def format_trace_report(records: Iterable[dict[str, object]]) -> str:
    """Render the per-database summary table plus run-level totals."""
    # Imported lazily: repro.obs is imported by the sampling layer, and
    # repro.experiments imports sampling — a module-level import here
    # would close that cycle.
    from repro.experiments.reporting import format_table

    materialized = list(records)
    summaries = summarize_trace(materialized)
    span_count = sum(1 for r in materialized if r.get("type") == "span")
    event_count = sum(1 for r in materialized if r.get("type") == "event")
    header = f"Trace: {span_count} spans, {event_count} events"
    if not summaries:
        return f"{header}\n(no query activity recorded)"
    rows = []
    for name in sorted(summaries):
        summary = summaries[name]
        rows.append(
            {
                "database": summary.database,
                "queries": summary.queries,
                "errors": summary.errors,
                "retries": summary.retries,
                "circuit": summary.circuit_events,
                "docs": summary.documents,
                "bytes": summary.bytes_returned,
                "backoff_s": round(summary.backoff_seconds, 3),
                "lat_p50": round(summary.latency_quantile(0.50), 6),
                "lat_p95": round(summary.latency_quantile(0.95), 6),
                "lat_max": round(max(summary.latencies, default=0.0), 6),
            }
        )
    return "\n".join([header, format_table(rows, title="Per-database activity")])
