"""Spans, events, and the trace recorder.

One structured-observability surface for every layer that touches a
database: the sampler opens a span per sampling run and per query, the
resilient transport emits retry / circuit-breaker events, acquisition
and federation wrap their phases — all through a tiny recorder
interface with **two** implementations:

* :class:`NullRecorder` (the default everywhere, shared as
  :data:`NULL_RECORDER`) — every call is a constant-time no-op, so the
  hot sampling paths pay nothing measurable for being observable;
* :class:`TraceRecorder` — records spans and events in memory, feeds a
  :class:`~repro.obs.metrics.MetricSet`, and emits JSON-lines traces
  (``repro trace`` renders them; see :mod:`repro.obs.report`).

Timestamps come from the recorder's clock.  By default that is a wall
clock (monotonic, relative to recorder creation); pass the transport
layer's :class:`~repro.sampling.transport.SimulatedClock` — anything
with a ``now`` property — to put retries, backoff, and spans on the
same deterministic simulated timeline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, Protocol, runtime_checkable

from repro.obs.metrics import MetricSet

__all__ = [
    "NULL_RECORDER",
    "Clock",
    "NullRecorder",
    "Recorder",
    "Span",
    "TraceRecorder",
    "WallClock",
]

#: Trace-file schema identifier, bumped on breaking changes.
TRACE_SCHEMA = "repro-trace/1"


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now`` property, in seconds.

    Satisfied by :class:`~repro.sampling.transport.SimulatedClock`
    (deterministic experiments) and :class:`WallClock` (live runs).
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...  # pragma: no cover - protocol


class WallClock:
    """Monotonic wall time, zeroed at construction."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    @property
    def now(self) -> float:
        """Seconds elapsed since this clock was created."""
        return time.perf_counter() - self._start


@dataclass
class Span:
    """One timed operation (a sampling run, a query, an acquisition).

    ``attributes`` carries structured context (database, query term,
    documents returned, ...); :meth:`set` adds to it as the operation
    progresses.  ``status`` is ``"ok"`` unless the span body raised or
    a layer explicitly marked a failure via ``set(error=...)``.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    status: str = "ok"
    attributes: dict[str, object] = field(default_factory=dict)

    def set(self, **attributes: object) -> None:
        """Attach attributes; an ``error=`` attribute marks the span failed."""
        self.attributes.update(attributes)
        if attributes.get("error"):
            self.status = "error"

    @property
    def duration(self) -> float:
        """Span length in clock seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


class _NullSpan:
    """The span yielded by :class:`NullRecorder`: absorbs everything."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        """Discard attributes (no-op)."""


class _NullSpanContext:
    """A reusable no-op context manager (one shared instance)."""

    __slots__ = ()
    _SPAN = _NullSpan()

    def __enter__(self) -> _NullSpan:
        return self._SPAN

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


class _SpanContext:
    """Context manager that closes a real span on exit."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault(
                "error", getattr(exc_type, "__name__", str(exc_type))
            )
        self._recorder._finish(self._span)
        return False


class Recorder:
    """The observability surface every instrumented layer accepts.

    Both implementations share this interface; consumers hold a
    ``Recorder`` and never need to know whether tracing is on.  The
    ``enabled`` flag lets hot paths skip *computing* expensive
    attributes (byte sums, say) when nobody is listening — calling the
    recorder itself is always safe.
    """

    #: Whether spans/events are actually kept.
    enabled: bool = False

    def span(self, name: str, **attributes: object):
        """Open a span; use as ``with recorder.span("query", ...) as s:``."""
        raise NotImplementedError

    def event(self, name: str, **attributes: object) -> None:
        """Record an instantaneous event (a retry, a breaker transition)."""
        raise NotImplementedError

    def count(self, name: str, amount: float = 1) -> None:
        """Increment a named counter."""
        raise NotImplementedError

    def observe(self, name: str, seconds: float) -> None:
        """Feed one externally measured duration into the named timer.

        The span API assumes single-threaded nesting; layers that time
        work on other threads (the serving fan-out) measure locally and
        report the duration here instead.
        """
        raise NotImplementedError


class NullRecorder(Recorder):
    """Default recorder: constant-time no-ops, nothing retained."""

    enabled = False
    _CONTEXT = _NullSpanContext()

    def span(self, name: str, **attributes: object) -> _NullSpanContext:
        """Return the shared no-op span context."""
        return self._CONTEXT

    def event(self, name: str, **attributes: object) -> None:
        """Discard the event."""

    def count(self, name: str, amount: float = 1) -> None:
        """Discard the increment."""

    def observe(self, name: str, seconds: float) -> None:
        """Discard the observation."""


#: The process-wide default recorder; hot paths share this instance.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """Records spans, events, counters; emits JSON-lines traces.

    Parameters
    ----------
    clock:
        Timestamp source (``now`` property).  Defaults to a fresh
        :class:`WallClock`; pass the experiment's
        :class:`~repro.sampling.transport.SimulatedClock` to record
        deterministic simulated-time traces.
    """

    enabled = True

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.metrics = MetricSet()
        self.spans: list[Span] = []
        self.events: list[dict[str, object]] = []
        self._seq = 0
        self._stack: list[Span] = []

    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a span nested under the innermost still-open span."""
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock.now,
            attributes=dict(attributes),
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.spans.append(span)
        self.metrics.timer(span.name).observe(span.duration)
        if span.status == "error":
            self.metrics.count(f"{span.name}.errors")

    def event(self, name: str, **attributes: object) -> None:
        """Record an instantaneous event and bump its counter."""
        self.events.append(
            {
                "seq": self._next_id(),
                "type": "event",
                "name": name,
                "time": self.clock.now,
                "parent_id": self._stack[-1].span_id if self._stack else None,
                "attributes": attributes,
            }
        )
        self.metrics.count(name)

    def count(self, name: str, amount: float = 1) -> None:
        """Increment the named counter on the recorder's metric set."""
        self.metrics.count(name, amount)

    def observe(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into the named timer."""
        self.metrics.timer(name).observe(seconds)

    # -- emission ----------------------------------------------------------

    def records(self) -> list[dict[str, object]]:
        """All finished spans and events as plain dicts, in seq order."""
        rows: list[dict[str, object]] = [
            {
                "seq": span.span_id,
                "type": "span",
                "name": span.name,
                "parent_id": span.parent_id,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "status": span.status,
                "attributes": dict(span.attributes),
            }
            for span in self.spans
        ]
        rows.extend(self.events)
        rows.sort(key=lambda row: row["seq"])  # type: ignore[arg-type, return-value]
        return rows

    def write_jsonl(self, path_or_handle: str | IO[str]) -> int:
        """Emit the trace as JSON lines; returns the line count.

        The first line is a ``{"type": "meta", ...}`` header carrying
        the schema id and a metrics snapshot; every following line is
        one span or event record.
        """
        meta = {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "clock": type(self.clock).__name__,
            "metrics": self.metrics.snapshot(),
        }
        rows = self.records()
        if isinstance(path_or_handle, str):
            with open(path_or_handle, "w", encoding="utf-8") as handle:
                return self._write(handle, meta, rows)
        return self._write(path_or_handle, meta, rows)

    @staticmethod
    def _write(
        handle: IO[str], meta: dict[str, object], rows: list[dict[str, object]]
    ) -> int:
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        return 1 + len(rows)
