"""Durable checkpoint/resume for sampling runs.

A sampling run is accumulated, paid-for state — every query against a
remote database costs time and money — so the checkpointers here
persist a resumable snapshot at safe boundaries:

* :class:`SamplerCheckpointer` plugs into
  :meth:`repro.sampling.sampler.QueryBasedSampler.run` (the
  ``checkpoint=`` parameter) and writes the sampler's full
  :meth:`~repro.sampling.sampler.QueryBasedSampler.state_dict` every K
  completed queries;
* :class:`PoolCheckpointer` plugs into
  :meth:`repro.sampling.pool.SamplingPool.run` and writes every
  sampler's state plus the pool's scheduling cursor after each grant.

Both write one JSON file through the atomic temp-file +
``os.replace`` layer (:mod:`repro.utils.atomic`), so a crash at any
instant leaves either the previous checkpoint or the new one — never a
torn file.  Resume is **bit-identical**: the snapshot captures the
exact RNG state and every counter the run loop consults, so a killed
and resumed run serializes to the same bytes as an uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.trace import NULL_RECORDER, Recorder
from repro.utils.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sampling.pool import SamplingPool
    from repro.sampling.sampler import QueryBasedSampler

__all__ = ["CheckpointMismatchError", "PoolCheckpointer", "SamplerCheckpointer"]

#: Checkpoint-file schema identifiers, bumped on breaking changes.
SAMPLER_CHECKPOINT_SCHEMA = "repro-checkpoint/1"
POOL_CHECKPOINT_SCHEMA = "repro-pool-checkpoint/1"


class CheckpointMismatchError(ValueError):
    """A checkpoint cannot resume into the given sampler/pool."""


def _write_json(path: Path, payload: dict[str, Any]) -> int:
    text = json.dumps(payload, sort_keys=True)
    atomic_write_text(path, text)
    return len(text)


def _read_json(path: Path, expected_schema: str) -> dict[str, Any]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointMismatchError(
            f"{path}: checkpoint is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("schema") != expected_schema:
        raise CheckpointMismatchError(
            f"{path}: not a {expected_schema!r} checkpoint "
            f"(schema {payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path}: checkpoint is not a JSON object"
        )
    return payload


class SamplerCheckpointer:
    """Persists one sampler's resumable state every K queries.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first save); holds one
        ``sampler.json``.
    every_queries:
        Cadence for :meth:`maybe_save` — persist when this many new
        queries completed since the last save.  The run-final save is
        unconditional.
    recorder:
        Observability sink: one ``checkpoint_save`` span per write and
        a ``store.checkpoints_written`` counter.

    Usage::

        checkpointer = SamplerCheckpointer(directory, every_queries=10)
        checkpointer.resume(sampler)           # no-op on a fresh directory
        run = sampler.run(checkpoint=checkpointer)
    """

    FILENAME = "sampler.json"

    def __init__(
        self,
        directory: str | Path,
        every_queries: int = 10,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if every_queries <= 0:
            raise ValueError("every_queries must be positive")
        self.directory = Path(directory)
        self.every_queries = every_queries
        self.recorder = recorder
        self._saved_at_queries: int | None = None

    @property
    def path(self) -> Path:
        """The checkpoint file."""
        return self.directory / self.FILENAME

    def has_checkpoint(self) -> bool:
        """Whether a previous run left a checkpoint to resume from."""
        return self.path.is_file()

    def maybe_save(self, sampler: "QueryBasedSampler") -> None:
        """Persist if ``every_queries`` new queries completed since."""
        last = self._saved_at_queries if self._saved_at_queries is not None else 0
        if sampler.queries_run - last >= self.every_queries:
            self.save(sampler)

    def save(self, sampler: "QueryBasedSampler") -> None:
        """Persist the sampler's full resumable state atomically."""
        with self.recorder.span(
            "checkpoint_save", database=sampler.name, queries_run=sampler.queries_run
        ) as span:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"schema": SAMPLER_CHECKPOINT_SCHEMA, **sampler.state_dict()}
            size = _write_json(self.path, payload)
            span.set(bytes_written=size)
        self.recorder.count("store.checkpoints_written")
        self._saved_at_queries = sampler.queries_run

    def resume(self, sampler: "QueryBasedSampler") -> bool:
        """Restore the saved state into ``sampler`` if one exists.

        Returns ``True`` when a checkpoint was restored.  The sampler
        must match the checkpointed construction (name, seed, config,
        selector types) or ``ValueError`` is raised — resuming under
        different parameters would silently diverge.
        """
        if not self.has_checkpoint():
            return False
        payload = _read_json(self.path, SAMPLER_CHECKPOINT_SCHEMA)
        sampler.load_state_dict(payload)
        self._saved_at_queries = sampler.queries_run
        self.recorder.event(
            "checkpoint_resumed",
            database=sampler.name,
            queries_run=sampler.queries_run,
            documents_examined=sampler.documents_examined,
        )
        return True


class PoolCheckpointer:
    """Persists a multi-database pool run after each scheduling grant.

    One ``pool.json`` holds every sampler's state plus the pool's
    scheduling cursor (loop position, remaining budget, exhausted set,
    per-run stop reasons), so a resumed run replays the exact grant
    sequence — and therefore the exact models — of an uninterrupted
    one.  Pass it to :meth:`repro.sampling.pool.SamplingPool.run` via
    ``checkpoint=``; the pool calls :meth:`resume` itself.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first save).
    every_grants:
        Persist after every this-many completed grants (1 = every
        grant).  The run-final save is unconditional.
    recorder:
        Observability sink, as for :class:`SamplerCheckpointer`.
    """

    FILENAME = "pool.json"

    def __init__(
        self,
        directory: str | Path,
        every_grants: int = 1,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if every_grants <= 0:
            raise ValueError("every_grants must be positive")
        self.directory = Path(directory)
        self.every_grants = every_grants
        self.recorder = recorder
        self._grants_since_save = 0

    @property
    def path(self) -> Path:
        """The checkpoint file."""
        return self.directory / self.FILENAME

    def has_checkpoint(self) -> bool:
        """Whether a previous run left a checkpoint to resume from."""
        return self.path.is_file()

    def maybe_save(self, pool: "SamplingPool", cursor: dict[str, Any]) -> None:
        """Persist if ``every_grants`` grants completed since the last save."""
        self._grants_since_save += 1
        if self._grants_since_save >= self.every_grants:
            self.save(pool, cursor)

    def save(self, pool: "SamplingPool", cursor: dict[str, Any]) -> None:
        """Persist the pool's samplers and scheduling cursor atomically."""
        with self.recorder.span(
            "checkpoint_save", scheduler=pool.scheduler, databases=len(pool.samplers)
        ) as span:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": POOL_CHECKPOINT_SCHEMA,
                "scheduler": pool.scheduler,
                "increment": pool.increment,
                "cursor": cursor,
                "samplers": {
                    name: sampler.state_dict()
                    for name, sampler in pool.samplers.items()
                },
            }
            size = _write_json(self.path, payload)
            span.set(bytes_written=size)
        self.recorder.count("store.checkpoints_written")
        self._grants_since_save = 0

    def resume(self, pool: "SamplingPool", total_documents: int) -> dict[str, Any] | None:
        """Restore sampler states; return the scheduling cursor, if any.

        The pool must match the checkpointed construction (scheduler,
        increment, database names, and — per sampler — seed and
        config) and ``total_documents`` must equal the original
        budget; any mismatch raises
        :class:`CheckpointMismatchError` / ``ValueError``.
        """
        if not self.has_checkpoint():
            return None
        payload = _read_json(self.path, POOL_CHECKPOINT_SCHEMA)
        mismatches = []
        if payload.get("scheduler") != pool.scheduler:
            mismatches.append(
                f"scheduler: checkpoint {payload.get('scheduler')!r} != pool {pool.scheduler!r}"
            )
        if payload.get("increment") != pool.increment:
            mismatches.append(
                f"increment: checkpoint {payload.get('increment')!r} != pool {pool.increment!r}"
            )
        saved_samplers = payload.get("samplers") or {}
        if set(saved_samplers) != set(pool.samplers):
            mismatches.append(
                f"databases: checkpoint {sorted(saved_samplers)} != pool "
                f"{sorted(pool.samplers)}"
            )
        cursor = payload.get("cursor") or {}
        if cursor.get("total_documents") != total_documents:
            mismatches.append(
                f"total_documents: checkpoint {cursor.get('total_documents')!r} "
                f"!= run {total_documents!r}"
            )
        if mismatches:
            raise CheckpointMismatchError(
                "pool checkpoint does not match this run: " + "; ".join(mismatches)
            )
        for name, state in saved_samplers.items():
            pool.samplers[name].load_state_dict(state)
        self._grants_since_save = 0
        self.recorder.event(
            "checkpoint_resumed", scheduler=pool.scheduler, databases=len(saved_samplers)
        )
        return dict(cursor)
