"""The model-storage protocol shared by flat and sharded stores.

:class:`~repro.store.model_store.ModelStore` (one directory, one
manifest — the right shape for a handful of databases) and
:class:`~repro.store.sharded.ShardedModelStore` (hash-bucketed shard
directories — the fleet-scale shape) expose the same surface, captured
here as a runtime-checkable protocol so every consumer
(:class:`~repro.federation.service.FederatedSearchService`,
:class:`~repro.serving.frontend.FederationFrontend`, the fleet workers,
the CLI) is written once against :class:`ModelStorage` and works with
either layout.

:func:`open_store` resolves a directory on disk to the store class
that owns it, by its entry-point file: a fleet manifest
(``fleet.json``) marks a sharded store, a flat ``manifest.json`` marks
a single-directory one.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Protocol, runtime_checkable

from repro.lm.model import LanguageModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.model_store import ModelStore
    from repro.store.sharded import ShardedModelStore

__all__ = ["ModelStorage", "open_store"]


@runtime_checkable
class ModelStorage(Protocol):
    """What every durable model store exposes, flat or sharded.

    The write side (:meth:`save`) persists a model set crash-safely as
    a unit; the read side is deliberately *selective* — consumers load
    the models they need by name (:meth:`load_model`) or stream the
    set (:meth:`iter_models`) without materialising a whole-fleet dict,
    which at tens of thousands of databases would not fit in memory.
    """

    root: Path

    def exists(self) -> bool:
        """Whether a published store is present at ``root``."""
        ...  # pragma: no cover - protocol

    def save(self, models: Mapping[str, LanguageModel], *, model_epoch: int = 0) -> object:
        """Persist ``models`` as one durable, crash-safe unit."""
        ...  # pragma: no cover - protocol

    def load(self) -> dict[str, LanguageModel]:
        """Load the full model set, verifying every checksum."""
        ...  # pragma: no cover - protocol

    def load_model(self, name: str) -> LanguageModel:
        """Load one model by install name, verifying its checksum."""
        ...  # pragma: no cover - protocol

    def iter_models(self) -> Iterator[tuple[str, LanguageModel]]:
        """Stream ``(name, model)`` pairs without loading the whole set."""
        ...  # pragma: no cover - protocol

    def model_names(self) -> list[str]:
        """Sorted install names of every stored model."""
        ...  # pragma: no cover - protocol

    def model_epoch(self) -> int:
        """The epoch the newest stored model set was saved at."""
        ...  # pragma: no cover - protocol

    def verify(self) -> list[str]:
        """Integrity problems with the published store (empty = healthy)."""
        ...  # pragma: no cover - protocol

    def orphans(self) -> list[str]:
        """Unreferenced model files on disk (crash leftovers)."""
        ...  # pragma: no cover - protocol

    def prune_orphans(self) -> list[str]:
        """Delete unreferenced model files; returns what was removed."""
        ...  # pragma: no cover - protocol


def open_store(root: str | Path) -> "ModelStore | ShardedModelStore":
    """The store object for an on-disk directory, flat or sharded.

    A directory whose entry point is a fleet manifest opens as a
    :class:`~repro.store.sharded.ShardedModelStore`; anything else
    (including a directory that does not exist yet) opens as a flat
    :class:`~repro.store.model_store.ModelStore`, the
    backwards-compatible default.
    """
    from repro.store.model_store import ModelStore
    from repro.store.sharded import FLEET_MANIFEST_NAME, ShardedModelStore

    path = Path(root)
    if (path / FLEET_MANIFEST_NAME).is_file():
        return ShardedModelStore(path)
    return ModelStore(path)
