"""The sharded model store: fleet-scale durable persistence.

One flat :class:`~repro.store.model_store.ModelStore` directory works
for a handful of databases, but at the ROADMAP's north-star scale
(tens of thousands) a single manifest becomes a serialization point:
every save rewrites one giant file, every load parses it, and two
workers refreshing different databases contend on the same unit.
:class:`ShardedModelStore` splits the fleet into hash-bucketed shards:

.. code-block:: text

    store/
      fleet.json               # tiny fleet manifest: shard count, epochs
      shards/
        00/                    # each shard is a complete ModelStore
          manifest.json
          models/wsj88-1f6d22c91a04.lm
        01/
          ...

Every shard directory is a full :class:`ModelStore` — same checksummed
manifest, same atomic-write ordering, same crash-safety proof — so the
per-shard durability argument is inherited rather than re-made.  The
fleet manifest (``fleet.json``) is deliberately tiny: the shard count
(which fixes the name → shard hash for the store's lifetime), a
fleet-level epoch, and per-shard summaries.  It never lists model
names, so it stays O(shards) at any fleet size.

Crash-safety contract: shard saves are individually atomic (a killed
save leaves that shard's previous manifest and model set intact — the
:class:`ModelStore` guarantee), and the fleet manifest is republished
*after* every shard it summarises is durable.  A crash mid-save can
therefore leave a *mix of generations across shards* — each shard
internally consistent and verifiable — never a torn shard.  Per-shard
epochs (:meth:`shard_epochs`) let readers detect exactly which shards
moved, which is what the serving layer's per-shard invalidation keys
on.

Reads are selective by construction: :meth:`load_model` touches one
shard, :meth:`iter_models` streams one shard manifest at a time, and
nothing ever materialises a whole-fleet dict unless :meth:`load` (the
small-fleet convenience) is explicitly asked to.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.store.model_store import ModelStore, StoreIntegrityError
from repro.utils.atomic import atomic_write_text

__all__ = [
    "FLEET_MANIFEST_NAME",
    "FLEET_SCHEMA",
    "FleetManifest",
    "ShardedModelStore",
    "ShardSummary",
    "shard_of",
]

#: Fleet-manifest schema identifier, bumped on breaking changes.
FLEET_SCHEMA = "repro-fleet-store/1"

#: The fleet manifest's filename (the sharded store's entry point).
FLEET_MANIFEST_NAME = "fleet.json"

_SHARDS_DIR = "shards"
_DEFAULT_SHARDS = 16


def shard_of(name: str, num_shards: int) -> int:
    """The shard index a database name hashes to (stable across runs).

    Uses SHA-256 rather than :func:`hash` so the assignment is
    identical across processes, platforms, and Python releases — a
    model written by one worker must be findable by every other.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass(frozen=True)
class ShardSummary:
    """One shard's row in the fleet manifest."""

    models: int
    model_epoch: int


@dataclass(frozen=True)
class FleetManifest:
    """The sharded store's tiny table of contents (O(shards), not O(models))."""

    schema: str
    num_shards: int
    model_epoch: int
    shards: dict[str, ShardSummary]

    @property
    def total_models(self) -> int:
        """Model count across every shard."""
        return sum(summary.models for summary in self.shards.values())

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "schema": self.schema,
            "num_shards": self.num_shards,
            "model_epoch": self.model_epoch,
            "shards": {
                shard_id: {"models": s.models, "model_epoch": s.model_epoch}
                for shard_id, s in sorted(self.shards.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], source: str) -> "FleetManifest":
        """Parse a fleet manifest dict, validating the schema id."""
        schema = data.get("schema")
        if schema != FLEET_SCHEMA:
            raise StoreIntegrityError(
                f"{source}: unsupported fleet schema {schema!r} (expected {FLEET_SCHEMA!r})"
            )
        try:
            num_shards = int(data["num_shards"])
            raw_shards = data.get("shards") or {}
            shards = {
                str(shard_id): ShardSummary(
                    models=int(raw["models"]), model_epoch=int(raw["model_epoch"])
                )
                for shard_id, raw in raw_shards.items()
            }
        except (KeyError, TypeError, ValueError) as error:
            raise StoreIntegrityError(f"{source}: malformed fleet manifest: {error}") from error
        if num_shards <= 0:
            raise StoreIntegrityError(f"{source}: num_shards must be positive")
        return cls(
            schema=FLEET_SCHEMA,
            num_shards=num_shards,
            model_epoch=int(data.get("model_epoch", 0)),
            shards=shards,
        )


class ShardedModelStore:
    """Hash-bucketed shards of :class:`ModelStore`, saved concurrently.

    Parameters
    ----------
    root:
        The store directory (created on first :meth:`save`).
    num_shards:
        Shard count for a *new* store; for an existing store the count
        is read from ``fleet.json`` and this parameter, if given, must
        agree (the name → shard hash is fixed at creation).
    save_workers:
        Thread-pool bound for concurrent per-shard saves (shard saves
        are fsync-bound, so they genuinely overlap).
    recorder:
        Observability sink: ``store_save`` / ``store_load`` spans from
        the underlying shards plus fleet-level ``fleet_save`` spans and
        ``store.shards_written`` counters.
    """

    def __init__(
        self,
        root: str | Path,
        num_shards: int | None = None,
        *,
        save_workers: int = 8,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if num_shards is not None and num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if save_workers <= 0:
            raise ValueError("save_workers must be positive")
        self.root = Path(root)
        self.recorder = recorder
        self.save_workers = save_workers
        self._requested_shards = num_shards
        self._num_shards: int | None = None

    # -- layout ------------------------------------------------------------

    @property
    def fleet_manifest_path(self) -> Path:
        """Path of ``fleet.json`` (the sharded store's entry point)."""
        return self.root / FLEET_MANIFEST_NAME

    def exists(self) -> bool:
        """Whether a published fleet manifest is present."""
        return self.fleet_manifest_path.is_file()

    @property
    def num_shards(self) -> int:
        """The store's shard count (fixed at creation)."""
        if self._num_shards is None:
            if self.exists():
                on_disk = self.read_fleet_manifest().num_shards
                if self._requested_shards is not None and self._requested_shards != on_disk:
                    raise StoreIntegrityError(
                        f"{self.root}: store has {on_disk} shards but "
                        f"{self._requested_shards} were requested — the name→shard "
                        "hash is fixed at creation (migrate to change it)"
                    )
                self._num_shards = on_disk
            else:
                self._num_shards = self._requested_shards or _DEFAULT_SHARDS
        return self._num_shards

    def shard_id(self, index: int) -> str:
        """The directory name of shard ``index`` (zero-padded decimal)."""
        width = max(2, len(str(self.num_shards - 1)))
        return f"{index:0{width}d}"

    def shard_for(self, name: str) -> ModelStore:
        """The shard store a database name hashes to."""
        return self.shard(self.shard_id(shard_of(name, self.num_shards)))

    def shard(self, shard_id: str) -> ModelStore:
        """The shard store for a shard directory name."""
        return ModelStore(self.root / _SHARDS_DIR / shard_id, recorder=self.recorder)

    def shard_ids(self) -> list[str]:
        """Shard directory names the fleet manifest lists, sorted."""
        return sorted(self.read_fleet_manifest().shards)

    # -- fleet manifest ----------------------------------------------------

    def read_fleet_manifest(self) -> FleetManifest:
        """Parse the published fleet manifest."""
        source = str(self.fleet_manifest_path)
        if not self.exists():
            raise FileNotFoundError(f"no fleet manifest at {source}")
        try:
            data = json.loads(self.fleet_manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreIntegrityError(
                f"{source}: fleet manifest is not valid JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise StoreIntegrityError(f"{source}: fleet manifest is not a JSON object")
        return FleetManifest.from_dict(data, source)

    def _publish_fleet_manifest(
        self, model_epoch: int, only: set[str] | None = None
    ) -> FleetManifest:
        """Summarise the shards on disk and atomically publish ``fleet.json``.

        A full :meth:`save` passes ``only`` — the shards the new
        generation occupies — so the manifest never lists a
        superseded shard directory that the post-publish prune is
        about to drop.
        """
        shards: dict[str, ShardSummary] = {}
        shards_dir = self.root / _SHARDS_DIR
        if shards_dir.is_dir():
            for path in sorted(shards_dir.iterdir()):
                if only is not None and path.name not in only:
                    continue
                shard = ModelStore(path)
                if path.is_dir() and shard.exists():
                    manifest = shard.read_manifest()
                    shards[path.name] = ShardSummary(
                        models=len(manifest.models), model_epoch=manifest.model_epoch
                    )
        fleet = FleetManifest(
            schema=FLEET_SCHEMA,
            num_shards=self.num_shards,
            model_epoch=model_epoch,
            shards=shards,
        )
        atomic_write_text(
            self.fleet_manifest_path,
            json.dumps(fleet.as_dict(), indent=2, sort_keys=True) + "\n",
        )
        return fleet

    def _establish(self) -> None:
        """Pin the shard count on disk before any shard data exists.

        Writing ``fleet.json`` *first* means a crash between shard
        writes can never leave shard directories whose hash base is
        unknowable — the shard count is durable before the first model
        byte lands.
        """
        if not self.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            self._publish_fleet_manifest(model_epoch=0)

    # -- writing -----------------------------------------------------------

    def _partition(
        self, models: Mapping[str, LanguageModel]
    ) -> dict[str, dict[str, LanguageModel]]:
        by_shard: dict[str, dict[str, LanguageModel]] = {}
        for name, model in models.items():
            shard_id = self.shard_id(shard_of(name, self.num_shards))
            by_shard.setdefault(shard_id, {})[name] = model
        return by_shard

    def _save_shards(
        self, by_shard: Mapping[str, Mapping[str, LanguageModel]], model_epoch: int
    ) -> None:
        """Save every listed shard, concurrently, each one atomically."""

        def save_one(shard_id: str) -> None:
            self.shard(shard_id).save(dict(by_shard[shard_id]), model_epoch=model_epoch)
            self.recorder.count("store.shards_written")

        if len(by_shard) == 1:
            save_one(next(iter(by_shard)))
            return
        with ThreadPoolExecutor(
            max_workers=min(self.save_workers, len(by_shard)),
            thread_name_prefix="shard-save",
        ) as pool:
            # list() propagates the first failure instead of discarding it.
            list(pool.map(save_one, sorted(by_shard)))

    def save(
        self, models: Mapping[str, LanguageModel], *, model_epoch: int = 0
    ) -> FleetManifest:
        """Persist ``models`` as the fleet's full content.

        Shards are written concurrently (each one crash-safe on its
        own), then the fleet manifest is republished, then shard
        directories the new content does not occupy are pruned (best
        effort).  A crash mid-save leaves every shard internally
        consistent; a mix of old- and new-generation shards is
        possible and detectable via :meth:`shard_epochs`.
        """
        if not models:
            raise ValueError("refusing to save an empty model set")
        with self.recorder.span(
            "fleet_save", store=str(self.root), models=len(models), model_epoch=model_epoch
        ) as span:
            self._establish()
            by_shard = self._partition(models)
            self._save_shards(by_shard, model_epoch)
            fleet = self._publish_fleet_manifest(model_epoch, only=set(by_shard))
            self._prune_shards(keep=set(by_shard))
            span.set(shards=len(by_shard))
        return fleet

    def update(
        self, models: Mapping[str, LanguageModel], *, model_epoch: int | None = None
    ) -> FleetManifest:
        """Fold ``models`` into the fleet, rewriting only affected shards.

        The fleet-scale write path: a refresh worker that re-sampled a
        handful of databases touches only the shards those names hash
        to — every other shard's files are not even opened.  Affected
        shards (and the fleet epoch) move to ``model_epoch`` (default:
        one past the current fleet epoch).
        """
        if not models:
            raise ValueError("refusing to update with an empty model set")
        self._establish()
        if model_epoch is None:
            model_epoch = self.model_epoch() + 1
        with self.recorder.span(
            "fleet_update", store=str(self.root), models=len(models), model_epoch=model_epoch
        ) as span:
            by_shard = self._partition(models)
            merged: dict[str, dict[str, LanguageModel]] = {}
            for shard_id, fresh in by_shard.items():
                shard = self.shard(shard_id)
                current = shard.load() if shard.exists() else {}
                current.update(fresh)
                merged[shard_id] = current
            self._save_shards(merged, model_epoch)
            fleet = self._publish_fleet_manifest(model_epoch)
            span.set(shards=len(by_shard))
        return fleet

    def _prune_shards(self, keep: set[str]) -> None:
        """Drop shard directories a full save left unoccupied (best effort)."""
        import shutil

        shards_dir = self.root / _SHARDS_DIR
        if not shards_dir.is_dir():
            return
        for path in shards_dir.iterdir():
            if path.is_dir() and path.name not in keep:
                shutil.rmtree(path, ignore_errors=True)

    # -- reading -----------------------------------------------------------

    def load_model(self, name: str) -> LanguageModel:
        """Load one model by install name — touches exactly one shard."""
        shard = self.shard_for(name)
        if not shard.exists():
            raise KeyError(f"model {name!r} is not in the store (shard {shard.root.name})")
        return shard.load_model(name)

    def load(self) -> dict[str, LanguageModel]:
        """Load the full fleet (small-fleet convenience; prefer iteration)."""
        with self.recorder.span("store_load", store=str(self.root)) as span:
            models = dict(self.iter_models())
            span.set(models=len(models))
        return models

    def iter_models(self) -> Iterator[tuple[str, LanguageModel]]:
        """Stream every ``(name, model)`` pair, one shard at a time.

        Holds one shard's manifest and one model in memory at any
        moment — the whole-fleet dict never exists.
        """
        for shard_id in self.shard_ids():
            shard = self.shard(shard_id)
            manifest = shard.read_manifest()
            for name in sorted(manifest.models):
                yield name, shard.load_model(name, manifest)

    def model_names(self) -> list[str]:
        """Sorted install names across every shard."""
        names: list[str] = []
        for shard_id in self.shard_ids():
            names.extend(self.shard(shard_id).model_names())
        return sorted(names)

    def model_epoch(self) -> int:
        """The newest epoch any shard was saved at.

        Reads per-shard manifests (the source of truth) rather than
        the fleet summary, so a crash between shard writes and the
        fleet-manifest republish cannot hide a newer shard.
        """
        epochs = [self.shard(s).model_epoch() for s in self._shard_dirs_on_disk()]
        if epochs:
            return max(epochs)
        return self.read_fleet_manifest().model_epoch

    def shard_epochs(self) -> dict[str, int]:
        """Per-shard epochs from the shard manifests themselves.

        The serving layer keys warm-start invalidation on this map:
        a shard whose epoch moved is reloaded, every other shard's
        models are kept as they are.  Only shards the fleet manifest
        lists are reported (a crash-orphaned shard directory awaiting
        the next full save's prune is not part of the published fleet).
        """
        return {s: self.shard(s).model_epoch() for s in self.shard_ids()}

    def _shard_dirs_on_disk(self) -> list[str]:
        shards_dir = self.root / _SHARDS_DIR
        if not shards_dir.is_dir():
            return []
        return sorted(
            path.name
            for path in shards_dir.iterdir()
            if path.is_dir() and ModelStore(path).exists()
        )

    # -- inspection --------------------------------------------------------

    def verify(self) -> list[str]:
        """Integrity problems across the fleet (empty = healthy).

        Checks every shard's manifest and checksums (the per-shard
        :meth:`ModelStore.verify`), plus the fleet-level invariant the
        flat store cannot have: every model must live in the shard its
        name hashes to, or selective loads would miss it.
        """
        problems: list[str] = []
        try:
            manifest = self.read_fleet_manifest()
        except (FileNotFoundError, StoreIntegrityError) as error:
            return [str(error)]
        for shard_id in sorted(set(manifest.shards) | set(self._shard_dirs_on_disk())):
            shard = self.shard(shard_id)
            for problem in shard.verify():
                problems.append(f"shard {shard_id}: {problem}")
            if not shard.exists():
                continue
            for name in shard.model_names():
                expected = self.shard_id(shard_of(name, manifest.num_shards))
                if expected != shard_id:
                    problems.append(
                        f"shard {shard_id}: model {name!r} is misplaced "
                        f"(hashes to shard {expected})"
                    )
        return problems

    def orphans(self) -> list[str]:
        """Unreferenced model files across every shard (crash leftovers)."""
        orphans: list[str] = []
        for shard_id in self._shard_dirs_on_disk():
            orphans.extend(
                f"{_SHARDS_DIR}/{shard_id}/{relative}"
                for relative in self.shard(shard_id).orphans()
            )
        return sorted(orphans)

    def prune_orphans(self) -> list[str]:
        """Delete unreferenced model files in every shard."""
        removed: list[str] = []
        for shard_id in self._shard_dirs_on_disk():
            removed.extend(
                f"{_SHARDS_DIR}/{shard_id}/{relative}"
                for relative in self.shard(shard_id).prune_orphans()
            )
        return sorted(removed)

    # -- migration ---------------------------------------------------------

    @classmethod
    def migrate(
        cls,
        source: ModelStore,
        root: str | Path,
        num_shards: int = _DEFAULT_SHARDS,
        *,
        recorder: Recorder = NULL_RECORDER,
    ) -> "ShardedModelStore":
        """Re-home a flat store's content into a new sharded layout.

        Models are streamed out of ``source`` (checksum-verified) and
        written shard by shard; the stored ``model_epoch`` carries
        over, so a service warm-started off the migrated store sees
        exactly the epoch it would have seen off the flat one.  The
        source is read-only throughout.  Model files are bit-identical
        across the migration: the text serialization is canonical
        (sorted vocabulary), so load + re-save reproduces the exact
        bytes, as the migration tests pin.
        """
        target = cls(root, num_shards, recorder=recorder)
        if target.exists():
            raise StoreIntegrityError(f"{target.root}: refusing to migrate onto an existing store")
        epoch = source.model_epoch()
        with recorder.span(
            "fleet_migrate", source=str(source.root), target=str(target.root)
        ) as span:
            target._establish()
            by_shard: dict[str, dict[str, LanguageModel]] = {}
            for name, model in source.iter_models():
                shard_id = target.shard_id(shard_of(name, target.num_shards))
                bucket = by_shard.setdefault(shard_id, {})
                bucket[name] = model
            # Shards are written after the full partition is known so
            # each shard is saved exactly once.  Memory stays bounded
            # by the fleet itself; migration is a one-time, offline op.
            target._save_shards(by_shard, epoch)
            migrated = sum(len(bucket) for bucket in by_shard.values())
            target._publish_fleet_manifest(epoch)
            span.set(models=migrated, shards=len(by_shard))
        return target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedModelStore(root={str(self.root)!r})"
