"""The durable, versioned model store.

A federation's learned language models are *accumulated state* —
hundreds of sampling queries per database — so they are persisted as
one unit in a store directory:

.. code-block:: text

    store/
      manifest.json              # the only entry point; published last
      models/
        wsj88-1f6d22c91a04.lm    # one text-format model per database,
        ap89-8c1b04773e52.lm     # named by a content fingerprint

``manifest.json`` maps each install name (the federation's database
name) to its model file, a SHA-256 checksum of the file's bytes, the
``model_epoch`` the set was saved at, and summary statistics.  Writes
are crash-safe by construction:

1. every model file is written atomically (temp file + ``os.replace``
   with fsync, :mod:`repro.utils.atomic`) to a filename that embeds a
   fingerprint of its content, so a new save never touches the files
   the published manifest references;
2. the manifest is written atomically *after* every model file it
   references is durable;
3. only then are superseded model generations pruned (best effort).

A crash at any point therefore leaves the previous manifest (and the
complete model set it references) fully intact; at worst some new,
unreferenced model files are orphaned, which :meth:`ModelStore.orphans`
reports and the next successful :meth:`ModelStore.save` prunes.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping
from urllib.parse import quote

from repro.lm.io import dumps_language_model, loads_language_model
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.utils.atomic import atomic_write_text

__all__ = ["ModelEntry", "ModelStore", "StoreIntegrityError", "StoreManifest"]

#: Manifest schema identifier, bumped on breaking changes.
STORE_SCHEMA = "repro-store/1"

_MANIFEST_NAME = "manifest.json"
_MODELS_DIR = "models"


class StoreIntegrityError(ValueError):
    """A store file is missing, corrupt, or fails its checksum."""


@dataclass(frozen=True)
class ModelEntry:
    """One model's manifest record."""

    file: str
    sha256: str
    terms: int
    documents_seen: int
    tokens_seen: int


@dataclass(frozen=True)
class StoreManifest:
    """The store's table of contents, keyed by install name."""

    schema: str
    model_epoch: int
    models: dict[str, ModelEntry]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON emission."""
        return {
            "schema": self.schema,
            "model_epoch": self.model_epoch,
            "models": {
                name: {
                    "file": entry.file,
                    "sha256": entry.sha256,
                    "terms": entry.terms,
                    "documents_seen": entry.documents_seen,
                    "tokens_seen": entry.tokens_seen,
                }
                for name, entry in sorted(self.models.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], source: str) -> "StoreManifest":
        """Parse a manifest dict, validating the schema id."""
        schema = data.get("schema")
        if schema != STORE_SCHEMA:
            raise StoreIntegrityError(
                f"{source}: unsupported store schema {schema!r} (expected {STORE_SCHEMA!r})"
            )
        raw_models = data.get("models")
        if not isinstance(raw_models, dict):
            raise StoreIntegrityError(f"{source}: manifest has no models table")
        models: dict[str, ModelEntry] = {}
        for name, raw in raw_models.items():
            try:
                models[name] = ModelEntry(
                    file=str(raw["file"]),
                    sha256=str(raw["sha256"]),
                    terms=int(raw["terms"]),
                    documents_seen=int(raw["documents_seen"]),
                    tokens_seen=int(raw["tokens_seen"]),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise StoreIntegrityError(
                    f"{source}: malformed manifest entry for {name!r}: {error}"
                ) from error
        return cls(schema=STORE_SCHEMA, model_epoch=int(data.get("model_epoch", 0)), models=models)


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _model_filename(name: str, sha256: str) -> str:
    # Percent-escaping keeps any install name (slashes, spaces, unicode)
    # a single safe path component, collision-free by injectivity.  The
    # content fingerprint makes each save generation a fresh filename,
    # so overwriting a store never touches the files its published
    # manifest references (same content → same name → idempotent).
    return f"{_MODELS_DIR}/{quote(name, safe='')}-{sha256[:12]}.lm"


class ModelStore:
    """A directory holding one federation's model set, saved as a unit.

    Parameters
    ----------
    root:
        The store directory (created on first :meth:`save`).
    recorder:
        Observability sink: ``store_save`` / ``store_load`` spans plus
        ``store.models_written`` / ``store.models_read`` /
        ``store.bytes_written`` counters.
    """

    def __init__(self, root: str | Path, recorder: Recorder = NULL_RECORDER) -> None:
        self.root = Path(root)
        self.recorder = recorder

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file (the store's single entry point)."""
        return self.root / _MANIFEST_NAME

    def exists(self) -> bool:
        """Whether a published manifest is present."""
        return self.manifest_path.is_file()

    # -- writing -----------------------------------------------------------

    def save(
        self, models: Mapping[str, LanguageModel], *, model_epoch: int = 0
    ) -> StoreManifest:
        """Persist ``models`` as one durable unit; returns the manifest.

        All model files are serialized, validated, and made durable
        before the manifest referencing them is published, so a crash
        anywhere in this method leaves the previous manifest (if any)
        and its complete model set intact.
        """
        if not models:
            raise ValueError("refusing to save an empty model set")
        with self.recorder.span(
            "store_save", store=str(self.root), models=len(models), model_epoch=model_epoch
        ) as span:
            # Serialize (and thereby validate) everything before the
            # first byte lands on disk.
            serialized = {
                name: dumps_language_model(model) for name, model in models.items()
            }
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / _MODELS_DIR).mkdir(exist_ok=True)
            entries: dict[str, ModelEntry] = {}
            bytes_written = 0
            for name in sorted(serialized):
                text = serialized[name]
                data = text.encode("utf-8")
                digest = _checksum(data)
                filename = _model_filename(name, digest)
                atomic_write_text(self.root / filename, text)
                model = models[name]
                entries[name] = ModelEntry(
                    file=filename,
                    sha256=digest,
                    terms=len(model),
                    documents_seen=model.documents_seen,
                    tokens_seen=model.tokens_seen,
                )
                bytes_written += len(data)
                self.recorder.count("store.models_written")
            manifest = StoreManifest(
                schema=STORE_SCHEMA, model_epoch=model_epoch, models=entries
            )
            atomic_write_text(
                self.manifest_path,
                json.dumps(manifest.as_dict(), indent=2, sort_keys=True) + "\n",
            )
            # The new manifest is durable; superseded generations (and
            # any orphans a crashed save left) are safe to drop now.
            self._prune({entry.file for entry in entries.values()})
            self.recorder.count("store.bytes_written", bytes_written)
            span.set(bytes_written=bytes_written)
        return manifest

    def _prune(self, referenced: set[str]) -> None:
        """Remove model files the just-published manifest does not use."""
        models_dir = self.root / _MODELS_DIR
        for path in models_dir.iterdir():
            if path.is_file() and f"{_MODELS_DIR}/{path.name}" not in referenced:
                with contextlib.suppress(OSError):
                    path.unlink()

    # -- reading -----------------------------------------------------------

    def read_manifest(self) -> StoreManifest:
        """Parse the published manifest."""
        source = str(self.manifest_path)
        if not self.exists():
            raise FileNotFoundError(f"no model store manifest at {source}")
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreIntegrityError(f"{source}: manifest is not valid JSON: {error}") from error
        if not isinstance(data, dict):
            raise StoreIntegrityError(f"{source}: manifest is not a JSON object")
        return StoreManifest.from_dict(data, source)

    def load_model(self, name: str, manifest: StoreManifest | None = None) -> LanguageModel:
        """Load one model by install name, verifying its checksum."""
        manifest = manifest or self.read_manifest()
        if name not in manifest.models:
            raise KeyError(f"model {name!r} is not in the store manifest")
        entry = manifest.models[name]
        path = self.root / entry.file
        try:
            data = path.read_bytes()
        except FileNotFoundError as error:
            raise StoreIntegrityError(
                f"{path}: referenced by the manifest but missing"
            ) from error
        digest = _checksum(data)
        if digest != entry.sha256:
            raise StoreIntegrityError(
                f"{path}: checksum mismatch (manifest {entry.sha256[:12]}…, "
                f"file {digest[:12]}…) — the file is corrupt or was modified"
            )
        model = loads_language_model(
            data.decode("utf-8"), default_name=name, source=str(path)
        )
        self.recorder.count("store.models_read")
        return model

    def load(self) -> dict[str, LanguageModel]:
        """Load the full model set, verifying every checksum."""
        with self.recorder.span("store_load", store=str(self.root)) as span:
            manifest = self.read_manifest()
            models = {
                name: self.load_model(name, manifest) for name in sorted(manifest.models)
            }
            span.set(models=len(models), model_epoch=manifest.model_epoch)
        return models

    def iter_models(self) -> Iterator[tuple[str, LanguageModel]]:
        """Stream ``(name, model)`` pairs in sorted name order.

        Checksums are verified per model as it is yielded; only one
        model is materialised at a time (the manifest itself is small).
        """
        manifest = self.read_manifest()
        for name in sorted(manifest.models):
            yield name, self.load_model(name, manifest)

    def model_names(self) -> list[str]:
        """Sorted install names of every stored model."""
        return sorted(self.read_manifest().models)

    def model_epoch(self) -> int:
        """The epoch the published manifest was saved at."""
        return self.read_manifest().model_epoch

    # -- inspection --------------------------------------------------------

    def verify(self) -> list[str]:
        """Integrity problems with the published store (empty = healthy)."""
        problems: list[str] = []
        try:
            manifest = self.read_manifest()
        except (FileNotFoundError, StoreIntegrityError) as error:
            return [str(error)]
        for name in sorted(manifest.models):
            try:
                self.load_model(name, manifest)
            except (StoreIntegrityError, ValueError) as error:
                problems.append(f"{name}: {error}")
        return problems

    def orphans(self) -> list[str]:
        """Model files on disk that the manifest does not reference.

        Orphans are harmless (a crash between model writes and the
        manifest publish leaves them behind) but worth surfacing.
        """
        models_dir = self.root / _MODELS_DIR
        if not models_dir.is_dir():
            return []
        referenced = set()
        if self.exists():
            referenced = {entry.file for entry in self.read_manifest().models.values()}
        return sorted(
            f"{_MODELS_DIR}/{path.name}"
            for path in models_dir.iterdir()
            if path.is_file() and f"{_MODELS_DIR}/{path.name}" not in referenced
        )

    def prune_orphans(self) -> list[str]:
        """Delete unreferenced model files; returns what was removed.

        Only files :meth:`orphans` reports are touched — everything the
        published manifest references stays exactly as it is.  Callers
        that cannot tolerate deleting anything from an unhealthy store
        should :meth:`verify` first (the CLI's ``--prune`` does).
        """
        removed = []
        for relative in self.orphans():
            with contextlib.suppress(OSError):
                (self.root / relative).unlink()
                removed.append(relative)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelStore(root={str(self.root)!r})"
