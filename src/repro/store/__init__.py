"""Durable, crash-safe persistence for learned language models.

The paper's premise is that a learned language model is *accumulated
state* — hundreds of sampling queries per database — so this package
makes that state durable:

* :mod:`repro.utils.atomic` (re-exported here) — the write primitive:
  temp file + fsync + :func:`os.replace`, so every artifact on disk is
  either the old version or the new one, never a torn mixture;
* :class:`ModelStore` — a versioned directory holding a federation's
  full model set behind a checksummed ``manifest.json``, saved and
  loaded as one unit (warm-start for
  :class:`~repro.federation.service.FederatedSearchService` and the
  serving frontend);
* :class:`SamplerCheckpointer` / :class:`PoolCheckpointer` —
  checkpoint/resume for single-database and pooled sampling runs,
  bit-identical to an uninterrupted run.
"""

from repro.store.checkpoint import (
    CheckpointMismatchError,
    PoolCheckpointer,
    SamplerCheckpointer,
)
from repro.store.model_store import (
    ModelEntry,
    ModelStore,
    StoreIntegrityError,
    StoreManifest,
)
from repro.utils.atomic import atomic_write_bytes, atomic_write_text, fsync_directory

__all__ = [
    "CheckpointMismatchError",
    "ModelEntry",
    "ModelStore",
    "PoolCheckpointer",
    "SamplerCheckpointer",
    "StoreIntegrityError",
    "StoreManifest",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
]
