"""Durable, crash-safe persistence for learned language models.

The paper's premise is that a learned language model is *accumulated
state* — hundreds of sampling queries per database — so this package
makes that state durable:

* :mod:`repro.utils.atomic` (re-exported here) — the write primitive:
  temp file + fsync + :func:`os.replace`, so every artifact on disk is
  either the old version or the new one, never a torn mixture;
* :class:`ModelStore` — a versioned directory holding a federation's
  full model set behind a checksummed ``manifest.json``, saved and
  loaded as one unit (warm-start for
  :class:`~repro.federation.service.FederatedSearchService` and the
  serving frontend);
* :class:`ShardedModelStore` — the fleet-scale layout: hash-bucketed
  shard directories (each one a complete :class:`ModelStore`) behind a
  tiny fleet manifest, with selective loads and concurrent saves;
* :class:`ModelStorage` / :func:`open_store` — the protocol both
  layouts satisfy and the on-disk autodetector, so consumers are
  written once against either;
* :class:`SamplerCheckpointer` / :class:`PoolCheckpointer` —
  checkpoint/resume for single-database and pooled sampling runs,
  bit-identical to an uninterrupted run.
"""

from repro.store.base import ModelStorage, open_store
from repro.store.checkpoint import (
    CheckpointMismatchError,
    PoolCheckpointer,
    SamplerCheckpointer,
)
from repro.store.model_store import (
    ModelEntry,
    ModelStore,
    StoreIntegrityError,
    StoreManifest,
)
from repro.store.sharded import (
    FLEET_MANIFEST_NAME,
    FleetManifest,
    ShardedModelStore,
    ShardSummary,
    shard_of,
)
from repro.utils.atomic import atomic_write_bytes, atomic_write_text, fsync_directory

__all__ = [
    "CheckpointMismatchError",
    "FLEET_MANIFEST_NAME",
    "FleetManifest",
    "ModelEntry",
    "ModelStorage",
    "ModelStore",
    "PoolCheckpointer",
    "SamplerCheckpointer",
    "ShardSummary",
    "ShardedModelStore",
    "StoreIntegrityError",
    "StoreManifest",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "open_store",
    "shard_of",
]
