"""repro: query-based sampling for text database language models.

A from-scratch reproduction of Callan, Connell & Du, "Automatic
Discovery of Language Models for Text Databases" (SIGMOD 1999).

The public API is re-exported here; see README.md for a tour.
"""

from repro.corpus import Corpus, Document
from repro.index import DatabaseServer, InvertedIndex, SearchEngine
from repro.lm import (
    LanguageModel,
    ctf_ratio,
    percentage_learned,
    rdiff,
    spearman_rank_correlation,
)
from repro.text import Analyzer

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "Corpus",
    "DatabaseServer",
    "Document",
    "InvertedIndex",
    "LanguageModel",
    "SearchEngine",
    "ctf_ratio",
    "percentage_learned",
    "rdiff",
    "spearman_rank_correlation",
    "__version__",
]
