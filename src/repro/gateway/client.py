"""The asyncio gateway client: pooled connections, pipelined requests.

:class:`GatewayClient` opens a small pool of TCP connections to a
:class:`~repro.gateway.server.GatewayServer` and multiplexes requests
over them: every request gets a unique id, frames coming back are
demultiplexed by that id, so many requests can be in flight on one
connection at once (pipelining) — the load generator drives hundreds
of concurrent requests through a handful of sockets.

:meth:`GatewayClient.search` returns a :class:`GatewayReply` that
records the whole exchange: the final response *or* the shed/error
frame, every streamed partial, and the client-side timing of the first
partial — the number the streaming path exists to shrink.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.federation.service import FederatedResponse, SearchRequest
from repro.gateway.protocol import (
    PROTOCOL,
    ErrorFrame,
    Frame,
    Hello,
    Overload,
    PartialResults,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_frame,
    encode_frame,
)

__all__ = ["GatewayClient", "GatewayError", "GatewayReply"]


class GatewayError(ConnectionError):
    """The gateway conversation failed (connect, protocol, or transport)."""


@dataclass(frozen=True)
class GatewayReply:
    """Everything one request exchange produced, client side.

    ``status`` is ``"ok"`` (final response arrived), ``"overload"``
    (the gateway shed the request), or ``"error"`` (the gateway
    reported a failure).  ``first_partial_after`` is seconds from send
    to the first streamed partial frame (``None`` if none arrived);
    ``elapsed`` is send-to-terminal-frame.
    """

    status: str
    response: FederatedResponse | None
    partials: tuple[PartialResults, ...]
    overload: Overload | None
    error: ErrorFrame | None
    first_partial_after: float | None
    elapsed: float

    @property
    def ok(self) -> bool:
        """Whether a final response arrived."""
        return self.status == "ok"


@dataclass
class _Pending:
    """Client-side state of one in-flight request."""

    frames: asyncio.Queue[Frame | None] = field(default_factory=asyncio.Queue)


class _Connection:
    """One pooled socket plus its demultiplexing reader task."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: dict[str, _Pending] = {}
        self.hello: Hello | None = None
        self.closed = False
        self._reader_task: asyncio.Task[None] | None = None

    def start(self) -> None:
        self._reader_task = asyncio.create_task(self._read_loop(), name="gateway-client-reader")

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ProtocolError:
                    break
                request_id = getattr(frame, "request_id", None)
                if request_id is None:
                    continue  # banner frames are handled at connect
                entry = self.pending.get(request_id)
                if entry is not None:
                    entry.frames.put_nowait(frame)
        finally:
            self.closed = True
            # Wake every waiter: a None frame means "connection died".
            for entry in self.pending.values():
                entry.frames.put_nowait(None)

    async def close(self) -> None:
        self.closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


class GatewayClient:
    """Pooled, pipelining client for the gateway wire protocol.

    Parameters
    ----------
    host, port:
        The gateway's bind address.
    pool_size:
        Connections to open; requests are spread across the pool by
        least in-flight count, and each connection pipelines freely.
    """

    def __init__(self, host: str, port: int, *, pool_size: int = 2) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self._connections: list[_Connection] = []
        self._ids = itertools.count(1)

    # -- lifecycle ---------------------------------------------------------

    async def connect(self) -> None:
        """Open the pool; validates the server's hello banner."""
        if self._connections:
            raise RuntimeError("client already connected")
        for _ in range(self.pool_size):
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError as exc:
                await self.close()
                raise GatewayError(
                    f"cannot connect to gateway at {self.host}:{self.port}: {exc}"
                ) from exc
            line = await reader.readline()
            try:
                hello = decode_frame(line)
            except ProtocolError as exc:
                await self.close()
                raise GatewayError(f"bad gateway banner: {exc}") from exc
            if not isinstance(hello, Hello) or hello.protocol != PROTOCOL:
                await self.close()
                raise GatewayError(
                    f"gateway speaks {getattr(hello, 'protocol', '?')!r}, "
                    f"this client speaks {PROTOCOL!r}"
                )
            connection = _Connection(reader, writer)
            connection.hello = hello
            connection.start()
            self._connections.append(connection)

    async def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        connections, self._connections = self._connections, []
        for connection in connections:
            await connection.close()

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    @property
    def databases(self) -> int:
        """Federation size, from the server banner."""
        if not self._connections or self._connections[0].hello is None:
            raise GatewayError("not connected")
        return self._connections[0].hello.databases

    # -- requests ----------------------------------------------------------

    def _pick(self) -> _Connection:
        alive = [c for c in self._connections if not c.closed]
        if not alive:
            raise GatewayError("no live gateway connections")
        return min(alive, key=lambda c: len(c.pending))

    async def search(
        self,
        request: SearchRequest,
        *,
        on_partial: Callable[[PartialResults], None] | None = None,
    ) -> GatewayReply:
        """Send one request and collect its frames until terminal.

        Partials are accumulated on the reply (and forwarded to
        ``on_partial`` as they arrive).  Raises :class:`GatewayError`
        only for transport-level failures — a shed or failed request is
        a *reply* (``status`` ``"overload"`` / ``"error"``), because
        under load those are answers, not exceptions.
        """
        connection = self._pick()
        request_id = f"r{next(self._ids)}"
        entry = _Pending()
        connection.pending[request_id] = entry
        started = time.perf_counter()
        try:
            try:
                connection.writer.write(
                    encode_frame(RequestFrame(request_id=request_id, request=request))
                )
                await connection.writer.drain()
            except (ConnectionError, RuntimeError) as exc:
                connection.closed = True
                raise GatewayError(f"gateway connection lost on send: {exc}") from exc
            partials: list[PartialResults] = []
            first_partial_after: float | None = None
            while True:
                frame = await entry.frames.get()
                if frame is None:
                    raise GatewayError("gateway connection lost mid-request")
                if isinstance(frame, PartialResults):
                    if first_partial_after is None:
                        first_partial_after = time.perf_counter() - started
                    partials.append(frame)
                    if on_partial is not None:
                        on_partial(frame)
                    continue
                elapsed = time.perf_counter() - started
                if isinstance(frame, ResponseFrame):
                    return GatewayReply(
                        status="ok",
                        response=frame.response,
                        partials=tuple(partials),
                        overload=None,
                        error=None,
                        first_partial_after=first_partial_after,
                        elapsed=elapsed,
                    )
                if isinstance(frame, Overload):
                    return GatewayReply(
                        status="overload",
                        response=None,
                        partials=tuple(partials),
                        overload=frame,
                        error=None,
                        first_partial_after=first_partial_after,
                        elapsed=elapsed,
                    )
                if isinstance(frame, ErrorFrame):
                    return GatewayReply(
                        status="error",
                        response=None,
                        partials=tuple(partials),
                        overload=None,
                        error=frame,
                        first_partial_after=first_partial_after,
                        elapsed=elapsed,
                    )
                raise GatewayError(f"unexpected frame {type(frame).__name__} mid-request")
        finally:
            connection.pending.pop(request_id, None)
