"""The gateway load generator: open-loop Poisson sweeps, measured QPS.

"Millions of users" is a number, not a metaphor, only once it is
measured.  This module drives a :class:`~repro.gateway.server.GatewayServer`
with an **open-loop** arrival process — requests arrive at
exponentially distributed intervals for an offered rate, *regardless*
of whether earlier requests have completed, exactly like independent
users — sweeps the offered QPS over a ladder of levels, and reports
per-level p50/p95/p99 latency, shed rate, and achieved throughput.
Closed-loop harnesses (fire, wait, fire) hide saturation behind
coordinated omission; an open loop makes the queue, and therefore the
shedding, real.

The sweep's headline number is the **saturation QPS**: the highest
measured throughput among levels the gateway still served *cleanly*
(shed rate and achieved/offered ratio within thresholds).  Above it,
the bounded admission queue sheds the excess instead of melting —
which the level rows show directly.

``run_load_bench`` either targets a running gateway by address or
self-hosts one in-process (the CI smoke and unit tests);
``write_load_bench`` lands the whole report in
``BENCH_serving_load.json`` (schema ``repro-serving-load/1``).
"""

from __future__ import annotations

import asyncio
import json
import platform
import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.backend import EvaluableDatabase, SearchableDatabase
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.server import GatewayServer, GatewayStats
from repro.lm.model import LanguageModel
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.serving.frontend import FederationFrontend
from repro.utils.atomic import atomic_write_text
from repro.utils.stats import latency_summary

__all__ = [
    "LOAD_BENCH_SCHEMA",
    "LevelResult",
    "LoadBenchReport",
    "format_load_bench",
    "frontend_from_servers",
    "run_load_bench",
    "write_load_bench",
]

#: Schema identifier of BENCH_serving_load.json.
LOAD_BENCH_SCHEMA = "repro-serving-load/1"

#: A level counts as cleanly served if it sheds (or errors) at most
#: this fraction of its arrivals.
SATURATION_SHED_THRESHOLD = 0.01


def frontend_from_servers(
    servers: Mapping[str, SearchableDatabase],
    *,
    models: Mapping[str, LanguageModel] | None = None,
    databases_per_query: int = 3,
    workers: int = 8,
    recorder: Recorder = NULL_RECORDER,
) -> FederationFrontend:
    """A serving frontend over ``servers`` with their actual models.

    ``models`` defaults to each database's ground-truth language model
    (the gateway serves; it does not re-acquire).  Raises
    :class:`TypeError` if a database is not evaluable and no model was
    supplied for it.
    """
    if models is None:
        models = {
            name: server.actual_language_model()
            for name, server in servers.items()
            if isinstance(server, EvaluableDatabase)
        }
        if set(models) != set(servers):
            missing = sorted(set(servers) - set(models))
            raise TypeError(
                "cannot derive models: databases are not evaluable "
                f"(no actual_language_model): {missing}"
            )
    service = FederatedSearchService(
        servers,
        databases_per_query=min(databases_per_query, len(servers)),
        recorder=recorder,
    )
    service.use_models(models)
    return FederationFrontend(service, max_workers=workers, recorder=recorder)


@dataclass(frozen=True)
class LevelResult:
    """One offered-QPS level of the sweep, fully measured.

    ``latency`` and ``time_to_first_partial`` are
    :func:`~repro.utils.stats.latency_summary` mappings in seconds;
    the latter is all-zero (count 0) when no partial frames streamed.
    """

    offered_qps: float
    duration: float
    sent: int
    completed: int
    shed: int
    errors: int
    achieved_qps: float
    shed_rate: float
    latency: Mapping[str, float]
    time_to_first_partial: Mapping[str, float]


@dataclass(frozen=True)
class LoadBenchReport:
    """Everything one QPS sweep measured."""

    levels: tuple[LevelResult, ...]
    saturation_qps: float
    config: Mapping[str, object]
    #: Server-side stats (self-hosted sweeps only; None over the wire).
    gateway: GatewayStats | None = None


@dataclass
class _LevelTally:
    """Mutable per-level accumulation shared by the request tasks."""

    sent: int = 0
    shed: int = 0
    errors: int = 0
    latencies: list[float] = field(default_factory=list)
    first_partials: list[float] = field(default_factory=list)


async def _run_level(
    client: GatewayClient,
    queries: Sequence[str],
    *,
    qps: float,
    duration: float,
    rng: random.Random,
    n: int,
    docs_per_database: int,
    deadline: float | None,
) -> LevelResult:
    """Drive one open-loop level: Poisson arrivals at ``qps`` offered."""
    tally = _LevelTally()

    async def one(query: str) -> None:
        request = SearchRequest(
            query=query, n=n, docs_per_database=docs_per_database, deadline=deadline
        )
        try:
            reply = await client.search(request)
        except GatewayError:
            tally.errors += 1
            return
        if reply.ok:
            tally.latencies.append(reply.elapsed)
            if reply.first_partial_after is not None:
                tally.first_partials.append(reply.first_partial_after)
        elif reply.status == "overload":
            tally.shed += 1
        else:
            tally.errors += 1

    tasks: list[asyncio.Task[None]] = []
    started = time.perf_counter()
    next_at = rng.expovariate(qps)
    while next_at < duration:
        # Open loop: sleep to the scheduled arrival, fire, never wait
        # for completions — offered load is independent of service time.
        delay = started + next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tally.sent += 1
        tasks.append(asyncio.create_task(one(queries[tally.sent % len(queries)])))
        next_at += rng.expovariate(qps)
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    completed = len(tally.latencies)
    return LevelResult(
        offered_qps=qps,
        duration=duration,
        sent=tally.sent,
        completed=completed,
        shed=tally.shed,
        errors=tally.errors,
        achieved_qps=completed / elapsed if elapsed > 0 else 0.0,
        shed_rate=tally.shed / tally.sent if tally.sent else 0.0,
        latency=latency_summary(tally.latencies),
        time_to_first_partial=latency_summary(tally.first_partials),
    )


def saturation_qps(levels: Sequence[LevelResult]) -> float:
    """The highest *achieved* QPS among cleanly served levels.

    A level is clean when shed and errored requests together are at
    most :data:`SATURATION_SHED_THRESHOLD` of its arrivals — in an
    open loop every arrival terminates as completed, shed, or errored,
    so once the admission queue saturates the shed rate is the
    unambiguous overload signal.  0.0 if no level qualified (the
    lowest swept level already saturated).
    """
    clean = [
        level.achieved_qps
        for level in levels
        if level.sent > 0
        and (level.shed + level.errors) / level.sent <= SATURATION_SHED_THRESHOLD
    ]
    return max(clean, default=0.0)


async def _sweep(
    host: str,
    port: int,
    queries: Sequence[str],
    *,
    qps_levels: Sequence[float],
    duration: float,
    pool_size: int,
    seed: int,
    n: int,
    docs_per_database: int,
    deadline: float | None,
) -> list[LevelResult]:
    rng = random.Random(seed)
    levels: list[LevelResult] = []
    async with GatewayClient(host, port, pool_size=pool_size) as client:
        for qps in qps_levels:
            levels.append(
                await _run_level(
                    client,
                    queries,
                    qps=qps,
                    duration=duration,
                    rng=rng,
                    n=n,
                    docs_per_database=docs_per_database,
                    deadline=deadline,
                )
            )
    return levels


def run_load_bench(
    *,
    address: tuple[str, int] | None = None,
    frontend: FederationFrontend | None = None,
    queries: Sequence[str] | None = None,
    qps_levels: Sequence[float] = (10.0, 20.0, 40.0),
    duration: float = 2.0,
    pool_size: int = 4,
    n: int = 10,
    docs_per_database: int = 10,
    deadline: float | None = None,
    queue_limit: int = 64,
    concurrency: int = 8,
    seed: int = 0,
    recorder: Recorder = NULL_RECORDER,
) -> LoadBenchReport:
    """Sweep offered QPS against a gateway; measure the ceiling.

    Exactly one of ``address`` (a running gateway) or ``frontend``
    (self-host an in-process gateway for the sweep's duration) must be
    given.  ``queries`` defaults, in self-host mode, to queries drawn
    from the federation's own models; over the wire they are required.
    """
    if (address is None) == (frontend is None):
        raise ValueError("pass exactly one of address= or frontend=")
    if not qps_levels or any(qps <= 0 for qps in qps_levels):
        raise ValueError("qps_levels must be positive rates")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if queries is None:
        if frontend is None:
            raise ValueError("queries are required when targeting a remote gateway")
        from repro.serving.bench import queries_from_models

        queries = queries_from_models(frontend.service.models, 12)

    config: dict[str, object] = {
        "qps_levels": list(qps_levels),
        "duration": duration,
        "pool_size": pool_size,
        "n": n,
        "docs_per_database": docs_per_database,
        "deadline": deadline,
        "seed": seed,
        "num_queries": len(queries),
    }

    if address is not None:
        host, port = address
        levels = asyncio.run(
            _sweep(
                host,
                port,
                queries,
                qps_levels=qps_levels,
                duration=duration,
                pool_size=pool_size,
                seed=seed,
                n=n,
                docs_per_database=docs_per_database,
                deadline=deadline,
            )
        )
        return LoadBenchReport(
            levels=tuple(levels),
            saturation_qps=saturation_qps(levels),
            config=config,
            gateway=None,
        )

    async def hosted() -> tuple[list[LevelResult], GatewayStats]:
        assert frontend is not None
        server = GatewayServer(
            frontend,
            queue_limit=queue_limit,
            concurrency=concurrency,
            recorder=recorder,
        )
        async with server:
            levels = await _sweep(
                server.host,
                server.port,
                queries,
                qps_levels=qps_levels,
                duration=duration,
                pool_size=pool_size,
                seed=seed,
                n=n,
                docs_per_database=docs_per_database,
                deadline=deadline,
            )
        return levels, server.stats

    config["queue_limit"] = queue_limit
    config["concurrency"] = concurrency
    levels, stats = asyncio.run(hosted())
    return LoadBenchReport(
        levels=tuple(levels),
        saturation_qps=saturation_qps(levels),
        config=config,
        gateway=stats,
    )


# -- emission --------------------------------------------------------------


def _ms(summary: Mapping[str, float]) -> dict[str, float]:
    """A seconds latency summary as rounded milliseconds (count kept)."""
    return {
        key: (int(value) if key == "count" else round(value * 1000.0, 3))
        for key, value in summary.items()
    }


def load_bench_payload(report: LoadBenchReport) -> dict[str, object]:
    """The report as the ``repro-serving-load/1`` JSON document."""
    payload: dict[str, object] = {
        "schema": LOAD_BENCH_SCHEMA,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": dict(report.config),
        "levels": [
            {
                "offered_qps": round(level.offered_qps, 3),
                "duration": level.duration,
                "sent": level.sent,
                "completed": level.completed,
                "shed": level.shed,
                "errors": level.errors,
                "achieved_qps": round(level.achieved_qps, 3),
                "shed_rate": round(level.shed_rate, 4),
                "latency_ms": _ms(level.latency),
                "time_to_first_partial_ms": (
                    _ms(level.time_to_first_partial)
                    if level.time_to_first_partial["count"]
                    else None
                ),
            }
            for level in report.levels
        ],
        "saturation_qps": round(report.saturation_qps, 3),
    }
    if report.gateway is not None:
        payload["gateway"] = {
            "accepted": report.gateway.accepted,
            "completed": report.gateway.completed,
            "shed": report.gateway.shed,
            "shed_queue_full": report.gateway.shed_queue_full,
            "shed_deadline": report.gateway.shed_deadline,
            "errors": report.gateway.errors,
            "streamed_partials": report.gateway.streamed_partials,
            "max_queue_depth": report.gateway.max_queue_depth,
        }
    return payload


def write_load_bench(report: LoadBenchReport, path: str) -> None:
    """Write the report to ``path`` atomically (BENCH_serving_load.json)."""
    atomic_write_text(path, json.dumps(load_bench_payload(report), indent=1) + "\n")


def format_load_bench(report: LoadBenchReport) -> str:
    """Human-readable sweep tables (CLI output)."""
    from repro.experiments.reporting import format_table

    rows = [
        {
            "offered_qps": round(level.offered_qps, 1),
            "achieved_qps": round(level.achieved_qps, 1),
            "p50_ms": round(level.latency["p50"] * 1000, 2),
            "p95_ms": round(level.latency["p95"] * 1000, 2),
            "p99_ms": round(level.latency["p99"] * 1000, 2),
            "shed_rate": round(level.shed_rate, 3),
            "sent": level.sent,
            "errors": level.errors,
        }
        for level in report.levels
    ]
    lines = [format_table(rows, title="Load sweep (open-loop Poisson arrivals)")]
    lines.append("")
    lines.append(f"saturation QPS (cleanly served ceiling): {report.saturation_qps:.1f}")
    if report.gateway is not None:
        lines.append(
            f"gateway: max queue depth {report.gateway.max_queue_depth}, "
            f"shed {report.gateway.shed} "
            f"(queue_full {report.gateway.shed_queue_full}, "
            f"deadline {report.gateway.shed_deadline}), "
            f"streamed partials {report.gateway.streamed_partials}"
        )
    return "\n".join(lines)
