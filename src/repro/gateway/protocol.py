"""The gateway wire protocol: versioned JSON-lines frames over TCP.

One frame per line, UTF-8 JSON, newline-terminated.  Every frame
carries the protocol version (``"v": 1``) and a ``"type"``; frames
belonging to a request carry its client-chosen ``"id"`` so responses
can be pipelined out of order over one connection.  The frame types:

======== ==============================================================
type     meaning
======== ==============================================================
hello    server banner on connect: protocol id, federation size
request  one :class:`~repro.federation.service.SearchRequest`
partial  early merged hits, streamed while slow backends are pending
response the final :class:`~repro.federation.service.FederatedResponse`
overload the request was *shed* (queue full / deadline already spent)
error    the request failed (bad frame, backend misconfiguration, ...)
======== ==============================================================

A request terminates in exactly one of ``response`` / ``overload`` /
``error``, preceded by zero or more ``partial`` frames.  Frames are
plain JSON so any client can speak the protocol; this module is the
reference codec, round-tripping the frozen dataclasses exactly
(rankings, merged results, per-backend timings and all).

Version discipline: ``v`` is bumped on breaking changes; a decoder
receiving a frame from a different major version raises
:class:`ProtocolError` rather than guessing.  Additive optional keys do
*not* bump the version: the ``routing`` key — on request frames a topic
restriction (``{"topics": [...], "min_confidence": ...}``), on response
frames the router's decision (``{"mode", "topics", "confidence",
"candidates", "fell_back", "reason"}``) — was added after v1 shipped,
is omitted when absent/None, and is ignored by pre-routing decoders, so
old and new peers interoperate on v1 unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.classify.router import RequestRouting, RoutingDecision
from repro.dbselect.base import DatabaseRanking, RankedDatabase
from repro.dbselect.merge import MergedResult
from repro.federation.service import FederatedResponse, SearchRequest

__all__ = [
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "ErrorFrame",
    "Hello",
    "Overload",
    "PartialResults",
    "ProtocolError",
    "RequestFrame",
    "ResponseFrame",
    "decode_frame",
    "encode_frame",
]

#: Protocol identifier, sent in the hello banner.
PROTOCOL = "repro-gateway/1"

#: Wire major version; decoders reject frames from other versions.
PROTOCOL_VERSION = 1

#: Hard bound on one frame line; a peer exceeding it is misbehaving.
MAX_FRAME_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A frame that cannot be decoded (bad JSON, type, or version)."""


@dataclass(frozen=True)
class Hello:
    """Server banner, sent once per connection before any response."""

    protocol: str
    databases: int


@dataclass(frozen=True)
class RequestFrame:
    """One federated query plus the id its answer frames will carry."""

    request_id: str
    request: SearchRequest


@dataclass(frozen=True)
class PartialResults:
    """Early merged hits: the fastest backends' answers, streamed.

    ``searched`` lists the backends already merged into ``results``;
    ``pending`` the selected backends still outstanding (each will
    either improve the final frame or land in its ``dropped``).
    ``sequence`` counts partials within the request, from 1.
    """

    request_id: str
    sequence: int
    results: tuple[MergedResult, ...]
    searched: tuple[str, ...]
    pending: tuple[str, ...]


@dataclass(frozen=True)
class ResponseFrame:
    """The final answer: a full :class:`FederatedResponse`."""

    request_id: str
    response: FederatedResponse


@dataclass(frozen=True)
class Overload:
    """The request was shed instead of queued.

    ``reason`` is ``"queue_full"`` (admission queue at capacity) or
    ``"deadline_expired"`` (the client deadline was already spent by
    the time a worker picked the request up).  ``retry_after`` is the
    server's backoff hint in seconds.
    """

    request_id: str
    reason: str
    queue_depth: int
    capacity: int
    retry_after: float


@dataclass(frozen=True)
class ErrorFrame:
    """The request failed; ``code`` is machine-readable."""

    request_id: str
    code: str
    message: str


Frame = Hello | RequestFrame | PartialResults | ResponseFrame | Overload | ErrorFrame


# -- payload codecs for the frozen dataclasses ----------------------------


def _request_payload(request: SearchRequest) -> dict[str, object]:
    row: dict[str, object] = {
        "query": request.query,
        "n": request.n,
        "docs_per_database": request.docs_per_database,
        "deadline": request.deadline,
        "databases_per_query": request.databases_per_query,
    }
    if request.routing is not None:
        row["routing"] = {
            "topics": list(request.routing.topics),
            "min_confidence": request.routing.min_confidence,
        }
    return row


def _request_routing_from(payload: object) -> RequestRouting | None:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError("request routing must be a JSON object")
    return RequestRouting(
        topics=tuple(str(topic) for topic in payload.get("topics", ())),
        min_confidence=payload.get("min_confidence"),
    )


def _request_from(payload: dict[str, object]) -> SearchRequest:
    try:
        return SearchRequest(
            query=payload["query"],  # type: ignore[arg-type]
            n=payload.get("n", 10),  # type: ignore[arg-type]
            docs_per_database=payload.get("docs_per_database", 10),  # type: ignore[arg-type]
            deadline=payload.get("deadline"),  # type: ignore[arg-type]
            databases_per_query=payload.get("databases_per_query"),  # type: ignore[arg-type]
            routing=_request_routing_from(payload.get("routing")),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid request payload: {exc}") from exc


def _results_payload(results: tuple[MergedResult, ...]) -> list[list[object]]:
    return [[r.doc_id, r.database, r.score] for r in results]


def _results_from(payload: object) -> tuple[MergedResult, ...]:
    try:
        return tuple(
            MergedResult(doc_id=str(doc_id), database=str(database), score=float(score))
            for doc_id, database, score in payload  # type: ignore[union-attr]
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid merged results: {exc}") from exc


def _response_payload(response: FederatedResponse) -> dict[str, object]:
    row: dict[str, object] = {
        "query": response.query,
        "ranking": [[e.name, e.score] for e in response.ranking.entries],
        "searched": list(response.searched),
        "results": _results_payload(response.results),
        "dropped": list(response.dropped),
        "timings": dict(response.timings),
    }
    if response.routing is not None:
        decision = response.routing
        row["routing"] = {
            "mode": decision.mode,
            "topics": list(decision.topics),
            "confidence": decision.confidence,
            "candidates": decision.candidates,
            "fell_back": decision.fell_back,
            "reason": decision.reason,
        }
    return row


def _routing_decision_from(payload: object) -> RoutingDecision | None:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError("response routing must be a JSON object")
    return RoutingDecision(
        mode=str(payload.get("mode", "broadcast")),
        topics=tuple(str(topic) for topic in payload.get("topics", ())),
        confidence=float(payload.get("confidence", 0.0)),
        candidates=int(payload.get("candidates", 0)),
        fell_back=bool(payload.get("fell_back", False)),
        reason=str(payload.get("reason", "")),
    )


def _response_from(payload: dict[str, object]) -> FederatedResponse:
    try:
        ranking = DatabaseRanking(
            query=str(payload["query"]),
            entries=tuple(
                RankedDatabase(name=str(name), score=float(score))
                for name, score in payload["ranking"]  # type: ignore[union-attr]
            ),
        )
        return FederatedResponse(
            query=str(payload["query"]),
            ranking=ranking,
            searched=tuple(payload["searched"]),  # type: ignore[arg-type]
            results=_results_from(payload["results"]),
            dropped=tuple(payload.get("dropped", ())),  # type: ignore[arg-type]
            timings={
                str(name): float(seconds)
                for name, seconds in payload.get("timings", {}).items()  # type: ignore[union-attr]
            },
            routing=_routing_decision_from(payload.get("routing")),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid response payload: {exc}") from exc


# -- frame codec -----------------------------------------------------------


def encode_frame(frame: Frame) -> bytes:
    """One frame as a newline-terminated JSON line."""
    row: dict[str, object] = {"v": PROTOCOL_VERSION}
    if isinstance(frame, Hello):
        row.update(type="hello", protocol=frame.protocol, databases=frame.databases)
    elif isinstance(frame, RequestFrame):
        row.update(
            type="request",
            id=frame.request_id,
            request=_request_payload(frame.request),
        )
    elif isinstance(frame, PartialResults):
        row.update(
            type="partial",
            id=frame.request_id,
            seq=frame.sequence,
            results=_results_payload(frame.results),
            searched=list(frame.searched),
            pending=list(frame.pending),
        )
    elif isinstance(frame, ResponseFrame):
        row.update(
            type="response",
            id=frame.request_id,
            response=_response_payload(frame.response),
        )
    elif isinstance(frame, Overload):
        row.update(
            type="overload",
            id=frame.request_id,
            reason=frame.reason,
            queue_depth=frame.queue_depth,
            capacity=frame.capacity,
            retry_after=frame.retry_after,
        )
    elif isinstance(frame, ErrorFrame):
        row.update(type="error", id=frame.request_id, code=frame.code, message=frame.message)
    else:
        raise ProtocolError(f"cannot encode frame of type {type(frame).__name__}")
    return (json.dumps(row, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Frame:
    """Decode one received line into its typed frame.

    Raises :class:`ProtocolError` on malformed JSON, an unknown frame
    type, a missing id, or a different protocol version.
    """
    try:
        row = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(row, dict):
        raise ProtocolError("frame must be a JSON object")
    version = row.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this side speaks {PROTOCOL_VERSION})"
        )
    kind = row.get("type")
    if kind == "hello":
        return Hello(protocol=str(row.get("protocol", "")), databases=int(row.get("databases", 0)))
    request_id = row.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(f"{kind!r} frame is missing its request id")
    if kind == "request":
        payload = row.get("request")
        if not isinstance(payload, dict) or "query" not in payload:
            raise ProtocolError("request frame is missing its request payload")
        return RequestFrame(request_id=request_id, request=_request_from(payload))
    if kind == "partial":
        return PartialResults(
            request_id=request_id,
            sequence=int(row.get("seq", 0)),
            results=_results_from(row.get("results", [])),
            searched=tuple(str(name) for name in row.get("searched", [])),
            pending=tuple(str(name) for name in row.get("pending", [])),
        )
    if kind == "response":
        payload = row.get("response")
        if not isinstance(payload, dict):
            raise ProtocolError("response frame is missing its response payload")
        return ResponseFrame(request_id=request_id, response=_response_from(payload))
    if kind == "overload":
        return Overload(
            request_id=request_id,
            reason=str(row.get("reason", "queue_full")),
            queue_depth=int(row.get("queue_depth", 0)),
            capacity=int(row.get("capacity", 0)),
            retry_after=float(row.get("retry_after", 0.0)),
        )
    if kind == "error":
        return ErrorFrame(
            request_id=request_id,
            code=str(row.get("code", "unknown")),
            message=str(row.get("message", "")),
        )
    raise ProtocolError(f"unknown frame type {kind!r}")
