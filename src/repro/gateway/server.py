"""The asyncio gateway server: admission control, deadlines, streaming.

:class:`GatewayServer` exposes a :class:`~repro.serving.frontend.FederationFrontend`
over the JSON-lines protocol of :mod:`repro.gateway.protocol`.  Three
properties make it survive load instead of merely handling it:

* **Bounded admission.**  Requests land in a fixed-capacity queue
  drained by a fixed pool of workers.  A request arriving at a full
  queue is *shed immediately* with an
  :class:`~repro.gateway.protocol.Overload` frame — the server never
  buffers unboundedly, so memory and queueing delay stay bounded at
  any offered rate and a client learns it is being shed in one RTT
  instead of timing out.
* **Deadline propagation.**  A client-supplied ``deadline`` is the
  request's *total* budget from admission.  Time spent waiting in the
  queue is subtracted before the fan-out runs, so backends get only
  the remaining budget; a request whose budget is already spent when a
  worker picks it up is shed (``deadline_expired``) without touching a
  single backend — under overload the gateway does less work, not
  more.
* **Streamed delivery.**  The fan-out runs through
  :meth:`~repro.serving.frontend.FederationFrontend.search_incremental`;
  every early merge flushes to the client as a ``partial`` frame, so
  the first hits arrive as soon as the *fastest* backends answer while
  stragglers are still being waited out (and are folded into the final
  frame's ``dropped`` if they miss the deadline).

Instrumented through :mod:`repro.obs`: a ``gateway_request`` span per
request (queue wait, outcome), ``gateway.shed`` /
``gateway.streamed_partials`` / ``gateway.requests`` counters, and
``gateway.queue_depth`` samples on every enqueue/dequeue.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Future as ConcurrentFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.gateway.protocol import (
    PROTOCOL,
    ErrorFrame,
    Frame,
    Hello,
    Overload,
    PartialResults,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_frame,
    encode_frame,
)
from repro.obs.trace import Recorder
from repro.serving.frontend import FederationFrontend, PartialUpdate

__all__ = ["GatewayServer", "GatewayStats"]


@dataclass
class GatewayStats:
    """Counters a load test asserts against (and ops dashboards read).

    ``max_queue_depth`` is the high-water mark of the admission queue —
    the bounded-buffering guarantee made observable: it can never
    exceed the configured queue limit, no matter the offered rate.
    """

    accepted: int = 0
    completed: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    errors: int = 0
    streamed_partials: int = 0
    max_queue_depth: int = 0
    connections: int = 0

    @property
    def shed(self) -> int:
        """Total requests shed (queue full + deadline already spent)."""
        return self.shed_queue_full + self.shed_deadline


@dataclass
class _Connection:
    """One client connection: its writer, serialized by a lock."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False

    async def send(self, frame: Frame) -> None:
        """Write one frame; a broken pipe marks the connection closed."""
        if self.closed:
            return
        data = encode_frame(frame)
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


@dataclass
class _Admitted:
    """One queued request: who asked, what, and when it was admitted."""

    connection: _Connection
    frame: RequestFrame
    enqueued_at: float


class GatewayServer:
    """Serve a federation frontend over TCP with admission control.

    Parameters
    ----------
    frontend:
        The serving frontend (models installed, scorer compilable).
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    queue_limit:
        Admission queue capacity.  Requests beyond it are shed with an
        ``overload`` frame, never buffered.
    concurrency:
        Worker count — requests executed at once.  Each worker drives
        one frontend search on its own executor thread, so the
        effective backend parallelism is ``concurrency x`` the
        frontend's ``max_workers``.
    shed_retry_after:
        Backoff hint (seconds) carried by shed frames.
    recorder:
        Observability sink; defaults to the frontend's recorder.
    """

    def __init__(
        self,
        frontend: FederationFrontend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        concurrency: int = 8,
        shed_retry_after: float = 0.05,
        recorder: Recorder | None = None,
    ) -> None:
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if shed_retry_after < 0:
            raise ValueError("shed_retry_after must be non-negative")
        self.frontend = frontend
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.concurrency = concurrency
        self.shed_retry_after = shed_retry_after
        self.recorder = recorder if recorder is not None else frontend.recorder
        self.stats = GatewayStats()
        self._queue: asyncio.Queue[_Admitted] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task[None]] = []
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, spawn the worker pool, and begin accepting connections."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="gateway-exec"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.create_task(self._worker(), name=f"gateway-worker-{i}")
            for i in range(self.concurrency)
        ]

    async def stop(self) -> None:
        """Stop accepting, cancel workers, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's run mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.stop()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self.host, self.port

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer=writer)
        self.stats.connections += 1
        self.recorder.count("gateway.connections")
        await connection.send(
            Hello(protocol=PROTOCOL, databases=len(self.frontend.service.servers))
        )
        try:
            while not connection.closed:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                try:
                    frame = self._decode_request(line)
                except ProtocolError as exc:
                    self.stats.errors += 1
                    self.recorder.count("gateway.protocol_errors")
                    await connection.send(
                        ErrorFrame(request_id="?", code="protocol", message=str(exc))
                    )
                    continue
                self._admit(connection, frame)
        finally:
            connection.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    def _decode_request(line: bytes) -> RequestFrame:
        frame = decode_frame(line)
        if not isinstance(frame, RequestFrame):
            raise ProtocolError(
                f"clients may only send request frames, got {type(frame).__name__}"
            )
        return frame

    # -- admission ----------------------------------------------------------

    def _admit(self, connection: _Connection, frame: RequestFrame) -> None:
        """Enqueue or shed, synchronously — admission never awaits."""
        assert self._queue is not None and self._loop is not None
        try:
            self._queue.put_nowait(
                _Admitted(
                    connection=connection,
                    frame=frame,
                    enqueued_at=time.perf_counter(),
                )
            )
        except asyncio.QueueFull:
            self.stats.shed_queue_full += 1
            self.recorder.count("gateway.shed")
            self.recorder.event(
                "gateway_shed", request_id=frame.request_id, reason="queue_full"
            )
            self._loop.create_task(
                connection.send(
                    Overload(
                        request_id=frame.request_id,
                        reason="queue_full",
                        queue_depth=self._queue.qsize(),
                        capacity=self.queue_limit,
                        retry_after=self.shed_retry_after,
                    )
                )
            )
            return
        self.stats.accepted += 1
        depth = self._queue.qsize()
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        self.recorder.observe("gateway.queue_depth", depth)

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            admitted = await self._queue.get()
            try:
                await self._execute(admitted)
            finally:
                self._queue.task_done()

    async def _execute(self, admitted: _Admitted) -> None:
        assert self._loop is not None and self._executor is not None
        frame = admitted.frame
        connection = admitted.connection
        queue_wait = time.perf_counter() - admitted.enqueued_at
        self.recorder.observe("gateway.queue_wait", queue_wait)
        request = frame.request
        if request.deadline is not None:
            # The client deadline is the total budget from admission;
            # the fan-out only gets what queueing hasn't spent.
            remaining = request.deadline - queue_wait
            if remaining <= 0:
                self.stats.shed_deadline += 1
                self.recorder.count("gateway.shed")
                self.recorder.event(
                    "gateway_shed", request_id=frame.request_id, reason="deadline_expired"
                )
                await connection.send(
                    Overload(
                        request_id=frame.request_id,
                        reason="deadline_expired",
                        queue_depth=self._queue.qsize() if self._queue else 0,
                        capacity=self.queue_limit,
                        retry_after=self.shed_retry_after,
                    )
                )
                return
            request = replace(request, deadline=max(remaining, 1e-6))
        loop = self._loop
        partial_sends: list[ConcurrentFuture[None]] = []

        def flush_partial(update: PartialUpdate) -> None:
            # Called on the executor thread mid-fan-out: hand the frame
            # to the event loop and remember the send so the final
            # response is only written after every partial hit the wire.
            self.stats.streamed_partials += 1
            self.recorder.count("gateway.streamed_partials")
            send = connection.send(
                PartialResults(
                    request_id=frame.request_id,
                    sequence=update.sequence,
                    results=update.results,
                    searched=update.searched,
                    pending=update.pending,
                )
            )
            partial_sends.append(asyncio.run_coroutine_threadsafe(send, loop))

        with self.recorder.span(
            "gateway_request", request_id=frame.request_id, query=request.query
        ) as span:
            span.set(queue_wait=queue_wait)
            try:
                response = await loop.run_in_executor(
                    self._executor,
                    self.frontend.search_incremental,
                    request,
                    flush_partial,
                )
            except Exception as exc:  # noqa: BLE001 - one request, not the server
                self.stats.errors += 1
                self.recorder.count("gateway.request_errors")
                span.set(error=type(exc).__name__)
                await connection.send(
                    ErrorFrame(
                        request_id=frame.request_id,
                        code=type(exc).__name__,
                        message=str(exc),
                    )
                )
                return
            for send_done in partial_sends:
                await asyncio.wrap_future(send_done)
            await connection.send(
                ResponseFrame(request_id=frame.request_id, response=response)
            )
            self.stats.completed += 1
            self.recorder.count("gateway.requests")
            span.set(
                results=len(response.results),
                dropped=list(response.dropped),
                partials=len(partial_sends),
            )
