"""The network gateway: federated serving as an actual asyncio service.

The paper's setting is a federation of *autonomous, remote* databases
reached over a network — so the serving stack has to be network-real,
not an in-process object.  This package puts the
:class:`~repro.serving.frontend.FederationFrontend` behind a TCP
service with the properties a gateway under heavy traffic needs:

* :mod:`repro.gateway.protocol` — a versioned JSON-lines wire protocol
  carrying the frozen :class:`~repro.federation.service.SearchRequest`
  / :class:`~repro.federation.service.FederatedResponse` dataclasses
  plus ``partial`` / ``overload`` / ``error`` frames;
* :class:`GatewayServer` — an asyncio server with a *bounded* admission
  queue (a full queue sheds immediately with an
  :class:`~repro.gateway.protocol.Overload` frame, it never buffers
  unboundedly), client-supplied deadlines propagated down to the
  per-backend fan-out, and streamed delivery: the first merged hits
  flush as a :class:`~repro.gateway.protocol.PartialResults` frame as
  soon as the fastest backends answer;
* :class:`GatewayClient` — connection pooling and pipelined requests
  (many in flight per connection, demultiplexed by request id);
* :mod:`repro.gateway.loadgen` — an open-loop Poisson load generator
  sweeping offered QPS and writing p50/p95/p99 latency, shed rate, and
  the measured saturation QPS into ``BENCH_serving_load.json``
  (``repro serve`` / ``repro load-bench`` on the CLI).
"""

from repro.gateway.client import GatewayClient, GatewayError, GatewayReply
from repro.gateway.loadgen import (
    LoadBenchReport,
    format_load_bench,
    frontend_from_servers,
    run_load_bench,
    write_load_bench,
)
from repro.gateway.protocol import (
    ErrorFrame,
    Overload,
    PartialResults,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
)
from repro.gateway.server import GatewayServer, GatewayStats

__all__ = [
    "ErrorFrame",
    "GatewayClient",
    "GatewayError",
    "GatewayReply",
    "GatewayServer",
    "GatewayStats",
    "LoadBenchReport",
    "Overload",
    "PartialResults",
    "ProtocolError",
    "RequestFrame",
    "ResponseFrame",
    "format_load_bench",
    "frontend_from_servers",
    "run_load_bench",
    "write_load_bench",
]
