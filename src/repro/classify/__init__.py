"""Topic classification of text databases by query probing.

The paper's probe machinery learns *language models* of uncooperative
databases; Ipeirotis, Gravano & Sahami ("Automatic Classification of
Text Databases Through Query Probing") showed the same probes — read
back as nothing but hit counts — also *classify* those databases into
a topic scheme.  This package reproduces that workload end to end on
the repo's synthetic testbeds, and closes the loop into serving:

* :mod:`repro.classify.probes` — seeded, rule-derived probe sets per
  topic, generated from the synthetic topic mixtures
  (:meth:`~repro.synth.profiles.CorpusProfile.topic_space`);
* :mod:`repro.classify.classifier` — Coverage/Specificity
  classification from :meth:`~repro.backend.HitCountingDatabase.hit_count`
  alone, with thresholds and a probe budget
  (:class:`ClassifyParameters`);
* :mod:`repro.classify.router` — a :class:`TopicRouter` that restricts
  the CORI candidate set to topically matching databases before
  fan-out, with an escape hatch to full broadcast on low confidence;
  :class:`RequestRouting` / :class:`RoutingDecision` are the request /
  response halves of the serving contract;
* :mod:`repro.classify.persist` — classifications persisted beside a
  durable model store, so warm-started serving routes immediately;
* :mod:`repro.classify.bench` — classification accuracy vs probe
  budget, and routed-vs-broadcast serving fan-out, written to
  ``BENCH_classify.json`` (``repro classify bench`` on the CLI).
"""

from repro.classify.classifier import (
    ClassifyParameters,
    DatabaseClassification,
    QueryProbeClassifier,
    TopicScore,
)
from repro.classify.persist import load_router, save_router
from repro.classify.probes import TopicProbe, TopicProbeSet, build_probe_set
from repro.classify.router import RequestRouting, RoutingDecision, TopicRouter

__all__ = [
    "ClassifyParameters",
    "DatabaseClassification",
    "QueryProbeClassifier",
    "RequestRouting",
    "RoutingDecision",
    "TopicProbe",
    "TopicProbeSet",
    "TopicRouter",
    "TopicScore",
    "build_probe_set",
    "load_router",
    "save_router",
]
