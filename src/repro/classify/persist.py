"""Durable persistence of classifications beside a model store.

Classification is an acquisition-time activity (it costs probe queries
against live databases), so its output is persisted the same way
learned language models are: a JSON document,
``classifications.json``, written atomically into the *root* of the
model store directory — flat or sharded, the file sits beside the
store's own manifest.  A serving process warm-starting from the store
(:meth:`~repro.serving.frontend.FederationFrontend.from_store`) picks
the router up in the same breath as the models and routes topically
from the very first query.

The schema is versioned (``repro-classify/1``); an unknown schema
loads as "no router" rather than failing the serving boot —
classification data is an optimization, never a boot dependency.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.classify.router import TopicRouter
from repro.store.base import ModelStorage
from repro.text.analyzer import Analyzer
from repro.utils.atomic import atomic_write_text

__all__ = [
    "CLASSIFICATIONS_FILE",
    "CLASSIFY_SCHEMA",
    "load_router",
    "save_router",
]

#: File name of the persisted classification set, in the store root.
CLASSIFICATIONS_FILE = "classifications.json"

#: Schema identifier stamped into the file.
CLASSIFY_SCHEMA = "repro-classify/1"


def _root_of(store: ModelStorage | str | Path) -> Path:
    if isinstance(store, (str, Path)):
        return Path(store)
    return store.root


def save_router(router: TopicRouter, store: ModelStorage | str | Path) -> Path:
    """Persist ``router`` beside the models of ``store``; returns the path.

    The write is atomic (temp file + rename) so a crashed save leaves
    any previous classification set intact.
    """
    root = _root_of(store)
    root.mkdir(parents=True, exist_ok=True)
    path = root / CLASSIFICATIONS_FILE
    payload = {"schema": CLASSIFY_SCHEMA, **router.to_payload()}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_router(
    store: ModelStorage | str | Path, *, analyzer: Analyzer | None = None
) -> TopicRouter | None:
    """The router persisted beside ``store``'s models, or ``None``.

    Returns ``None`` when no classification file exists or its schema
    is not one this code understands — the caller serves broadcast,
    exactly as if no classification had ever run.  Raises
    :class:`ValueError` only on a file that *claims* the right schema
    but cannot be parsed (that is corruption, not absence).
    """
    path = _root_of(store) / CLASSIFICATIONS_FILE
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt classification file at {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != CLASSIFY_SCHEMA:
        return None
    try:
        return TopicRouter.from_payload(payload, analyzer=analyzer)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"corrupt classification file at {path}: {exc}") from exc
