"""Topic-aware query routing over a classified federation.

The payoff of classification: once every database carries a
Coverage/Specificity classification
(:class:`~repro.classify.classifier.DatabaseClassification`), a query
that is recognizably *about* a topic only needs to fan out to the
databases classified into that topic — the rest of the federation can
be skipped without touching result quality on topically skewed
partitions (ROADMAP item 3).

:class:`TopicRouter` owns three pieces of state: the per-database
classifications, the per-topic term weights the probe generator kept
(:attr:`~repro.classify.probes.TopicProbeSet.term_weights`), and a
confidence floor.  Routing a query is then:

1. match the query's analyzed terms against the term weights → matched
   topics and a confidence (explicitly requested topics skip this step
   and carry confidence 1.0);
2. below the confidence floor, or with no topic matched, **fall back
   to full broadcast** — restriction is an optimization, never a
   correctness risk;
3. otherwise restrict the selector's ranking to the databases
   classified into a matched topic, keeping CORI's order, and cut to
   the requested depth.

Every decision is reported as a frozen :class:`RoutingDecision` on the
:class:`~repro.federation.service.FederatedResponse`, so clients (and
the gateway protocol) can see exactly what the router did and why.
:class:`RequestRouting` is the inbound half of the contract — an
optional topic restriction a client may attach to a
:class:`~repro.federation.service.SearchRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.classify.classifier import DatabaseClassification, TopicScore
from repro.classify.probes import TopicProbeSet
from repro.dbselect.base import DatabaseRanking, analyze_query
from repro.text.analyzer import Analyzer

__all__ = ["RequestRouting", "RoutingDecision", "TopicRouter"]


@dataclass(frozen=True)
class RequestRouting:
    """A client's routing instructions, carried on a search request.

    Parameters
    ----------
    topics:
        Restrict the fan-out to databases classified into these topics
        (empty = let the router match topics from the query text).
    min_confidence:
        Override of the router's broadcast-fallback floor for this
        request (``None`` keeps the router default).
    """

    topics: tuple[str, ...] = ()
    min_confidence: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "topics", tuple(self.topics))
        if self.min_confidence is not None and not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")


@dataclass(frozen=True)
class RoutingDecision:
    """What the router did with one query — the response-side metadata.

    ``mode`` is ``"routed"`` (fan-out restricted to ``candidates``
    topically matching databases) or ``"broadcast"``.  ``fell_back``
    marks a broadcast that *wanted* to route but could not —
    ``reason`` says why (``"low_confidence"``, ``"no_topic_match"``,
    ``"no_candidates"``, ``"no_router"``).
    """

    mode: str
    topics: tuple[str, ...]
    confidence: float
    candidates: int
    fell_back: bool = False
    reason: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("routed", "broadcast"):
            raise ValueError(f"mode must be 'routed' or 'broadcast', got {self.mode!r}")
        object.__setattr__(self, "topics", tuple(self.topics))


class TopicRouter:
    """Restrict a selector's candidate set to topically relevant databases.

    Parameters
    ----------
    classifications:
        Database name → its probe-derived classification.
    term_weights:
        Topic → term → weight, the probe pool's distinctiveness table
        (:attr:`~repro.classify.probes.TopicProbeSet.term_weights`).
        Matching happens in *analyzed* term space: weights are
        projected through ``analyzer`` at construction so stemming on
        either side cannot cause silent mismatches.
    min_confidence:
        Broadcast-fallback floor on query-match confidence.
    analyzer:
        The pipeline live queries are analyzed with — use the same one
        the federation's databases index with (the default matches
        :class:`~repro.index.server.DatabaseServer`'s default).
    projected:
        Set when ``term_weights`` are *already* in analyzed term space
        (a persisted router being rebuilt); skips re-projection, which
        is not idempotent for every stemmer output.
    """

    def __init__(
        self,
        classifications: Mapping[str, DatabaseClassification],
        term_weights: Mapping[str, Mapping[str, float]],
        *,
        min_confidence: float = 0.25,
        analyzer: Analyzer | None = None,
        projected: bool = False,
    ) -> None:
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        self.classifications = dict(classifications)
        self.min_confidence = min_confidence
        self.analyzer = analyzer if analyzer is not None else Analyzer.inquery_style()
        self.term_weights: dict[str, dict[str, float]] = {}
        if projected:
            self.term_weights = {
                topic: dict(weights) for topic, weights in term_weights.items()
            }
        else:
            for topic, weights in term_weights.items():
                merged: dict[str, float] = {}
                for term, weight in weights.items():
                    analyzed = self.analyzer.project_term(term)
                    if analyzed is not None:
                        merged[analyzed] = merged.get(analyzed, 0.0) + weight
                self.term_weights[topic] = merged
        self._members: dict[str, set[str]] = {}
        for name, classification in self.classifications.items():
            for topic in classification.assigned:
                self._members.setdefault(topic, set()).add(name)

    @classmethod
    def from_probes(
        cls,
        probe_set: TopicProbeSet,
        classifications: Mapping[str, DatabaseClassification],
        *,
        min_confidence: float = 0.25,
        analyzer: Analyzer | None = None,
    ) -> "TopicRouter":
        """Build a router straight from a probe set and its classifications."""
        return cls(
            classifications,
            probe_set.term_weights,
            min_confidence=min_confidence,
            analyzer=analyzer,
        )

    @property
    def topics(self) -> tuple[str, ...]:
        """Every topic the router knows term weights for, sorted."""
        return tuple(sorted(self.term_weights))

    def match_query(self, query: str) -> tuple[tuple[str, ...], float]:
        """Match a query to topics by distinctive-term overlap.

        Scores every topic by the summed weights of the query's
        analyzed terms in the topic's weight table; returns the topics
        within half of the best score (strongest first) and a
        confidence — the best topic's share of the total matched
        weight.  ``((), 0.0)`` when nothing matched.
        """
        terms = analyze_query(query, self.analyzer)
        scores = {
            topic: sum(weights.get(term, 0.0) for term in terms)
            for topic, weights in self.term_weights.items()
        }
        total = sum(scores.values())
        if total <= 0:
            return (), 0.0
        best = max(scores.values())
        matched = tuple(
            topic
            for topic, score in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            if score >= best / 2
        )
        return matched, best / total

    def candidates_for(self, topics: tuple[str, ...]) -> tuple[str, ...]:
        """Databases classified into any of ``topics``, sorted by name."""
        names: set[str] = set()
        for topic in topics:
            names.update(self._members.get(topic, ()))
        return tuple(sorted(names))

    def route(
        self,
        query: str,
        ranking: DatabaseRanking,
        depth: int,
        requested: RequestRouting | None = None,
    ) -> tuple[tuple[str, ...], RoutingDecision]:
        """Pick the databases to fan out to, with the decision made.

        Returns ``(selected, decision)``: ``selected`` is the ranked
        prefix to actually search — restricted to topical candidates
        when routing engaged, the plain top-``depth`` otherwise — and
        ``decision`` records what happened.  Ranking order is always
        preserved; routing only *filters* the selector's judgement.
        """
        if depth <= 0:
            raise ValueError("depth must be positive")
        broadcast = tuple(ranking.top(depth))
        floor = self.min_confidence
        if requested is not None and requested.min_confidence is not None:
            floor = requested.min_confidence
        if requested is not None and requested.topics:
            topics: tuple[str, ...] = requested.topics
            confidence = 1.0
        else:
            topics, confidence = self.match_query(query)
        if not topics:
            return broadcast, RoutingDecision(
                mode="broadcast",
                topics=(),
                confidence=0.0,
                candidates=len(ranking.entries),
                fell_back=True,
                reason="no_topic_match",
            )
        if confidence < floor:
            return broadcast, RoutingDecision(
                mode="broadcast",
                topics=topics,
                confidence=confidence,
                candidates=len(ranking.entries),
                fell_back=True,
                reason="low_confidence",
            )
        candidates = self.candidates_for(topics)
        selected = tuple(
            entry.name for entry in ranking.entries if entry.name in set(candidates)
        )[:depth]
        if not selected:
            return broadcast, RoutingDecision(
                mode="broadcast",
                topics=topics,
                confidence=confidence,
                candidates=len(ranking.entries),
                fell_back=True,
                reason="no_candidates",
            )
        return selected, RoutingDecision(
            mode="routed",
            topics=topics,
            confidence=confidence,
            candidates=len(candidates),
            fell_back=False,
        )

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        """The router's full state as a JSON-serializable payload."""
        return {
            "min_confidence": self.min_confidence,
            "term_weights": {
                topic: dict(weights) for topic, weights in self.term_weights.items()
            },
            "classifications": {
                name: {
                    "assigned": list(c.assigned),
                    "confidence": c.confidence,
                    "probes_issued": c.probes_issued,
                    "scores": [
                        [s.topic, s.coverage, s.specificity] for s in c.scores
                    ],
                }
                for name, c in sorted(self.classifications.items())
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, object], *, analyzer: Analyzer | None = None
    ) -> "TopicRouter":
        """Rebuild a router from :meth:`to_payload` output.

        The stored term weights were already projected through the
        saving router's analyzer at save time, so they are installed
        verbatim; pass the same ``analyzer`` the saving federation
        used so live queries keep analyzing consistently.
        """
        classifications = {}
        for name, row in dict(payload.get("classifications", {})).items():  # type: ignore[union-attr]
            scores = tuple(
                TopicScore(
                    topic=str(topic), coverage=float(cov), specificity=float(spec)
                )
                for topic, cov, spec in row["scores"]
            )
            classifications[str(name)] = DatabaseClassification(
                database=str(name),
                scores=scores,
                assigned=tuple(str(t) for t in row["assigned"]),
                confidence=float(row["confidence"]),
                probes_issued=int(row["probes_issued"]),
            )
        return cls(
            classifications,
            {
                str(topic): {str(term): float(w) for term, w in weights.items()}
                for topic, weights in dict(payload.get("term_weights", {})).items()  # type: ignore[union-attr]
            },
            min_confidence=float(payload.get("min_confidence", 0.25)),  # type: ignore[arg-type]
            analyzer=analyzer,
            projected=True,
        )
