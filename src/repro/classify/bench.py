"""Classification and routing benchmark → ``BENCH_classify.json``.

Two questions, one report, mirroring how the acquisition benches
measure the paper's ctf-ratio curves (synthetic testbed, seed
averaging, machine-readable output):

1. **How accurate is query-probing classification per probe budget?**
   A topically skewed synthetic federation is classified with 1, 2, 4,
   ... probes per topic; accuracy is the fraction of databases whose
   top assigned topic is one of the database's *home* topics — the
   topics for which that database holds the plurality of documents
   (``Document.topic`` is the label the generator actually drew each
   document from; the skewed partition homes several topics per
   database, so any of them is a correct answer).  Averaged over
   seeds, the curve rises with budget the same way the paper's
   vocabulary curves rise with sampled documents: steeply at first,
   then flattening.
2. **What does topic-aware routing save at matched quality?**  The same
   federation serves its topical query set twice — broadcast (plain
   CORI depth) and routed (CORI restricted to databases classified
   under the query's topics).  The report carries mean
   ``databases_per_query`` for both modes, topical precision@n for
   both (fraction of merged results whose document was generated from
   the query's topic), result overlap, and the fallback count.

Run via ``repro classify bench``; the committed ``BENCH_classify.json``
at the repo root is this module's output on the default configuration.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.classify.classifier import ClassifyParameters, QueryProbeClassifier
from repro.classify.probes import TopicProbeSet, build_probe_set
from repro.classify.router import TopicRouter
from repro.corpus.collection import Corpus
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.federation.testbed import TopicalQuery, build_skewed_partition, topical_queries
from repro.index.server import DatabaseServer
from repro.synth.profiles import PROFILES_BY_NAME

__all__ = [
    "CLASSIFY_BENCH_SCHEMA",
    "BudgetPoint",
    "ClassifyBenchReport",
    "RoutingComparison",
    "accuracy_vs_budget_curve",
    "format_classify_bench",
    "home_topics",
    "run_classify_bench",
    "write_classify_bench",
]

CLASSIFY_BENCH_SCHEMA = "repro-classify-bench/1"


@dataclass(frozen=True)
class BudgetPoint:
    """One probe budget's classification quality (seed-averaged)."""

    budget: int
    accuracy: float
    probes_per_database: float


@dataclass(frozen=True)
class RoutingComparison:
    """Routed vs broadcast serving over the topical query set.

    ``precision`` is topical precision@n — the fraction of merged
    results whose document carries the query's ground-truth topic
    label — measured identically for both modes, so the fan-out saving
    can be read at matched result quality.  ``overlap`` is the mean
    fraction of broadcast top-n documents the routed answer also
    returned.
    """

    queries: int
    broadcast_databases_per_query: float
    routed_databases_per_query: float
    broadcast_precision: float
    routed_precision: float
    overlap: float
    fallbacks: int

    @property
    def fanout_ratio(self) -> float:
        """Broadcast over routed fan-out (>1 means routing saves work)."""
        if self.routed_databases_per_query <= 0:
            return float("inf")
        return self.broadcast_databases_per_query / self.routed_databases_per_query


@dataclass(frozen=True)
class ClassifyBenchReport:
    """Everything ``repro classify bench`` measured, machine-readable."""

    profile: str
    num_databases: int
    scale: float
    seeds: tuple[int, ...]
    databases_per_query: int
    accuracy_curve: tuple[BudgetPoint, ...]
    routing: RoutingComparison

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form matching the ``repro-classify-bench/1`` schema."""
        return {
            "schema": CLASSIFY_BENCH_SCHEMA,
            "config": {
                "profile": self.profile,
                "num_databases": self.num_databases,
                "scale": self.scale,
                "seeds": list(self.seeds),
                "databases_per_query": self.databases_per_query,
            },
            "accuracy_vs_budget": [
                {
                    "budget": point.budget,
                    "accuracy": round(point.accuracy, 4),
                    "probes_per_database": round(point.probes_per_database, 2),
                }
                for point in self.accuracy_curve
            ],
            "routing": {
                "queries": self.routing.queries,
                "broadcast_databases_per_query": round(
                    self.routing.broadcast_databases_per_query, 3
                ),
                "routed_databases_per_query": round(
                    self.routing.routed_databases_per_query, 3
                ),
                "fanout_ratio": round(self.routing.fanout_ratio, 3),
                "broadcast_precision": round(self.routing.broadcast_precision, 4),
                "routed_precision": round(self.routing.routed_precision, 4),
                "overlap": round(self.routing.overlap, 4),
                "fallbacks": self.routing.fallbacks,
            },
        }


def home_topics(parts: Sequence[Corpus]) -> dict[str, frozenset[str]]:
    """Each database's ground-truth home topics.

    A topic's home is the database holding the plurality of its
    documents (ties break alphabetically).  The skewed partition homes
    several topics per database, so the classification oracle is a
    *set*: classifying a database under any of its home topics is
    correct — exactly the property routing needs, since a query about
    topic ``t`` should reach ``t``'s home.
    """
    counts: dict[str, Counter] = {}
    for part in parts:
        for document in part:
            if document.topic is not None:
                counts.setdefault(document.topic, Counter())[part.name] += 1
    homes: dict[str, set[str]] = {part.name: set() for part in parts}
    for topic, per_database in counts.items():
        best = min(per_database, key=lambda name: (-per_database[name], name))
        homes[best].add(topic)
    return {name: frozenset(topics) for name, topics in homes.items()}


def _accuracy_at(
    servers: Mapping[str, DatabaseServer],
    truth: Mapping[str, frozenset[str]],
    probe_set: TopicProbeSet,
    budget: int,
) -> tuple[float, float]:
    """(accuracy, mean probes per database) at one probe budget."""
    classifier = QueryProbeClassifier(
        probe_set, ClassifyParameters(probes_per_topic=budget)
    )
    classifications = classifier.classify_all(servers)
    hits = 0
    probes = 0
    for name, classification in classifications.items():
        probes += classification.probes_issued
        if classification.assigned and classification.assigned[0] in truth.get(
            name, frozenset()
        ):
            hits += 1
    count = max(len(classifications), 1)
    return hits / count, probes / count


def _federation(
    profile: str, num_databases: int, scale: float, seed: int
) -> tuple[list[Corpus], dict[str, DatabaseServer]]:
    corpus = PROFILES_BY_NAME[profile]().build(seed=seed, scale=scale)
    parts = build_skewed_partition(corpus, num_databases=num_databases, seed=seed)
    return parts, {part.name: DatabaseServer(part) for part in parts}


def accuracy_vs_budget_curve(
    profile: str = "wsj88",
    *,
    num_databases: int = 4,
    scale: float = 0.05,
    seeds: Sequence[int] = (0, 1, 2),
    budgets: Sequence[int] = (1, 2, 4, 8, 16),
) -> list[tuple[int, float]]:
    """Seed-averaged (probe budget, classification accuracy) points.

    The classification analogue of the acquisition experiments' ctf
    curves: one synthetic federation per seed, classified at every
    budget, accuracies averaged.  Feed the result (keyed by profile)
    to :func:`repro.experiments.reporting.format_series` to render it
    alongside the other curves.
    """
    if not seeds or not budgets:
        raise ValueError("need at least one seed and one budget")
    totals = {budget: 0.0 for budget in budgets}
    for seed in seeds:
        parts, servers = _federation(profile, num_databases, scale, seed)
        truth = home_topics(parts)
        space = PROFILES_BY_NAME[profile]().topic_space(seed=seed, scale=scale)
        probe_set = build_probe_set(space, probes_per_topic=max(budgets), seed=seed)
        for budget in budgets:
            accuracy, _ = _accuracy_at(servers, truth, probe_set, budget)
            totals[budget] += accuracy
    return [(budget, totals[budget] / len(seeds)) for budget in budgets]


def _topical_precision(
    response_results: Sequence, doc_topic: Mapping[str, str | None], topic: str
) -> float:
    if not response_results:
        return 0.0
    relevant = sum(
        1 for result in response_results if doc_topic.get(result.doc_id) == topic
    )
    return relevant / len(response_results)


def _routing_round(
    parts: Sequence[Corpus],
    servers: Mapping[str, DatabaseServer],
    probe_set: TopicProbeSet,
    queries: Sequence[TopicalQuery],
    *,
    databases_per_query: int,
    n: int,
) -> tuple[list[int], list[int], list[float], list[float], list[float], int]:
    """One seed's broadcast-vs-routed pass over its topical queries."""
    models = {name: server.actual_language_model() for name, server in servers.items()}
    doc_topic = {
        document.doc_id: document.topic for part in parts for document in part
    }
    classifier = QueryProbeClassifier(probe_set)
    classifications = classifier.classify_all(servers)
    router = TopicRouter.from_probes(probe_set, classifications)

    broadcast = FederatedSearchService(
        dict(servers), databases_per_query=databases_per_query
    )
    broadcast.use_models(models)
    routed = FederatedSearchService(
        dict(servers), databases_per_query=databases_per_query, router=router
    )
    routed.use_models(models)

    broadcast_fanout: list[int] = []
    routed_fanout: list[int] = []
    broadcast_precision: list[float] = []
    routed_precision: list[float] = []
    overlaps: list[float] = []
    fallbacks = 0
    for query in queries:
        request = SearchRequest(query=query.text, n=n)
        plain = broadcast.search(request)
        aware = routed.search(request)
        broadcast_fanout.append(len(plain.searched))
        routed_fanout.append(len(aware.searched))
        broadcast_precision.append(
            _topical_precision(plain.results, doc_topic, query.topic)
        )
        routed_precision.append(
            _topical_precision(aware.results, doc_topic, query.topic)
        )
        if plain.results:
            returned = {result.doc_id for result in aware.results}
            overlaps.append(
                sum(1 for result in plain.results if result.doc_id in returned)
                / len(plain.results)
            )
        if aware.routing is not None and aware.routing.fell_back:
            fallbacks += 1
    return (
        broadcast_fanout,
        routed_fanout,
        broadcast_precision,
        routed_precision,
        overlaps,
        fallbacks,
    )


def run_classify_bench(
    *,
    profile: str = "wsj88",
    num_databases: int = 4,
    scale: float = 0.05,
    seeds: Sequence[int] = (0, 1, 2),
    budgets: Sequence[int] = (1, 2, 4, 8, 16),
    databases_per_query: int = 3,
    n: int = 10,
) -> ClassifyBenchReport:
    """Measure the accuracy curve and the routed-vs-broadcast saving.

    One topically skewed synthetic federation per seed; classification
    accuracy at every probe budget; then, with the full-budget
    classifications driving a :class:`~repro.classify.TopicRouter`, the
    federation's topical query set is served broadcast and routed and
    the fan-out / precision / overlap aggregates are averaged across
    seeds and queries.
    """
    if not seeds or not budgets:
        raise ValueError("need at least one seed and one budget")
    accuracy_totals = {budget: 0.0 for budget in budgets}
    probe_totals = {budget: 0.0 for budget in budgets}
    broadcast_fanout: list[int] = []
    routed_fanout: list[int] = []
    broadcast_precision: list[float] = []
    routed_precision: list[float] = []
    overlaps: list[float] = []
    fallbacks = 0
    for seed in seeds:
        parts, servers = _federation(profile, num_databases, scale, seed)
        truth = home_topics(parts)
        space = PROFILES_BY_NAME[profile]().topic_space(seed=seed, scale=scale)
        probe_set = build_probe_set(space, probes_per_topic=max(budgets), seed=seed)
        for budget in budgets:
            accuracy, probes = _accuracy_at(servers, truth, probe_set, budget)
            accuracy_totals[budget] += accuracy
            probe_totals[budget] += probes
        queries = topical_queries(parts)
        round_ = _routing_round(
            parts,
            servers,
            probe_set,
            queries,
            databases_per_query=databases_per_query,
            n=n,
        )
        broadcast_fanout.extend(round_[0])
        routed_fanout.extend(round_[1])
        broadcast_precision.extend(round_[2])
        routed_precision.extend(round_[3])
        overlaps.extend(round_[4])
        fallbacks += round_[5]

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ClassifyBenchReport(
        profile=profile,
        num_databases=num_databases,
        scale=scale,
        seeds=tuple(seeds),
        databases_per_query=databases_per_query,
        accuracy_curve=tuple(
            BudgetPoint(
                budget=budget,
                accuracy=accuracy_totals[budget] / len(seeds),
                probes_per_database=probe_totals[budget] / len(seeds),
            )
            for budget in budgets
        ),
        routing=RoutingComparison(
            queries=len(broadcast_fanout),
            broadcast_databases_per_query=mean(broadcast_fanout),
            routed_databases_per_query=mean(routed_fanout),
            broadcast_precision=mean(broadcast_precision),
            routed_precision=mean(routed_precision),
            overlap=mean(overlaps),
            fallbacks=fallbacks,
        ),
    )


def format_classify_bench(report: ClassifyBenchReport) -> str:
    """Render the report as the aligned ASCII tables the benches print."""
    from repro.experiments.reporting import format_table

    curve_rows = [
        {
            "probes/topic": point.budget,
            "accuracy": f"{point.accuracy:.3f}",
            "probes/db": f"{point.probes_per_database:.1f}",
        }
        for point in report.accuracy_curve
    ]
    routing = report.routing
    routing_rows = [
        {
            "mode": "broadcast",
            "databases/query": f"{routing.broadcast_databases_per_query:.2f}",
            "precision@n": f"{routing.broadcast_precision:.3f}",
        },
        {
            "mode": "routed",
            "databases/query": f"{routing.routed_databases_per_query:.2f}",
            "precision@n": f"{routing.routed_precision:.3f}",
        },
    ]
    summary = (
        f"fanout ratio {routing.fanout_ratio:.2f}x, overlap {routing.overlap:.3f}, "
        f"fallbacks {routing.fallbacks}/{routing.queries}"
    )
    return (
        format_table(
            curve_rows,
            title=(
                f"Classification accuracy vs probe budget "
                f"({report.profile}, {report.num_databases} databases, "
                f"seeds {list(report.seeds)})"
            ),
        )
        + "\n\n"
        + format_table(routing_rows, title="Routed vs broadcast serving")
        + "\n"
        + summary
    )


def write_classify_bench(report: ClassifyBenchReport, path: str) -> None:
    """Write the report's JSON form (the committed baseline file)."""
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2)
        handle.write("\n")
