"""Coverage/Specificity database classification from hit counts alone.

Ipeirotis, Gravano & Sahami classify an *uncooperative* text database
by sending it topic-labelled probe queries and reading only the match
counts every real search interface already reports ("about N
results").  Two statistics summarize the answers for topic ``t``:

* **Coverage(t)** — the total number of matches the database reported
  for ``t``'s probes: how much of the topic the database *contains*,
  in absolute terms.
* **Specificity(t)** — ``Coverage(t)`` divided by the total coverage
  over all topics: how much of the database is *about* the topic,
  relative to everything else it holds.

A database is classified into every topic that clears both thresholds
(``tau_coverage``, ``tau_specificity``); a homogeneous database lands
in one topic with specificity near 1, a very heterogeneous one spreads
thin and may clear the specificity bar nowhere — which downstream
routing treats as "don't restrict, broadcast".

The only database surface consumed is
:meth:`~repro.backend.HitCountingDatabase.hit_count`, so the
classifier works against anything the sampler can work against —
including the size estimator's targets and remote backends that expose
nothing but a search box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.backend import HitCountingDatabase
from repro.classify.probes import TopicProbeSet
from repro.obs.trace import NULL_RECORDER, Recorder

__all__ = [
    "ClassifyParameters",
    "DatabaseClassification",
    "QueryProbeClassifier",
    "TopicScore",
]


@dataclass(frozen=True)
class ClassifyParameters:
    """The classification thresholds and probe budget.

    Parameters
    ----------
    tau_coverage:
        Minimum total matches a topic's probes must find for the topic
        to be assignable (absolute floor; screens out noise hits).
    tau_specificity:
        Minimum fraction of the database's total probe matches a topic
        must account for.  The knob that separates "contains some of
        everything" from "is about this".  Calibrate against the
        uniform baseline ``1 / num_topics``: the default 0.1 sits
        comfortably above uniform for spaces up to ~10 topics and
        still screens diffuse databases in larger spaces, where even a
        database's *home* topics rarely exceed a few times uniform.
    probes_per_topic:
        Issue only the first N probes per topic (``None`` = all).  The
        cost/accuracy dial the accuracy-vs-budget benchmark sweeps.
    """

    tau_coverage: float = 1.0
    tau_specificity: float = 0.1
    probes_per_topic: int | None = None

    def __post_init__(self) -> None:
        if self.tau_coverage < 0:
            raise ValueError("tau_coverage must be non-negative")
        if not 0.0 <= self.tau_specificity <= 1.0:
            raise ValueError("tau_specificity must be in [0, 1]")
        if self.probes_per_topic is not None and self.probes_per_topic <= 0:
            raise ValueError("probes_per_topic must be positive")


@dataclass(frozen=True)
class TopicScore:
    """One topic's Coverage/Specificity for one database."""

    topic: str
    coverage: float
    specificity: float


@dataclass(frozen=True)
class DatabaseClassification:
    """Everything probing one database established.

    ``assigned`` lists the topics clearing both thresholds, most
    specific first; empty means the database looked topically diffuse
    (or empty) and routing should not restrict on it.  ``confidence``
    is the best assigned topic's specificity (0.0 when nothing was
    assigned).  ``probes_issued`` counts the hit-count queries spent.
    """

    database: str
    scores: tuple[TopicScore, ...]
    assigned: tuple[str, ...]
    confidence: float
    probes_issued: int

    def score_for(self, topic: str) -> TopicScore | None:
        """The :class:`TopicScore` for ``topic``, or ``None``."""
        for score in self.scores:
            if score.topic == topic:
                return score
        return None


class QueryProbeClassifier:
    """Classify databases into topics by issuing probe queries.

    Parameters
    ----------
    probe_set:
        The topic-labelled probes (:func:`~repro.classify.probes.build_probe_set`).
    params:
        Thresholds and probe budget (:class:`ClassifyParameters`).
    recorder:
        Observability sink; counts probes under ``classify.probes`` and
        classifications under ``classify.databases``.
    """

    def __init__(
        self,
        probe_set: TopicProbeSet,
        params: ClassifyParameters | None = None,
        *,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.probe_set = probe_set
        self.params = params or ClassifyParameters()
        self.recorder = recorder

    def classify(
        self, database: HitCountingDatabase, name: str | None = None
    ) -> DatabaseClassification:
        """Probe ``database`` and score every topic.

        Issues up to ``probes_per_topic`` hit-count queries per topic
        (strongest probes first — the probe set orders them) and
        derives Coverage/Specificity from the counts; nothing else
        about the database is observed.
        """
        params = self.params
        database_name = name or getattr(database, "name", "database")
        coverage: dict[str, float] = {}
        probes_issued = 0
        for topic in self.probe_set.topics:
            hits = 0
            for text in self.probe_set.probes(topic, params.probes_per_topic):
                hits += database.hit_count(text)
                probes_issued += 1
            coverage[topic] = float(hits)
        total = sum(coverage.values())
        scores = tuple(
            TopicScore(
                topic=topic,
                coverage=coverage[topic],
                specificity=coverage[topic] / total if total > 0 else 0.0,
            )
            for topic in self.probe_set.topics
        )
        assigned = tuple(
            score.topic
            for score in sorted(scores, key=lambda s: (-s.specificity, s.topic))
            if score.coverage >= params.tau_coverage
            and score.specificity >= params.tau_specificity
        )
        confidence = 0.0
        if assigned:
            best = next(score for score in scores if score.topic == assigned[0])
            confidence = best.specificity
        self.recorder.count("classify.probes", probes_issued)
        self.recorder.count("classify.databases")
        return DatabaseClassification(
            database=database_name,
            scores=scores,
            assigned=assigned,
            confidence=confidence,
            probes_issued=probes_issued,
        )

    def classify_all(
        self, servers: Mapping[str, HitCountingDatabase]
    ) -> dict[str, DatabaseClassification]:
        """Classify every database in a federation, keyed by name."""
        return {
            name: self.classify(server, name=name)
            for name, server in sorted(servers.items())
        }
