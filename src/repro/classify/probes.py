"""Topic-labelled probe sets, rule-derived from synthetic topic mixtures.

Query-probing classification (Ipeirotis, Gravano & Sahami) sends each
candidate database a small set of *probe queries per topic* and reads
nothing back but hit counts.  The probes must be words that are
characteristic of their topic and of no other — exactly what the
synthetic topic mixtures (:class:`~repro.synth.topics.TopicSpace`) make
computable: every topic is a known unigram distribution over a shared
vocabulary, so a word's *distinctiveness* for topic ``t`` is its
probability under ``t`` divided by its mean probability under the other
topics.

:func:`build_probe_set` turns a topic space into a
:class:`TopicProbeSet`: per topic, a seeded weighted draw of probe
terms from the most distinctive content words (the rule excludes
stopwords, noise tokens, and words shorter than three characters —
probes must look like plausible user vocabulary).  The same
distinctiveness scores are kept as per-topic *term weights*, which the
:class:`~repro.classify.router.TopicRouter` reuses to match live
queries to topics without issuing any probes.

Everything is deterministic in ``seed``: the same topic space and seed
produce byte-identical probe sets, so classifications are reproducible
and probe budgets can be compared apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.synth.topics import TopicSpace
from repro.utils.rand import derive_seed, ensure_rng

__all__ = ["TopicProbe", "TopicProbeSet", "build_probe_set"]

#: Minimum length of a probe term (shorter tokens are rarely queried).
MIN_PROBE_TERM_LENGTH = 3


@dataclass(frozen=True)
class TopicProbe:
    """One probe query, labelled with the topic it tests for."""

    topic: str
    text: str


class TopicProbeSet:
    """Per-topic probe queries plus the term weights that produced them.

    Parameters
    ----------
    probes:
        Topic name → that topic's probe queries, most distinctive
        first.  Order matters: a budget-capped classifier issues a
        *prefix*, so truncation keeps the strongest probes.
    term_weights:
        Topic name → term → normalized distinctiveness weight, over a
        pool wider than the probes themselves.  The router matches live
        query terms against these.
    """

    def __init__(
        self,
        probes: Mapping[str, tuple[str, ...]],
        term_weights: Mapping[str, Mapping[str, float]],
    ) -> None:
        if set(probes) != set(term_weights):
            raise ValueError("probes and term_weights must cover the same topics")
        self._probes = {topic: tuple(texts) for topic, texts in probes.items()}
        self.term_weights: dict[str, dict[str, float]] = {
            topic: dict(weights) for topic, weights in term_weights.items()
        }

    @property
    def topics(self) -> tuple[str, ...]:
        """The topic labels, sorted."""
        return tuple(sorted(self._probes))

    @property
    def probes_per_topic(self) -> int:
        """The (maximum) number of probes available per topic."""
        return max((len(texts) for texts in self._probes.values()), default=0)

    def probes(self, topic: str, budget: int | None = None) -> tuple[str, ...]:
        """The probe queries for ``topic``, optionally budget-capped.

        ``budget`` takes the first ``budget`` probes — the most
        distinctive ones — so accuracy-vs-budget sweeps reuse one
        probe set instead of regenerating per level.
        """
        texts = self._probes[topic]
        if budget is None:
            return texts
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        return texts[:budget]

    def all_probes(self, budget: int | None = None) -> list[TopicProbe]:
        """Every probe as a labelled :class:`TopicProbe`, topic-sorted."""
        return [
            TopicProbe(topic=topic, text=text)
            for topic in self.topics
            for text in self.probes(topic, budget)
        ]


def build_probe_set(
    topic_space: TopicSpace,
    *,
    probes_per_topic: int = 8,
    terms_per_probe: int = 1,
    pool_factor: int = 4,
    seed: int = 0,
) -> TopicProbeSet:
    """Derive a seeded, reproducible probe set from a topic space.

    For each topic the rule is:

    1. score every *content* word by distinctiveness — its probability
       under this topic over its mean probability under the others
       (uniform background when there is only one topic);
    2. keep the top ``probes_per_topic * terms_per_probe * pool_factor``
       eligible words (length >= 3; stopword and noise blocks are
       outside the content id range and never eligible) as the
       candidate pool, which also becomes the topic's router term
       weights;
    3. draw the probe terms from the pool *weighted by score* with a
       seed derived per topic — so probes concentrate on distinctive
       vocabulary but different seeds explore different draws, and the
       same seed always reproduces the same probes.

    Probe queries are ``terms_per_probe`` drawn terms joined by
    spaces; the default of one term per probe keeps the hit count's
    meaning sharp (documents containing *this* word).
    """
    if probes_per_topic <= 0:
        raise ValueError(f"probes_per_topic must be positive, got {probes_per_topic}")
    if terms_per_probe <= 0:
        raise ValueError(f"terms_per_probe must be positive, got {terms_per_probe}")
    if pool_factor <= 0:
        raise ValueError(f"pool_factor must be positive, got {pool_factor}")

    vocabulary = topic_space.vocabulary
    stop_count = len(vocabulary.stopwords)
    content_size = len(vocabulary.content)
    vocabulary_size = len(topic_space.words)
    # Dense per-topic distributions over the shared id space; the
    # content block occupies ids [stop_count, stop_count + content_size).
    dense = np.stack(
        [topic.dense_pdf(vocabulary_size) for topic in topic_space.topics]
    )
    content = dense[:, stop_count : stop_count + content_size]
    num_topics = content.shape[0]
    if num_topics > 1:
        background = (content.sum(axis=0, keepdims=True) - content) / (num_topics - 1)
    else:
        background = np.full_like(content, 1.0 / max(content_size, 1))
    # Words the topic never emits can't be probes for it; the epsilon
    # keeps topic-exclusive words (background exactly zero) finite and
    # ranked by their in-topic probability.
    epsilon = 1e-12
    distinctiveness = np.where(content > 0, content / (background + epsilon), 0.0)

    eligible = np.array(
        [len(word) >= MIN_PROBE_TERM_LENGTH for word in vocabulary.content]
    )
    distinctiveness[:, ~eligible] = 0.0

    pool_size = probes_per_topic * terms_per_probe * pool_factor
    probes: dict[str, tuple[str, ...]] = {}
    term_weights: dict[str, dict[str, float]] = {}
    for topic_index, topic in enumerate(topic_space.topics):
        scores = distinctiveness[topic_index]
        candidates = np.flatnonzero(scores > 0)
        if candidates.size == 0:
            raise ValueError(
                f"topic {topic.name!r} has no eligible probe vocabulary"
            )
        # Stable top-k: sort by (-score, word id) so ties break the
        # same way on every platform.
        order = candidates[np.lexsort((candidates, -scores[candidates]))]
        pool = order[: min(pool_size, order.size)]
        pool_scores = scores[pool]
        weights = pool_scores / pool_scores.sum()
        term_weights[topic.name] = {
            vocabulary.content[int(word_index)]: float(weight)
            for word_index, weight in zip(pool, weights)
        }
        needed = probes_per_topic * terms_per_probe
        rng = ensure_rng(derive_seed(seed, "classify-probes", topic.name))
        if needed >= pool.size:
            drawn = pool  # the whole pool, strongest first
        else:
            drawn = rng.choice(pool, size=needed, replace=False, p=weights)
        terms = [vocabulary.content[int(word_index)] for word_index in drawn]
        probes[topic.name] = tuple(
            " ".join(terms[i : i + terms_per_probe])
            for i in range(0, len(terms) - terms_per_probe + 1, terms_per_probe)
        )
    return TopicProbeSet(probes, term_weights)
