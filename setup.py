"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 517 editable installs need bdist_wheel).
"""

from setuptools import setup

setup()
