"""Table 3: queries required to retrieve the document budget.

Paper reference (Table 3, WSJ88, 300 documents): Random-olm needed
~twice the queries of Random-llm (235 vs 127 in the paper) because
terms drawn from another collection's model often fail on the target
database; the frequency-based strategies needed the fewest queries
(their high-frequency terms always match many documents) but learned
worse models (Figure 3).
"""

from __future__ import annotations

from benchmarks.conftest import emit, shape_checks
from repro.experiments.reporting import format_table


def test_bench_table3(benchmark, fig3_results, testbed):
    query_counts = benchmark.pedantic(
        lambda: {label: queries for label, (_, queries) in fig3_results.items()},
        rounds=1,
        iterations=1,
    )
    rows = [
        {"strategy": label, "queries": round(count, 1)}
        for label, count in query_counts.items()
    ]
    emit(
        format_table(
            rows, title="Table 3: queries required to retrieve the document budget"
        )
    )

    if shape_checks(testbed):
        # The olm strategy pays a substantial query premium over
        # random-llm (the paper's 235 vs 127).
        assert query_counts["random_olm"] > 1.3 * query_counts["random_llm"], query_counts
    # Every strategy eventually filled its budget.
    assert all(count > 0 for count in query_counts.values())
