"""Figures 1a and 1b: vocabulary coverage vs. documents examined.

Paper reference: Figure 1a shows percentage-of-terms learned growing
slowly and *strongly size-dependent* (TREC-123 ≈ 1% at 250 docs, CACM ≈
a third); Figure 1b shows ctf ratio exceeding ~80% for all three
databases by ~250 documents and leveling — near size-independence.
Baseline settings: random-from-learned selection, 4 docs/query.
"""

from __future__ import annotations

from benchmarks.conftest import emit, shape_checks
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import curve_series, format_series


def test_bench_figure1a_percentage_learned(benchmark, fig12_curves, testbed):
    series = benchmark.pedantic(
        lambda: curve_series(fig12_curves, "percentage_learned"), rounds=1, iterations=1
    )
    emit(
        format_series(
            series,
            title="Figure 1a: fraction of database terms covered by the learned model",
        )
    )
    emit(plot_series(series, title="Figure 1a (plot)"))
    final = {name: points[-1][1] for name, points in series.items()}
    if shape_checks(testbed):
        # Strong size-dependence: bigger corpora have smaller coverage.
        assert final["cacm"] > final["wsj88"] > final["trec123"], final
    # Unconditionally: nobody covers the whole vocabulary from a sample.
    assert all(0.0 < value < 0.9 for value in final.values()), final


def test_bench_figure1b_ctf_ratio(benchmark, fig12_curves, testbed):
    series = benchmark.pedantic(
        lambda: curve_series(fig12_curves, "ctf_ratio"), rounds=1, iterations=1
    )
    emit(
        format_series(
            series,
            title="Figure 1b: fraction of database word occurrences covered (ctf ratio)",
        )
    )
    emit(plot_series(series, title="Figure 1b (plot)"))
    final = {name: points[-1][1] for name, points in series.items()}
    if shape_checks(testbed):
        # Near size-independence: every corpus converges to a high ratio.
        assert all(value > 0.7 for value in final.values()), final
    # Curves are rising (learning) and level off: the last increment is
    # smaller than the first.
    for name, points in series.items():
        values = [v for _, v in points]
        assert values[-1] > values[0]
        if len(values) >= 3:
            assert values[1] - values[0] > values[-1] - values[-2]
