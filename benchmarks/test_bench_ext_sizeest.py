"""Extension Ext-5: estimating database size from the search surface.

The paper flags size estimation as an open problem (Section 3):
vocabulary growth never saturates, so the sample itself cannot reveal
the corpus size.  Follow-on work solved it; this bench reproduces the
comparison on all three testbed corpora:

* **sample-resample** (Si & Callan 2003) — scale a probe term's sample
  df by the database's observable hit count.  Expected: usable accuracy
  (tens of percent error) at a ~100-document budget.
* **capture-recapture** (Schnabel / Schumacher-Eschmeyer) over repeated
  sampling episodes.  Expected: much larger, unstable error, because
  query-based samples are neither uniform nor independent — the reason
  the literature abandoned this route for uncooperative databases.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.sizeest import capture_recapture_report, estimate_database_size

SAMPLE_BUDGET = 120


def _experiment(testbed):
    rows = []
    errors: dict[tuple[str, str], float] = {}
    for name in ("cacm", "wsj88", "trec123"):
        server = testbed.server(name)
        true_size = server.num_documents
        bootstrap = testbed.bootstrap()

        resample = estimate_database_size(
            server,
            bootstrap,
            method="sample_resample",
            sample_documents=min(SAMPLE_BUDGET, testbed.document_budget(name)),
            num_probes=15,
            seed=5,
        )
        estimates = {"sample_resample": resample}
        report = capture_recapture_report(
            server,
            bootstrap,
            sample_documents=min(SAMPLE_BUDGET * 2, testbed.document_budget(name) * 2),
            num_capture_samples=4,
            seed=5,
        )
        for method, result in report.items():
            estimates[method] = result.estimate

        for method, estimate in estimates.items():
            finite = estimate != float("inf")
            relative_error = (
                abs(estimate - true_size) / true_size if finite else float("inf")
            )
            errors[(name, method)] = relative_error
            rows.append(
                {
                    "corpus": name,
                    "method": method,
                    "true_size": true_size,
                    "estimate": round(estimate) if finite else "unbounded",
                    "rel_error": round(relative_error, 2) if finite else "inf",
                }
            )
    return rows, errors


def test_bench_ext_sizeest(benchmark, testbed):
    rows, errors = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-5: database size estimation by sampling"))

    for name in ("cacm", "wsj88", "trec123"):
        # Sample-resample lands within a factor of ~2 of the truth...
        assert errors[(name, "sample_resample")] < 1.0, (name, errors)
        # ...and is never beaten decisively by either capture estimator.
        best_capture = min(
            errors[(name, "schnabel")], errors[(name, "schumacher_eschmeyer")]
        )
        assert errors[(name, "sample_resample")] <= best_capture + 0.5, (name, errors)
