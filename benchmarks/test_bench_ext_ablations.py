"""Extension Ext-3: ablations of the sampler's design decisions.

DESIGN.md calls out three load-bearing choices; each is ablated here on
the WSJ-like corpus:

1. **Term eligibility** (≥3 chars, non-numeric): disabling it admits
   short/numeric query terms, which fail more often — wasted queries
   for the same learned model quality.
2. **Unique-document accounting**: counting duplicates inflates
   "documents examined" without adding information, weakening the model
   at a fixed retrieval budget.
3. **Stopping criterion**: the rdiff-convergence rule stops within the
   fixed-budget run's quality envelope while often spending fewer
   documents (the paper's Section 6 proposal).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.lm import ctf_ratio
from repro.sampling import (
    AnyOf,
    MaxDocuments,
    QueryBasedSampler,
    RandomFromLearned,
    RdiffConvergence,
    SamplerConfig,
)
from repro.sampling.selection import RandomFromOther

BUDGET = 300


def _quality(run, server):
    projected = run.model.project(server.index.analyzer)
    return ctf_ratio(projected, server.actual_language_model())


def _run(server, bootstrap, *, strategy=None, stopping=None, config=None, seed=0):
    sampler = QueryBasedSampler(
        server,
        bootstrap=bootstrap,
        strategy=strategy,
        stopping=stopping or MaxDocuments(BUDGET),
        config=config or SamplerConfig(),
        seed=seed,
    )
    return sampler.run()


def _experiment(testbed):
    server = testbed.server("wsj88")
    budget = testbed.document_budget("wsj88")
    bootstrap = RandomFromOther(testbed.actual_model("trec123"))
    rows = []

    baseline = _run(server, bootstrap, stopping=MaxDocuments(budget), seed=3)
    rows.append(
        {
            "variant": "baseline",
            "documents": baseline.documents_examined,
            "queries": baseline.queries_run,
            "failed": baseline.failed_queries,
            "ctf_ratio": round(_quality(baseline, server), 3),
        }
    )

    # 1. Eligibility off: allow 1-character terms as queries.
    permissive = _run(
        server,
        RandomFromOther(testbed.actual_model("trec123"), min_length=1),
        strategy=RandomFromLearned(min_length=1),
        stopping=MaxDocuments(budget),
        seed=3,
    )
    rows.append(
        {
            "variant": "no_eligibility_rules",
            "documents": permissive.documents_examined,
            "queries": permissive.queries_run,
            "failed": permissive.failed_queries,
            "ctf_ratio": round(_quality(permissive, server), 3),
        }
    )

    # 2. Duplicate documents counted.
    duplicates = _run(
        server,
        bootstrap,
        stopping=MaxDocuments(budget),
        config=SamplerConfig(unique_documents=False),
        seed=3,
    )
    rows.append(
        {
            "variant": "count_duplicates",
            "documents": duplicates.documents_examined,
            "queries": duplicates.queries_run,
            "failed": duplicates.failed_queries,
            "ctf_ratio": round(_quality(duplicates, server), 3),
        }
    )

    # 3. rdiff-convergence stopping (with the budget as a backstop).
    converged = _run(
        server,
        bootstrap,
        stopping=AnyOf(
            [RdiffConvergence(threshold=0.05, consecutive=2), MaxDocuments(budget * 2)]
        ),
        seed=3,
    )
    rows.append(
        {
            "variant": "rdiff_stopping",
            "documents": converged.documents_examined,
            "queries": converged.queries_run,
            "failed": converged.failed_queries,
            "ctf_ratio": round(_quality(converged, server), 3),
        }
    )
    return rows


def test_bench_ext_ablations(benchmark, testbed):
    rows = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-3: sampler design ablations (wsj88)"))
    by_variant = {row["variant"]: row for row in rows}
    baseline = by_variant["baseline"]

    # Counting duplicates wastes budget: same "documents examined", but
    # the model saw fewer distinct documents → no better quality.
    assert by_variant["count_duplicates"]["ctf_ratio"] <= baseline["ctf_ratio"] + 0.02

    # The rdiff rule produces a model in the budget run's quality
    # neighbourhood.
    assert by_variant["rdiff_stopping"]["ctf_ratio"] >= baseline["ctf_ratio"] - 0.15

    # Dropping eligibility rules never *reduces* failures.
    assert by_variant["no_eligibility_rules"]["failed"] >= 0
