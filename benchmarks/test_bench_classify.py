"""Topic classification and routing benchmarks → ``BENCH_classify.json``.

Two benches:

* the accuracy-vs-probe-budget curve plus the routed-vs-broadcast
  comparison (:func:`repro.classify.bench.run_classify_bench`),
  regenerating the committed ``BENCH_classify.json`` baseline;
* the serving-path throughput of routed vs broadcast fan-out against
  latency-injected backends — routing's saving is backend *work*, so
  with per-backend latency it shows up as throughput, not just as a
  smaller ``databases_per_query``.
"""

from __future__ import annotations

import os

from benchmarks.conftest import SEEDS, emit
from repro.classify import ClassifyParameters, QueryProbeClassifier, TopicRouter, build_probe_set
from repro.classify.bench import (
    format_classify_bench,
    run_classify_bench,
    write_classify_bench,
)
from repro.federation.testbed import build_skewed_partition, topical_queries
from repro.index import DatabaseServer
from repro.serving.bench import format_serve_bench, run_serve_bench
from repro.synth.profiles import PROFILES_BY_NAME

#: Where the classify baseline lands (override: BENCH_CLASSIFY_PATH).
BENCH_CLASSIFY_PATH = os.environ.get(
    "BENCH_CLASSIFY_PATH",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_classify.json"),
)

#: Federation scale for the classify benches — small enough to run in
#: seconds, large enough that every topic has distinctive vocabulary.
SCALE = 0.05


def test_bench_classify_accuracy_and_routing():
    report = run_classify_bench(scale=SCALE, seeds=SEEDS)
    emit(format_classify_bench(report))
    write_classify_bench(report, BENCH_CLASSIFY_PATH)

    accuracies = [point.accuracy for point in report.accuracy_curve]
    # More probes must not make classification *worse* end to end.
    assert accuracies[-1] >= accuracies[0]
    assert max(accuracies) >= 0.75
    # The routing acceptance pin, at bench scale: measurably fewer
    # databases per query at matched (or better) topical precision.
    routing = report.routing
    assert routing.routed_databases_per_query < routing.broadcast_databases_per_query
    assert routing.routed_precision >= routing.broadcast_precision - 1e-9


def test_perf_routed_vs_broadcast_under_backend_latency(perf_recorder):
    corpus = PROFILES_BY_NAME["wsj88"]().build(seed=0, scale=SCALE)
    parts = build_skewed_partition(corpus, num_databases=4, seed=0)
    servers = {part.name: DatabaseServer(part) for part in parts}
    space = PROFILES_BY_NAME["wsj88"]().topic_space(seed=0, scale=SCALE)
    probe_set = build_probe_set(space, seed=0)
    classifier = QueryProbeClassifier(probe_set, ClassifyParameters())
    router = TopicRouter.from_probes(probe_set, classifier.classify_all(servers))

    queries = [query.text for query in topical_queries(parts)]
    assert queries
    report = run_serve_bench(
        servers,
        queries,
        budget=0.4,
        backend_latency=0.01,
        databases_per_query=3,
        router=router,
    )
    emit(format_serve_bench(report))

    perf_recorder.record(
        "serving.search_broadcast_10ms", report.modes["search_concurrent"][0]
    )
    perf_recorder.record("serving.search_routed_10ms", report.modes["search_routed"][0])
    perf_recorder.speedup(
        "routed_vs_broadcast_search",
        "serving.search_broadcast_10ms",
        "serving.search_routed_10ms",
    )
    assert report.fanout["search_routed"] < report.fanout["search_concurrent"]
