"""Table 1: test corpora statistics.

Paper reference (Table 1): CACM 2MB / 3,204 docs, homogeneous;
WSJ88 104MB / 39,904 docs, heterogeneous; TREC-123 3.2GB / 1,078,166
docs, very heterogeneous.  We regenerate the same row structure for the
synthetic analogues (sizes scale with ``REPRO_SCALE``); the invariant
under reproduction is the *ordering and ratios* of the three corpora.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.experiments.tables import table1_corpora


def test_bench_table1(benchmark, testbed):
    rows = benchmark.pedantic(
        lambda: table1_corpora(testbed), rounds=1, iterations=1
    )
    emit(format_table(rows, title="Table 1: test corpora"))

    by_name = {row["name"]: row for row in rows}
    # Size orderings of the paper's Table 1.
    assert (
        by_name["cacm"]["documents"]
        < by_name["wsj88"]["documents"]
        < by_name["trec123"]["documents"]
    )
    assert (
        by_name["cacm"]["unique_terms"]
        < by_name["wsj88"]["unique_terms"]
        < by_name["trec123"]["unique_terms"]
    )
    assert by_name["cacm"]["variety"] == "homogeneous"
    assert by_name["trec123"]["variety"] == "very heterogeneous"
