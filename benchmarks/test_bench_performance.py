"""Substrate performance benchmarks and the perf-regression baseline.

Unlike the table/figure benches (which regenerate the paper's results
once), these are conventional multi-round pytest benchmarks of the hot
paths a deployment would care about: analysis throughput, index
construction, query latency, sampling throughput, and learning-curve
measurement.  They exist so performance regressions in the substrate
are visible, not to reproduce anything from the paper.

Every benchmark also feeds the session's :class:`~conftest.PerfRecorder`,
which writes the machine-readable ``BENCH_perf.json`` baseline
(seconds/op and ops/sec per hot path, plus derived speedups).  The
curve-measurement benches compare three implementations of the same
computation — the frozen pre-optimization path
(:mod:`benchmarks.baselines`), today's full-reprojection reference, and
the incremental engine — and assert they still produce identical
curves, so the recorded speedup is never bought with changed results.
"""

from __future__ import annotations

import pytest

from benchmarks.baselines import measure_run_baseline
from repro.experiments.runner import measure_run, measure_run_full, run_sampling
from repro.index import (
    DatabaseServer,
    InvertedIndex,
    SearchEngine,
    add_documents_scalar,
    build_index_scalar,
    search_scalar,
)
from repro.lm import LanguageModel, ctf_ratio, spearman_rank_correlation
from repro.obs import TraceRecorder
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.sampling.transport import SimulatedClock
from repro.synth import wsj88_like
from repro.text import Analyzer

#: Scale the perf corpus is built at (600 documents) — independent of
#: REPRO_SCALE so baselines are comparable across runs.
PERF_SCALE = 0.05


@pytest.fixture(scope="module")
def corpus():
    return wsj88_like().build(seed=101, scale=PERF_SCALE)  # 600 docs


@pytest.fixture(scope="module")
def server(corpus):
    return DatabaseServer(corpus)


@pytest.fixture(scope="module")
def frequent_terms(server):
    return [s.term for s in server.actual_language_model().top_terms(50, "ctf")]


@pytest.fixture(scope="module")
def curve_run(server):
    """A 300-document sampling run with 50-document snapshots — the
    workload the incremental curve measurer is specified against."""
    actual = server.actual_language_model()
    run = run_sampling(
        server,
        bootstrap=RandomFromOther(actual),
        max_documents=300,
        seed=5,
    )
    # Projection is stem-cache-bound on first touch; measure all three
    # implementations against a warm cache, as in steady-state use.
    measure_run_full(run, actual, server.index.analyzer, "wsj88", "random_olm", 4)
    return run, actual


@pytest.fixture(autouse=True)
def _record_scale(perf_recorder):
    perf_recorder.scale = PERF_SCALE


def test_perf_analyze_documents(benchmark, corpus, perf_recorder):
    analyzer = Analyzer.inquery_style()
    texts = [corpus[i].text for i in range(100)]

    def analyze_all():
        return sum(len(analyzer.analyze(text)) for text in texts)

    total = benchmark(analyze_all)
    assert total > 0
    perf_recorder.record_benchmark("analyze_100_documents", benchmark)


def test_perf_index_build(benchmark, corpus, perf_recorder):
    index = benchmark.pedantic(
        lambda: InvertedIndex(corpus), rounds=3, iterations=1
    )
    assert index.num_documents == len(corpus)
    perf_recorder.record_benchmark("index_build", benchmark)


def test_perf_index_build_scalar_reference(benchmark, corpus, perf_recorder):
    """The pre-array scalar build (:func:`build_index_scalar`).

    Benchmarked so the derived ``index_build_array_vs_scalar`` ratio in
    ``BENCH_perf.json`` documents what the CSR refactor bought on this
    machine; the property tests in ``tests/test_array_equivalence.py``
    guarantee the two builds produce bit-identical statistics.
    """
    stats = benchmark.pedantic(
        lambda: build_index_scalar(corpus), rounds=3, iterations=1
    )
    assert len(stats.doc_lengths) == len(corpus)
    perf_recorder.record_benchmark("index_build_scalar_reference", benchmark)
    if "index_build" in perf_recorder.hot_paths:
        perf_recorder.speedup(
            "index_build_array_vs_scalar",
            before="index_build_scalar_reference",
            after="index_build",
        )


def test_perf_single_term_query(benchmark, server, frequent_terms, perf_recorder):
    engine = server.engine

    def query_round():
        hits = 0
        for term in frequent_terms:
            hits += len(engine.search(term, n=10))
        return hits

    hits = benchmark(query_round)
    assert hits > 0
    perf_recorder.record_benchmark("query_50_single_term", benchmark)


def test_perf_multi_term_query(benchmark, server, frequent_terms, perf_recorder):
    engine = server.engine
    queries = [
        " ".join(frequent_terms[i : i + 3]) for i in range(0, 30, 3)
    ]

    def query_round():
        return sum(len(engine.search(query, n=10)) for query in queries)

    hits = benchmark(query_round)
    assert hits > 0
    perf_recorder.record_benchmark("query_10_multi_term", benchmark)


def test_perf_multi_term_query_scalar(benchmark, server, frequent_terms, perf_recorder):
    """The pre-batching per-term search loop (:func:`search_scalar`).

    Paired with ``query_10_multi_term`` to derive the
    ``multi_term_query_batched_vs_scalar`` speedup; the equivalence
    tests pin that both produce identical rankings.
    """
    index = server.index
    scorer = server.engine.scorer
    queries = [
        " ".join(frequent_terms[i : i + 3]) for i in range(0, 30, 3)
    ]

    def query_round():
        return sum(len(search_scalar(index, scorer, query, n=10)) for query in queries)

    hits = benchmark(query_round)
    assert hits > 0
    perf_recorder.record_benchmark("query_10_multi_term_scalar", benchmark)
    if "query_10_multi_term" in perf_recorder.hot_paths:
        perf_recorder.speedup(
            "multi_term_query_batched_vs_scalar",
            before="query_10_multi_term_scalar",
            after="query_10_multi_term",
        )


def test_perf_lm_ingest_batched(benchmark, corpus, perf_recorder):
    analyzer = Analyzer.inquery_style()
    documents = [analyzer.analyze(document.text) for document in corpus]

    def ingest():
        model = LanguageModel("bench")
        model.add_documents(documents)
        return model

    model = benchmark(ingest)
    assert model.documents_seen == len(corpus)
    perf_recorder.record_benchmark("lm_ingest_600_docs_batched", benchmark)


def test_perf_lm_ingest_scalar(benchmark, corpus, perf_recorder):
    """One-document-at-a-time ingestion (:func:`add_documents_scalar`)."""
    analyzer = Analyzer.inquery_style()
    documents = [analyzer.analyze(document.text) for document in corpus]

    def ingest():
        model = LanguageModel("bench")
        add_documents_scalar(model, documents)
        return model

    model = benchmark(ingest)
    assert model.documents_seen == len(corpus)
    perf_recorder.record_benchmark("lm_ingest_600_docs_scalar", benchmark)
    if "lm_ingest_600_docs_batched" in perf_recorder.hot_paths:
        perf_recorder.speedup(
            "lm_ingest_batched_vs_scalar",
            before="lm_ingest_600_docs_scalar",
            after="lm_ingest_600_docs_batched",
        )


def test_perf_sampling_run(benchmark, server, perf_recorder):
    actual = server.actual_language_model()

    def one_run():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(actual),
            stopping=MaxDocuments(100),
            seed=5,
        )
        return sampler.run()

    run = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert run.documents_examined == 100
    perf_recorder.record_benchmark("sampling_run_100_docs", benchmark)


def test_perf_sampling_run_traced(benchmark, server, perf_recorder):
    """The same sampling run with a *live* TraceRecorder attached.

    ``sampling_run_100_docs`` above runs on the default no-op recorder,
    so the pair documents what full tracing costs; the derived
    ``sampling_run_noop_vs_traced`` ratio in ``BENCH_perf.json`` is the
    observability layer's overhead budget.
    """
    actual = server.actual_language_model()

    def one_run():
        recorder = TraceRecorder(clock=SimulatedClock())
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(actual),
            stopping=MaxDocuments(100),
            seed=5,
            recorder=recorder,
        )
        return sampler.run(), recorder

    run, recorder = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert run.documents_examined == 100
    # One span per executed query, exactly.
    assert sum(1 for s in recorder.spans if s.name == "query") == run.queries_run
    perf_recorder.record_benchmark("sampling_run_100_docs_traced", benchmark)
    if "sampling_run_100_docs" in perf_recorder.hot_paths:
        perf_recorder.speedup(
            "sampling_run_noop_vs_traced",
            before="sampling_run_100_docs_traced",
            after="sampling_run_100_docs",
        )


def test_perf_metric_computation(benchmark, server, perf_recorder):
    actual = server.actual_language_model()
    sampler = QueryBasedSampler(
        server,
        bootstrap=RandomFromOther(actual),
        stopping=MaxDocuments(100),
        seed=5,
    )
    learned = sampler.run().model.project(server.index.analyzer)

    def compute_metrics():
        return (
            ctf_ratio(learned, actual),
            spearman_rank_correlation(learned, actual),
        )

    ratio, spearman = benchmark(compute_metrics)
    assert 0 < ratio <= 1
    assert -1 <= spearman <= 1
    perf_recorder.record_benchmark("metric_pair_computation", benchmark)


def test_perf_measure_run_pre_pr_baseline(benchmark, server, curve_run, perf_recorder):
    run, actual = curve_run
    curve = benchmark.pedantic(
        lambda: measure_run_baseline(
            run, actual, server.index.analyzer, "wsj88", "random_olm", 4
        ),
        rounds=7,
        iterations=1,
    )
    assert len(curve.points) == 6
    perf_recorder.record_benchmark("measure_run_pre_pr_baseline", benchmark)


def test_perf_measure_run_full(benchmark, server, curve_run, perf_recorder):
    run, actual = curve_run
    curve = benchmark.pedantic(
        lambda: measure_run_full(
            run, actual, server.index.analyzer, "wsj88", "random_olm", 4
        ),
        rounds=7,
        iterations=1,
    )
    assert len(curve.points) == 6
    perf_recorder.record_benchmark("measure_run_full_reprojection", benchmark)


def test_perf_measure_run_incremental(benchmark, server, curve_run, perf_recorder):
    run, actual = curve_run
    curve = benchmark.pedantic(
        lambda: measure_run(
            run, actual, server.index.analyzer, "wsj88", "random_olm", 4
        ),
        rounds=7,
        iterations=1,
    )
    # The speedup must not come from changed results: all three
    # implementations produce the identical curve.
    args = (run, actual, server.index.analyzer, "wsj88", "random_olm", 4)
    assert curve.points == measure_run_full(*args).points
    assert curve.points == measure_run_baseline(*args).points
    perf_recorder.record_benchmark("measure_run_incremental", benchmark)
    if "measure_run_pre_pr_baseline" not in perf_recorder.hot_paths:
        return  # deselected sibling benches (-k): nothing to compare against
    speedup = perf_recorder.speedup(
        "measure_run_incremental_vs_pre_pr",
        before="measure_run_pre_pr_baseline",
        after="measure_run_incremental",
    )
    if "measure_run_full_reprojection" in perf_recorder.hot_paths:
        perf_recorder.speedup(
            "measure_run_incremental_vs_full_reprojection",
            before="measure_run_full_reprojection",
            after="measure_run_incremental",
        )
    # Loose floor so a loaded CI machine cannot flake; the recorded
    # baseline documents the real (~3.5x) margin.
    assert speedup > 1.5, f"incremental curve measurement regressed: {speedup:.2f}x"
