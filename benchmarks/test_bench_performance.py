"""Substrate performance benchmarks.

Unlike the table/figure benches (which regenerate the paper's results
once), these are conventional multi-round pytest benchmarks of the hot
paths a deployment would care about: analysis throughput, index
construction, query latency, and sampling throughput.  They exist so
performance regressions in the substrate are visible, not to reproduce
anything from the paper.
"""

from __future__ import annotations

import pytest

from repro.index import DatabaseServer, InvertedIndex, SearchEngine
from repro.lm import ctf_ratio, spearman_rank_correlation
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.synth import wsj88_like
from repro.text import Analyzer


@pytest.fixture(scope="module")
def corpus():
    return wsj88_like().build(seed=101, scale=0.05)  # 600 docs


@pytest.fixture(scope="module")
def server(corpus):
    return DatabaseServer(corpus)


@pytest.fixture(scope="module")
def frequent_terms(server):
    return [s.term for s in server.actual_language_model().top_terms(50, "ctf")]


def test_perf_analyze_documents(benchmark, corpus):
    analyzer = Analyzer.inquery_style()
    texts = [corpus[i].text for i in range(100)]

    def analyze_all():
        return sum(len(analyzer.analyze(text)) for text in texts)

    total = benchmark(analyze_all)
    assert total > 0


def test_perf_index_build(benchmark, corpus):
    index = benchmark.pedantic(
        lambda: InvertedIndex(corpus), rounds=3, iterations=1
    )
    assert index.num_documents == len(corpus)


def test_perf_single_term_query(benchmark, server, frequent_terms):
    engine = server.engine

    def query_round():
        hits = 0
        for term in frequent_terms:
            hits += len(engine.search(term, n=10))
        return hits

    hits = benchmark(query_round)
    assert hits > 0


def test_perf_multi_term_query(benchmark, server, frequent_terms):
    engine = server.engine
    queries = [
        " ".join(frequent_terms[i : i + 3]) for i in range(0, 30, 3)
    ]

    def query_round():
        return sum(len(engine.search(query, n=10)) for query in queries)

    hits = benchmark(query_round)
    assert hits > 0


def test_perf_sampling_run(benchmark, server):
    actual = server.actual_language_model()

    def one_run():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(actual),
            stopping=MaxDocuments(100),
            seed=5,
        )
        return sampler.run()

    run = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert run.documents_examined == 100


def test_perf_metric_computation(benchmark, server):
    actual = server.actual_language_model()
    sampler = QueryBasedSampler(
        server,
        bootstrap=RandomFromOther(actual),
        stopping=MaxDocuments(100),
        seed=5,
    )
    learned = sampler.run().model.project(server.index.analyzer)

    def compute_metrics():
        return (
            ctf_ratio(learned, actual),
            spearman_rank_correlation(learned, actual),
        )

    ratio, spearman = benchmark(compute_metrics)
    assert 0 < ratio <= 1
    assert -1 <= spearman <= 1
