"""Figure 4: rdiff between consecutive 50-document snapshots.

Paper reference: the average rank distance a term moves between the
model at D documents and the model at D+50 documents falls as sampling
proceeds, and does so roughly *independently of database size* — the
basis for a stopping criterion that uses only observable information
(Section 6; e.g. CACM's 50→100 rdiff was 0.012).
"""

from __future__ import annotations

from benchmarks.conftest import SEEDS, emit, shape_checks
from repro.experiments.figures import figure4_rdiff_series
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import format_series


def test_bench_figure4(benchmark, testbed):
    all_series = benchmark.pedantic(
        lambda: figure4_rdiff_series(testbed, seeds=SEEDS), rounds=1, iterations=1
    )
    emit(
        format_series(
            all_series,
            title="Figure 4: rdiff between consecutive 50-document snapshots",
        )
    )
    emit(plot_series(all_series, title="Figure 4 (plot)"))

    for name, series in all_series.items():
        values = [value for _, value in series]
        assert len(values) >= 1, f"{name}: need at least one snapshot span"
        # Small fractions of the rank span (the paper's values are ~10x
        # smaller still; see EXPERIMENTS.md on rdiff magnitudes).
        assert all(0.0 <= value < 0.2 for value in values), (name, values)
        if shape_checks(testbed) and len(values) >= 2:
            # Convergence: rdiff at the end is below rdiff at the start.
            assert values[-1] < values[0], (name, values)

    # Rough size-independence: final rdiff values of all corpora are
    # within one order of magnitude of each other.
    finals = [series[-1][1] for series in all_series.values()]
    positive = [value for value in finals if value > 0]
    if len(positive) >= 2:
        assert max(positive) / min(positive) < 10.0, finals
