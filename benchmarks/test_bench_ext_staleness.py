"""Extension Ext-9: detecting stale language models with cheap probes.

A selection service's learned models age as databases change.  This
bench measures the probe-then-refresh policy
(:mod:`repro.sampling.staleness`) under three scenarios per database:

* **unchanged** — the database is exactly as sampled;
* **grown** — the database doubled with *same-distribution* documents
  (the model is still representative; a refresh would be wasted);
* **replaced** — the database's content was swapped for a different
  collection behind the same endpoint (the model is junk).

Expected: the 50-document probe (a sixth of a full refresh) keeps the
model in the first two scenarios and triggers a refresh in the third.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.corpus import Corpus
from repro.experiments.reporting import format_table
from repro.index import DatabaseServer
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther, RefreshPolicy
from repro.synth import cacm_like, wsj88_like

STORED_SAMPLE = 200
PROBE_DOCS = 50


def _experiment(testbed):
    scale = min(testbed.scale, 0.5)
    base_profile = cacm_like()
    original = base_profile.build(seed=53, scale=scale)
    server = DatabaseServer(original)
    bootstrap = RandomFromOther(server.actual_language_model())
    stored = QueryBasedSampler(
        server,
        bootstrap=bootstrap,
        stopping=MaxDocuments(min(STORED_SAMPLE, server.num_documents // 3)),
        seed=3,
    ).run().model

    # Grown: the same profile generated again with a different seed and
    # merged — same distribution, twice the documents.
    second_half = base_profile.build(seed=54, scale=scale)
    grown_corpus = Corpus(name="cacm")
    for document in original:
        grown_corpus.add(document)
    for index, document in enumerate(second_half):
        grown_corpus.add(
            type(document)(
                doc_id=f"grown-{index:06d}",
                text=document.text,
                title=document.title,
                topic=document.topic,
            )
        )
    # Replaced: different profile behind the same name.
    replaced_corpus = Corpus(wsj88_like().build(seed=55, scale=scale * 0.5), name="cacm")

    scenarios = {
        "unchanged": server,
        "grown": DatabaseServer(grown_corpus),
        "replaced": DatabaseServer(replaced_corpus),
    }
    policy = RefreshPolicy(refresh_documents=STORED_SAMPLE)
    rows = []
    outcomes = {}
    for label, scenario_server in scenarios.items():
        scenario_bootstrap = RandomFromOther(scenario_server.actual_language_model())
        model, report, refreshed = policy.maybe_refresh(
            scenario_server, stored, bootstrap=scenario_bootstrap, seed=13
        )
        outcomes[label] = refreshed
        rows.append(
            {
                "scenario": label,
                "probe_docs": report.probe_documents,
                "rdiff": round(report.rdiff_score, 3),
                "spearman": round(report.spearman, 3),
                "refreshed": refreshed,
            }
        )
    return rows, outcomes


def test_bench_ext_staleness(benchmark, testbed):
    rows, outcomes = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-9: probe-based staleness detection"))

    assert outcomes["unchanged"] is False, rows
    assert outcomes["grown"] is False, rows
    assert outcomes["replaced"] is True, rows
