"""Serving-path performance benchmarks and their perf-regression floors.

Measures the three layers :mod:`repro.serving` adds over the plain
federated service, each against its baseline, and feeds the session's
:class:`~conftest.PerfRecorder` so ``BENCH_perf.json`` carries the
serving hot paths:

* **vectorized CORI vs the scalar selector** at 10/100/500 synthetic
  databases — the scalar path is O(databases² · terms) per query, so
  the gap widens with federation size; the acceptance floor is ≥5x at
  100 databases, asserted *after* checking both paths still produce
  identical rankings (scores within 1e-9);
* **warm vs cold selection caches** (floor: ≥10x);
* **concurrent vs serial fan-out** against 10ms latency-injected
  backends — the serial loop pays the latency per selected backend,
  the fan-out roughly once per query.

Synthetic model sets keep the selection benches index-free and fast;
the fan-out bench runs on a real (small) indexed federation.
"""

from __future__ import annotations

import random
import time
from typing import Callable

import pytest

from repro.dbselect import CoriScorer, make_selector
from repro.federation import FederatedSearchService, SearchRequest
from repro.lm import LanguageModel
from repro.serving import FederationFrontend, LatencyInjected, build_synthetic_federation

#: Scale of the indexed fan-out federation (matches the perf corpus).
PERF_SCALE = 0.05

#: Injected per-backend latency for the fan-out comparison.
BACKEND_LATENCY = 0.010


@pytest.fixture(autouse=True)
def _record_scale(perf_recorder):
    perf_recorder.scale = PERF_SCALE


def synthetic_models(
    num_databases: int, vocabulary: int = 400, terms_per_db: int = 120, seed: int = 0
) -> dict[str, LanguageModel]:
    """Random per-database language models over a shared vocabulary."""
    rng = random.Random(seed)
    terms = [f"t{i:04d}" for i in range(vocabulary)]
    models: dict[str, LanguageModel] = {}
    for i in range(num_databases):
        model = LanguageModel()
        for term in rng.sample(terms, terms_per_db):
            df = rng.randint(1, 500)
            model.add_term(term, df=df, ctf=df + rng.randint(0, 500))
        model.documents_seen = rng.randint(100, 3000)
        model.tokens_seen = rng.randint(10_000, 200_000)
        models[f"db{i:04d}"] = model
    return models


def bench_queries(seed: int, count: int = 16) -> list[str]:
    """Three-term queries over the synthetic vocabulary."""
    rng = random.Random(seed)
    return [
        " ".join(f"t{rng.randrange(400):04d}" for _ in range(3)) for _ in range(count)
    ]


def best_seconds(operation: Callable[[], object], rounds: int) -> float:
    """Minimum wall time of ``operation`` over ``rounds`` (after warm-up).

    The minimum is the regression statistic, as in
    :meth:`~conftest.PerfRecorder.record_benchmark`.
    """
    operation()  # warm-up, uncounted
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


class _StubDatabase:
    """Searchable stand-in so selection benches need no real index."""

    def run_query(self, query: str, max_docs: int = 10):
        return []


@pytest.mark.parametrize("num_databases", [10, 100, 500])
def test_perf_select_vectorized_vs_scalar(num_databases, perf_recorder):
    models = synthetic_models(num_databases, seed=num_databases)
    queries = bench_queries(seed=num_databases)
    selector = make_selector("cori")
    scorer = CoriScorer(models)

    # The speedup must not come from changed results: identical
    # rankings, scores within 1e-9, on every bench query.
    for query in queries:
        scalar = selector.rank(query, models)
        vector = scorer.rank(query)
        assert scalar.names == vector.names, query
        for left, right in zip(scalar.entries, vector.entries):
            assert abs(left.score - right.score) <= 1e-9

    rounds = 3 if num_databases >= 500 else 5
    scalar_total = best_seconds(
        lambda: [selector.rank(query, models) for query in queries], rounds
    )
    vector_total = best_seconds(
        lambda: [scorer.rank(query) for query in queries], rounds
    )
    scalar_name = f"cori_select_scalar_{num_databases}db"
    vector_name = f"cori_select_vectorized_{num_databases}db"
    perf_recorder.record(scalar_name, scalar_total / len(queries))
    perf_recorder.record(vector_name, vector_total / len(queries))
    speedup = perf_recorder.speedup(
        f"cori_vectorized_vs_scalar_{num_databases}db",
        before=scalar_name,
        after=vector_name,
    )
    if num_databases >= 100:
        # Acceptance floor; the recorded baseline documents the real
        # (~20x at 100 databases) margin.
        assert speedup >= 5.0, f"vectorized CORI regressed: {speedup:.2f}x"


def test_perf_selection_cache_warm_vs_cold(perf_recorder):
    models = synthetic_models(100, seed=7)
    queries = bench_queries(seed=7)
    service = FederatedSearchService({name: _StubDatabase() for name in models})
    service.use_models(models)

    with FederationFrontend(service) as frontend:

        def cold_pass():
            for query in queries:
                frontend.analyzed_queries.clear()
                frontend.selections.clear()
                frontend.select(query)

        def warm_pass():
            for query in queries:
                frontend.select(query)

        cold_total = best_seconds(cold_pass, rounds=5)
        warm_total = best_seconds(warm_pass, rounds=5)

    perf_recorder.record("selection_cold_cache_100db", cold_total / len(queries))
    perf_recorder.record("selection_warm_cache_100db", warm_total / len(queries))
    speedup = perf_recorder.speedup(
        "selection_warm_vs_cold_cache",
        before="selection_cold_cache_100db",
        after="selection_warm_cache_100db",
    )
    assert speedup >= 10.0, f"selection cache regressed: {speedup:.2f}x"


def test_perf_fanout_concurrent_vs_serial(perf_recorder):
    servers = build_synthetic_federation(
        num_databases=4, scale=PERF_SCALE, seed=3
    )
    slowed = {
        name: LatencyInjected(server, BACKEND_LATENCY)
        for name, server in servers.items()
    }
    models = {
        name: server.actual_language_model() for name, server in servers.items()
    }
    service = FederatedSearchService(slowed, databases_per_query=3)
    service.use_models(models)
    queries = [
        " ".join(s.term for s in model.top_terms(3, "ctf"))
        for model in models.values()
    ]

    def serial_pass():
        for query in queries:
            service.search(SearchRequest(query=query))

    serial_total = best_seconds(serial_pass, rounds=3)
    with FederationFrontend(service) as frontend:

        def concurrent_pass():
            for query in queries:
                frontend.search(SearchRequest(query=query))

        concurrent_total = best_seconds(concurrent_pass, rounds=3)

    perf_recorder.record("federated_search_serial_10ms", serial_total / len(queries))
    perf_recorder.record(
        "federated_search_concurrent_10ms", concurrent_total / len(queries)
    )
    speedup = perf_recorder.speedup(
        "fanout_concurrent_vs_serial_10ms",
        before="federated_search_serial_10ms",
        after="federated_search_concurrent_10ms",
    )
    # 3 backends x 10ms serial vs ~10ms concurrent: ~3x in theory;
    # loose floor so a loaded CI machine cannot flake.
    assert speedup > 1.5, f"concurrent fan-out regressed: {speedup:.2f}x"
