"""Extension Ext-8: shrinkage rescues small-sample selection.

Ipeirotis & Gravano (SIGMOD 2004) showed that when per-database samples
are *small*, smoothing each learned model toward a background model
improves database selection.  This bench reproduces the effect with the
union-of-samples as the background (the object the service already
owns): CORI selection accuracy R@n on an 8-database testbed, with
models learned from only ~40 documents per database, raw vs. shrunk.

Expected shape: shrunk models match or beat raw small-sample models;
the benefit shrinks as samples grow (also measured, at 120 docs).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.dbselect import evaluate_rankings, make_selector
from repro.experiments.reporting import format_table
from repro.federation import build_skewed_partition, relevance_counts, topical_queries
from repro.index import DatabaseServer
from repro.lm import shrink_all
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.text import Analyzer

NUM_DATABASES = 8
SHRINK_WEIGHT = 0.7


def _learn(servers, testbed, budget):
    canonical = Analyzer.inquery_style()
    models = {}
    for name, server in servers.items():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(testbed.actual_model("trec123")),
            stopping=MaxDocuments(min(budget, max(20, server.num_documents // 4))),
            seed=43,
            name=name,
        )
        models[name] = sampler.run().model.project(canonical, name=name)
    return models


def _experiment(testbed):
    corpus = testbed.server("wsj88").index.corpus
    parts = build_skewed_partition(corpus, num_databases=NUM_DATABASES, seed=47)
    servers = {part.name: DatabaseServer(part) for part in parts}
    queries = topical_queries(parts, max_topics=8)
    relevance = [relevance_counts(parts, query.topic) for query in queries]
    selector = make_selector("cori", analyzer=Analyzer.inquery_style())

    rows = []
    recall = {}
    for budget in (40, 120):
        raw_models = _learn(servers, testbed, budget)
        shrunk_models = shrink_all(raw_models, weight=SHRINK_WEIGHT)
        for label, models in (("raw", raw_models), ("shrunk", shrunk_models)):
            rankings = [selector.rank(query.text, models) for query in queries]
            evaluation = evaluate_rankings(
                f"{label}@{budget}", rankings, relevance, n_values=(1, 2, 4)
            )
            recall[(budget, label)] = evaluation.mean_recall
            row = evaluation.as_row()
            row["sample_docs"] = budget
            rows.append(row)
    return rows, recall


def test_bench_ext_shrinkage(benchmark, testbed):
    rows, recall = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-8: CORI selection with raw vs shrunk small-sample models"))

    # Shrinkage never hurts materially at either budget...
    for budget in (40, 120):
        assert recall[(budget, "shrunk")][2] >= recall[(budget, "raw")][2] - 0.05, recall
    # ...and bigger samples help raw models (sanity of the sweep).
    assert recall[(120, "raw")][2] >= recall[(40, "raw")][2] - 0.05, recall
