"""Extension Ext-6: full federated search with result merging.

Completes the paper's motivating pipeline: learned models drive CORI
selection, the selected databases are searched, and their per-database
scores are merged.  Compares mergers on topical precision@10 (fraction
of merged results generated from the query's topic):

* the **CORI merge** (collection-score-weighted normalisation),
* **raw-score** merging (the scale-naive baseline), and
* **round-robin** interleaving (scale-free but quality-blind).

Expected shape: the CORI merge matches or beats round-robin, and
merging from learned-model selection stays close to merging from
actual-model selection.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.dbselect.merge import CoriMerger, RawScoreMerger, RoundRobinMerger
from repro.experiments.reporting import format_table
from repro.federation import (
    FederatedSearchService,
    SearchRequest,
    build_skewed_partition,
    topical_queries,
)
from repro.index import DatabaseServer
from repro.sampling import RandomFromOther

NUM_DATABASES = 6
SEARCH_N = 10


def _precision(results, parts_by_name, topic):
    if not results:
        return 0.0
    relevant = 0
    for item in results:
        document = parts_by_name[item.database].get(item.doc_id)
        if document.topic == topic:
            relevant += 1
    return relevant / len(results)


def _experiment(testbed):
    corpus = testbed.server("wsj88").index.corpus
    parts = build_skewed_partition(corpus, num_databases=NUM_DATABASES, seed=17)
    parts_by_name = {part.name: part for part in parts}
    servers = {part.name: DatabaseServer(part) for part in parts}
    queries = topical_queries(parts, max_topics=8)

    mergers = {
        "cori_merge": CoriMerger(),
        "raw_score": RawScoreMerger(),
        "round_robin": RoundRobinMerger(),
    }
    model_sources = {
        "learned": None,  # filled by sampling below
        "actual": {name: server.actual_language_model() for name, server in servers.items()},
    }

    service = FederatedSearchService(servers, databases_per_query=3)
    service.learn_models(
        lambda name: RandomFromOther(testbed.actual_model("trec123")),
        total_documents=NUM_DATABASES * 100,
        scheduler="round_robin",
        seed=19,
    )
    model_sources["learned"] = dict(service.models)

    rows = []
    precision: dict[tuple[str, str], float] = {}
    for source_label, models in model_sources.items():
        service.use_models(models)
        for merger_label, merger in mergers.items():
            service.merger = merger
            values = []
            for query in queries:
                response = service.search(SearchRequest(query=query.text, n=SEARCH_N))
                values.append(_precision(response.results, parts_by_name, query.topic))
            mean_precision = sum(values) / len(values)
            precision[(source_label, merger_label)] = mean_precision
            rows.append(
                {
                    "models": source_label,
                    "merger": merger_label,
                    "P@10": round(mean_precision, 3),
                }
            )
    return rows, precision


def test_bench_ext_merging(benchmark, testbed):
    rows, precision = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-6: merged-result topical precision@10"))

    # The CORI merge is competitive with both baselines.
    for source in ("learned", "actual"):
        assert precision[(source, "cori_merge")] >= precision[(source, "round_robin")] - 0.05
    # Learned-model federation stays close to actual-model federation.
    assert (
        precision[("learned", "cori_merge")]
        >= precision[("actual", "cori_merge")] - 0.2
    )
    # Selection is doing real work: topical precision well above the
    # base rate of a topic in the corpus (~1/12 topics).
    assert precision[("learned", "cori_merge")] > 0.3
