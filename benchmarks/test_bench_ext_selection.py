"""Extension Ext-1: database selection with learned vs. actual models.

The paper's motivation (Sections 1-2) — learned language models exist
to drive database selection — validated end to end, reproducing the
shape of the follow-on result (Callan & Connell, TOIS 2001): CORI
rankings computed from *sampled* language models select nearly as well
as rankings computed from the *actual* models, and far better than a
topic-blind baseline.

Testbed: the WSJ-like corpus split into topically skewed (not pure)
databases via :func:`repro.federation.build_skewed_partition`; queries
are distinctive terms of each topic; a document is relevant iff it was
generated from the query's topic.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.dbselect import ReddeParameters, evaluate_rankings, make_selector
from repro.dbselect.base import finish_ranking
from repro.experiments.reporting import format_table
from repro.federation import build_skewed_partition, relevance_counts, topical_queries
from repro.index import DatabaseServer
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.sizeest import sample_resample
from repro.text import Analyzer

NUM_DATABASES = 8
SAMPLE_BUDGET = 150
NUM_QUERY_TOPICS = 8


def _experiment(testbed):
    corpus = testbed.server("wsj88").index.corpus
    parts = build_skewed_partition(corpus, num_databases=NUM_DATABASES, seed=7)
    servers = {part.name: DatabaseServer(part) for part in parts}
    actual_models = {
        name: server.actual_language_model() for name, server in servers.items()
    }
    # The selection service normalises every learned model through its
    # own canonical pipeline (stemming + stopping), per the paper's
    # "enforce consistency among language models" (Section 3).
    canonical = Analyzer.inquery_style()
    learned_models = {}
    samples = {}
    estimated_sizes = {}
    for name, server in servers.items():
        budget = min(SAMPLE_BUDGET, max(50, server.num_documents // 3))
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(testbed.actual_model("trec123")),
            stopping=MaxDocuments(budget),
            seed=11,
            name=name,
        )
        run = sampler.run()
        learned_models[name] = run.model.project(canonical, name=name)
        samples[name] = run.documents
        # ReDDE's size scaling from the observable surface only.
        estimated_sizes[name] = sample_resample(server, run.model, seed=11).estimate

    queries = topical_queries(parts, max_topics=NUM_QUERY_TOPICS)
    relevance = [relevance_counts(parts, query.topic) for query in queries]

    analyzer = Analyzer.inquery_style()
    selectors = {
        "cori_actual": (make_selector("cori", analyzer=analyzer), actual_models),
        "cori_learned": (make_selector("cori", analyzer=analyzer), learned_models),
        "bgloss_learned": (make_selector("bgloss", analyzer=analyzer), learned_models),
        "kl_learned": (make_selector("kl", analyzer=analyzer), learned_models),
    }
    evaluations = {}
    for label, (selector, models) in selectors.items():
        rankings = [selector.rank(query.text, models) for query in queries]
        evaluations[label] = evaluate_rankings(
            label, rankings, relevance, n_values=(1, 2, 4)
        )
    # ReDDE: central sample index + estimated sizes (no df/ctf models).
    redde = make_selector(
        "redde",
        ReddeParameters(top_n=50),
        samples=samples,
        estimated_sizes=estimated_sizes,
    )
    redde_rankings = [redde.rank(query.text) for query in queries]
    evaluations["redde_learned"] = evaluate_rankings(
        "redde_learned", redde_rankings, relevance, n_values=(1, 2, 4)
    )
    # Topic-blind baseline: rank databases by size, identically per query.
    size_ranking = finish_ranking(
        "size",
        {name: float(model.documents_seen) for name, model in actual_models.items()},
    )
    evaluations["by_size_baseline"] = evaluate_rankings(
        "by_size_baseline",
        [size_ranking] * len(queries),
        relevance,
        n_values=(1, 2, 4),
    )
    return evaluations


def test_bench_ext_selection(benchmark, testbed):
    evaluations = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    rows = [evaluation.as_row() for evaluation in evaluations.values()]
    emit(format_table(rows, title="Ext-1: selection accuracy (mean R@n over topic queries)"))

    r2 = {label: evaluation.mean_recall[2] for label, evaluation in evaluations.items()}
    # Learned models select nearly as well as actual models...
    assert r2["cori_learned"] >= r2["cori_actual"] - 0.2, r2
    # ReDDE (sample index + estimated sizes) is competitive too.
    assert r2["redde_learned"] >= r2["by_size_baseline"], r2
    # ...and both beat the topic-blind baseline decisively.
    assert r2["cori_actual"] > r2["by_size_baseline"], r2
    assert r2["cori_learned"] > r2["by_size_baseline"], r2
