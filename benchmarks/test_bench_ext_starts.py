"""Extension Ext-4: cooperative acquisition vs. sampling, under failure.

Makes the paper's Section 2.2 critique of the STARTS protocol
executable.  Four databases with identical honest *search* behaviour
but different protocol behaviour — honest, legacy (can't export),
uncooperative (won't), and misrepresenting (exports a forged model
inflated 10x with spam vocabulary injected).  Two acquisition policies:

* **trusting**: use the STARTS export when one is offered, sample
  otherwise;
* **sampling-only**: the paper's recommendation for open environments.

Measured: model quality (Spearman vs the true index) and contamination
(claimed df mass for vocabulary the database does not contain).  The
expected shape: trusting STARTS is perfect for honest servers and
poisoned for liars; sampling is uniformly good and never contaminated —
"language models are learned as a consequence of normal database
behavior" (Section 3).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.index import DatabaseServer
from repro.lm import spearman_rank_correlation
from repro.sampling import MaxDocuments, RandomFromOther, SamplerConfig
from repro.starts import (
    CooperativeSource,
    HonestServer,
    LegacyServer,
    MisrepresentingServer,
    SamplingSource,
    UncooperativeServer,
    acquire_language_model,
)
from repro.synth import wsj88_like

SPAM_TERMS = ("jackpot", "lottery", "miracle", "winner", "prize")
SAMPLE_BUDGET = 200


def _experiment(testbed):
    corpus = wsj88_like().build(seed=41, scale=min(testbed.scale, 0.25))
    inner = DatabaseServer(corpus)
    truth = inner.actual_language_model()
    bootstrap_model = testbed.actual_model("trec123")

    wrappers = {
        "honest": HonestServer(inner),
        "legacy": LegacyServer(inner),
        "uncooperative": UncooperativeServer(inner),
        "misrepresenting": MisrepresentingServer(
            inner, inflation=10.0, injected_terms=SPAM_TERMS
        ),
    }

    rows = []
    quality = {}
    for policy_label, trust in (("trusting", True), ("sampling_only", False)):
        for server_label, server in wrappers.items():
            sampling = SamplingSource(
                bootstrap=RandomFromOther(bootstrap_model),
                stopping=MaxDocuments(SAMPLE_BUDGET),
                config=SamplerConfig(keep_documents=False),
                seed=13,
            )
            result = acquire_language_model(
                server, sampling, CooperativeSource(), trust_exports=trust
            )
            model = result.model
            if result.method == "sampling":
                model = model.project(inner.index.analyzer)
            spearman = spearman_rank_correlation(model, truth)
            spam_df = sum(model.df(term) for term in SPAM_TERMS)
            quality[(policy_label, server_label)] = (spearman, spam_df, result.method)
            rows.append(
                {
                    "policy": policy_label,
                    "server": server_label,
                    "acquired_via": result.method,
                    "spearman_vs_truth": round(spearman, 3),
                    "claimed_docs": model.documents_seen,
                    "spam_df": spam_df,
                }
            )
    return rows, quality, truth


def test_bench_ext_starts(benchmark, testbed):
    rows, quality, truth = benchmark.pedantic(
        lambda: _experiment(testbed), rounds=1, iterations=1
    )
    emit(format_table(rows, title="Ext-4: acquisition under protocol failure modes"))

    # Trusting an honest export is exact.
    spearman, spam, method = quality[("trusting", "honest")]
    assert method == "starts" and spearman > 0.999 and spam == 0

    # Trusting a liar imports the forgery (spam vocabulary present,
    # corpus size inflated).
    _, spam, method = quality[("trusting", "misrepresenting")]
    assert method == "starts" and spam > 0

    # Sampling never contains the spam vocabulary, whatever the server.
    for server_label in ("honest", "legacy", "uncooperative", "misrepresenting"):
        spearman, spam, method = quality[("sampling_only", server_label)]
        assert method == "sampling" and spam == 0
        assert spearman > 0.4

    # Can't/won't servers are reachable only by sampling even when trusting.
    for server_label in ("legacy", "uncooperative"):
        _, _, method = quality[("trusting", server_label)]
        assert method == "sampling"
