"""Frozen pre-optimization reference implementations.

The performance-regression harness needs a stable "before" to compare
against, or speedups silently evaporate as the library's shared
primitives improve.  This module preserves, verbatim, the hot paths as
they stood before the fast-experiment-substrate work:

* ``measure_run_baseline`` — full re-projection of every snapshot plus
  metric computation with the original scalar helpers;
* ``rank_terms_baseline`` — the Python tie-run loop that
  ``repro.lm.compare.rank_terms`` replaced with vectorized rank
  assignment;
* ``total_ctf_baseline`` — the Σ-over-vocabulary sum the cached
  running total replaced.

These functions are *only* imported by the benchmarks.  They must stay
byte-for-byte faithful to the historical behaviour (the equivalence
tests in ``tests/`` pin today's implementations to the same outputs),
so do not "fix" or optimize them.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import CurvePoint, LearningCurve
from repro.lm.model import LanguageModel
from repro.sampling.result import SamplingRun
from repro.text.analyzer import Analyzer


def total_ctf_baseline(model: LanguageModel) -> int:
    """Pre-PR ``LanguageModel.total_ctf``: re-sum the whole vocabulary."""
    return sum(model._ctf.values())


def rank_terms_baseline(
    model: LanguageModel, terms: list[str], metric: str = "df"
) -> np.ndarray:
    """Pre-PR ``rank_terms`` (method="average"): Python tie-run loop."""
    getter = {
        "df": lambda m, t: m.df(t),
        "ctf": lambda m, t: m.ctf(t),
        "avg_tf": lambda m, t: m.avg_tf(t),
    }[metric]
    values = np.asarray([getter(model, term) for term in terms], dtype=np.float64)
    order = np.argsort(-values, kind="stable")
    ranks = np.empty(len(terms), dtype=np.float64)
    position = 0
    while position < len(terms):
        run_end = position
        while (
            run_end + 1 < len(terms)
            and values[order[run_end + 1]] == values[order[position]]
        ):
            run_end += 1
        shared = (position + run_end) / 2.0 + 1.0
        for i in range(position, run_end + 1):
            ranks[order[i]] = shared
        position = run_end + 1
    return ranks


def _percentage_learned_baseline(learned: LanguageModel, actual: LanguageModel) -> float:
    if len(actual) == 0:
        return 0.0
    common = sum(1 for term in learned if term in actual)
    return common / len(actual)


def _ctf_ratio_baseline(learned: LanguageModel, actual: LanguageModel) -> float:
    total = total_ctf_baseline(actual)
    if total == 0:
        return 0.0
    covered = sum(actual.ctf(term) for term in learned if term in actual)
    return covered / total


def _spearman_baseline(learned: LanguageModel, actual: LanguageModel) -> float:
    terms = sorted(learned.vocabulary & actual.vocabulary)
    n = len(terms)
    if n == 0:
        return 0.0
    if n == 1:
        return 1.0
    learned_ranks = rank_terms_baseline(learned, terms, "df")
    actual_ranks = rank_terms_baseline(actual, terms, "df")
    learned_std = learned_ranks.std()
    actual_std = actual_ranks.std()
    if learned_std == 0 or actual_std == 0:
        return 0.0
    covariance = np.mean(
        (learned_ranks - learned_ranks.mean()) * (actual_ranks - actual_ranks.mean())
    )
    return float(covariance / (learned_std * actual_std))


def measure_run_baseline(
    run: SamplingRun,
    actual: LanguageModel,
    server_analyzer: Analyzer,
    database: str,
    strategy: str,
    docs_per_query: int,
) -> LearningCurve:
    """Pre-PR ``measure_run``: re-project every snapshot from scratch."""
    points = []
    for snapshot in run.snapshots:
        projected = snapshot.model.project(server_analyzer)
        points.append(
            CurvePoint(
                documents=snapshot.documents_examined,
                queries=snapshot.queries_run,
                percentage_learned=_percentage_learned_baseline(projected, actual),
                ctf_ratio=_ctf_ratio_baseline(projected, actual),
                spearman=_spearman_baseline(projected, actual),
            )
        )
    return LearningCurve(
        database=database,
        strategy=strategy,
        docs_per_query=docs_per_query,
        points=tuple(points),
    )
