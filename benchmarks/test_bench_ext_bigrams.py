"""Extension Ext-7: can phrase (bigram) language models be learned too?

The paper's Section 2.1 mentions phrase information as the natural next
step beyond unigram models, and Section 7 argues sampling enables it —
the service holds actual documents, "a set of several hundred documents
from which to mine frequent phrases".  This bench runs that experiment:
from one baseline sampling run, build unigram *and* bigram learned
models at each 50-document prefix and compare their ctf-ratio learning
curves against the corresponding actual models.

Expected shape: bigram coverage grows with the same rising-then-
leveling profile but converges **slower and lower** than unigram
coverage at every budget — bigram vocabulary is far larger and far
more hapax-heavy, so the same sample covers less of its mass.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_series
from repro.lm import ctf_ratio
from repro.lm.ngrams import bigram_model_from_documents
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.text import Analyzer

BUDGET = 300
SNAPSHOT = 50


def _experiment(testbed):
    server = testbed.server("wsj88")
    corpus = server.index.corpus
    analyzer = Analyzer.inquery_style()
    budget = min(BUDGET, testbed.document_budget("wsj88"))

    actual_unigrams = server.actual_language_model()
    actual_bigrams = bigram_model_from_documents(corpus, analyzer, name="wsj88-bigrams")

    sampler = QueryBasedSampler(
        server,
        bootstrap=RandomFromOther(testbed.actual_model("trec123")),
        stopping=MaxDocuments(budget),
        seed=37,
    )
    run = sampler.run()

    series: dict[str, list[tuple[int, float]]] = {"unigram": [], "bigram": []}
    for cut in range(SNAPSHOT, budget + 1, SNAPSHOT):
        prefix = run.documents[:cut]
        learned_unigrams = run.snapshot_at(cut).model.project(analyzer)
        learned_bigrams = bigram_model_from_documents(prefix, analyzer)
        series["unigram"].append((cut, ctf_ratio(learned_unigrams, actual_unigrams)))
        series["bigram"].append((cut, ctf_ratio(learned_bigrams, actual_bigrams)))
    vocab_sizes = {
        "unigram_vocabulary": len(actual_unigrams),
        "bigram_vocabulary": len(actual_bigrams),
    }
    return series, vocab_sizes


def test_bench_ext_bigrams(benchmark, testbed):
    series, vocab_sizes = benchmark.pedantic(
        lambda: _experiment(testbed), rounds=1, iterations=1
    )
    emit(
        format_series(
            series,
            title="Ext-7: unigram vs bigram ctf-ratio learning curves (wsj88)",
        )
    )
    emit(
        f"Actual vocabulary sizes: {vocab_sizes['unigram_vocabulary']:,} unigrams, "
        f"{vocab_sizes['bigram_vocabulary']:,} bigrams"
    )

    unigram = dict(series["unigram"])
    bigram = dict(series["bigram"])
    # Bigram models are learnable — real, growing coverage...
    bigram_values = [value for _, value in series["bigram"]]
    assert bigram_values[-1] > 0.1
    assert bigram_values[-1] > bigram_values[0]
    # ...but converge below unigram coverage at every budget.
    for cut in unigram:
        assert bigram[cut] < unigram[cut], (cut, bigram[cut], unigram[cut])
    # The gap reflects the vocabulary-size explosion.
    assert vocab_sizes["bigram_vocabulary"] > 5 * vocab_sizes["unigram_vocabulary"]
