"""Figures 3a and 3b: query selection strategies (WSJ88-like corpus).

Paper reference: on WSJ88 with 4 docs/query, *random* selection from
the learned language model beats selection of high-frequency terms
(df/ctf/avg-tf) on both ctf ratio and Spearman; random selection from a
complete *other* language model (TREC-123's) learns fastest per
document examined but needs about twice the queries (Figure 3, Table 3).

Reproduction note (EXPERIMENTS.md): on the synthetic corpora the
frequency-based strategies end statistically *tied* with random on
model quality rather than clearly behind it — the topical co-occurrence
texture of real newspaper prose that penalised them is only partially
captured by the generator's shared_jitter/boost_alignment knobs.  The
reproduced claims are: random is never dominated on quality (the
paper's actionable surprise — clever frequency selection buys nothing),
frequency strategies pay a large duplicate-retrieval query premium,
and the olm strategy learns fastest per document while paying the
largest query premium of all.
"""

from __future__ import annotations

from benchmarks.conftest import emit, shape_checks
from repro.experiments.reporting import curve_series, format_series


def _final(series):
    return {label: points[-1][1] for label, points in series.items()}


def test_bench_figure3a_ctf_ratio(benchmark, fig3_results, testbed):
    curves = {label: curve for label, (curve, _) in fig3_results.items()}
    series = benchmark.pedantic(
        lambda: curve_series(curves, "ctf_ratio"), rounds=1, iterations=1
    )
    emit(
        format_series(
            series, title="Figure 3a: ctf ratio by query selection strategy (wsj88)"
        )
    )
    final = _final(series)
    if shape_checks(testbed):
        # Random is never dominated by frequency-based selection.
        assert final["random_llm"] >= final["df_llm"] - 0.03, final
        assert final["random_llm"] >= final["ctf_llm"] - 0.03, final
        assert final["random_llm"] >= final["avg_tf_llm"] - 0.03, final
        # The olm strategy learns fastest per document examined.
        assert final["random_olm"] >= final["random_llm"] - 0.05, final


def test_bench_figure3b_spearman(benchmark, fig3_results, testbed):
    curves = {label: curve for label, (curve, _) in fig3_results.items()}
    series = benchmark.pedantic(
        lambda: curve_series(curves, "spearman"), rounds=1, iterations=1
    )
    emit(
        format_series(
            series, title="Figure 3b: Spearman correlation by strategy (wsj88)"
        )
    )
    final = _final(series)
    if shape_checks(testbed):
        assert final["random_llm"] >= final["df_llm"] - 0.05, final
        assert final["random_llm"] >= final["ctf_llm"] - 0.05, final
