"""Table 2: effect of the number of documents examined per query.

Paper reference: for N ∈ {1,2,4,6,8,10} docs/query, the documents
needed to reach 80% ctf ratio are broadly flat — "it appears to make
little difference whether 1, 2, or 4 documents are examined per query"
— but the large heterogeneous database (TREC-123) pays "a significant
cost to examining too many documents per query" because the samples
are less diverse.
"""

from __future__ import annotations

from benchmarks.conftest import SEEDS, emit
from repro.experiments.reporting import format_table
from repro.experiments.tables import table2_docs_per_query

DOCS_PER_QUERY = (1, 2, 4, 6, 8, 10)


def test_bench_table2(benchmark, testbed):
    rows = benchmark.pedantic(
        lambda: table2_docs_per_query(
            testbed, docs_per_query_values=DOCS_PER_QUERY, seeds=SEEDS
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            rows,
            title="Table 2: documents examined to reach ctf ratio 80% (and SRCC there)",
        )
    )

    by_n = {row["docs_per_query"]: row for row in rows}
    # Small N values behave similarly on every corpus (within one
    # snapshot interval of each other), the paper's headline claim.
    for corpus in ("cacm", "wsj88", "trec123"):
        reached = [by_n[n][f"{corpus}_docs"] for n in (1, 2, 4)]
        reached = [value for value in reached if value is not None]
        assert reached, f"{corpus}: ctf target never reached for small N"
        assert max(reached) - min(reached) <= 100, (corpus, reached)

    # Every configuration that converged did so within the paper-scale
    # budget of a few hundred documents.
    for row in rows:
        for corpus in ("cacm", "wsj88", "trec123"):
            value = row[f"{corpus}_docs"]
            if value is not None:
                assert value <= 500
