"""Extension Ext-10: sampling convergence over an unreliable transport.

The paper assumes every query against the remote database comes back;
real search interfaces time out and throw transient errors.  This bench
samples a WSJ-like database through the fault-injection wrapper
(:class:`~repro.sampling.transport.UnreliableServer`) at 0% / 10% / 30%
transient-fault rates, with the retrying client
(:class:`~repro.sampling.transport.ResilientDatabase`) in between.

Expected: retries fully absorb the faults — the final ctf ratio matches
the fault-free run (±0.02) because the *sampled document stream* is
unchanged — while transport cost (attempts, retries, simulated backoff
seconds) grows with the fault rate.  A no-retry run at 30% faults must
still finish, reporting its abandoned queries as failed instead of
crashing.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.index import DatabaseServer
from repro.lm.compare import ctf_ratio
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    ResilientDatabase,
    RetryPolicy,
    UnreliableServer,
)
from repro.synth import wsj88_like

FAULT_RATES = (0.0, 0.1, 0.3)
SAMPLE_DOCS = 300


def _sample_through_faults(corpus, budget, fault_rate, policy, seed=5):
    server = DatabaseServer(corpus)
    database = ResilientDatabase(
        UnreliableServer(server, transient_rate=fault_rate, seed=17),
        policy=policy,
        seed=17,
    )
    run = QueryBasedSampler(
        database,
        bootstrap=RandomFromOther(server.actual_language_model()),
        stopping=MaxDocuments(budget),
        seed=seed,
    ).run()
    projected = run.model.project(server.index.analyzer)
    ratio = ctf_ratio(projected, server.actual_language_model())
    return run, database.metrics, ratio


def _experiment(testbed):
    scale = min(testbed.scale, 0.5)
    corpus = wsj88_like().build(seed=71, scale=scale)
    budget = min(SAMPLE_DOCS, len(corpus) // 3)

    retry = RetryPolicy(max_attempts=6)
    rows = []
    ratios = {}
    metrics_by_rate = {}
    for rate in FAULT_RATES:
        run, metrics, ratio = _sample_through_faults(corpus, budget, rate, retry)
        ratios[rate] = ratio
        metrics_by_rate[rate] = metrics
        rows.append(
            {
                "fault_rate": rate,
                "retries": "on",
                "docs": run.documents_examined,
                "queries": run.queries_run,
                "attempts": metrics.attempts,
                "retries_n": metrics.retries,
                "abandoned": metrics.queries_abandoned,
                "backoff_s": round(metrics.total_backoff, 1),
                "ctf_ratio": round(ratio, 4),
            }
        )

    # Retries disabled at the highest fault rate: the run must still
    # finish, with abandoned queries reported as failed.
    no_retry_run, no_retry_metrics, no_retry_ratio = _sample_through_faults(
        corpus, budget, max(FAULT_RATES), RetryPolicy(max_attempts=1)
    )
    rows.append(
        {
            "fault_rate": max(FAULT_RATES),
            "retries": "off",
            "docs": no_retry_run.documents_examined,
            "queries": no_retry_run.queries_run,
            "attempts": no_retry_metrics.attempts,
            "retries_n": 0,
            "abandoned": no_retry_metrics.queries_abandoned,
            "backoff_s": 0.0,
            "ctf_ratio": round(no_retry_ratio, 4),
        }
    )

    # Determinism spot-check: an identical degraded run reproduces both
    # the learned model and the transport metrics exactly.
    repeat_run, repeat_metrics, repeat_ratio = _sample_through_faults(
        corpus, budget, 0.3, retry
    )
    deterministic = (
        repeat_ratio == ratios[0.3]
        and repeat_metrics.attempts == metrics_by_rate[0.3].attempts
        and repeat_metrics.total_backoff == metrics_by_rate[0.3].total_backoff
    )
    return rows, ratios, metrics_by_rate, no_retry_run, deterministic


def test_bench_ext_faults(benchmark, testbed):
    rows, ratios, metrics_by_rate, no_retry_run, deterministic = benchmark.pedantic(
        lambda: _experiment(testbed), rounds=1, iterations=1
    )
    emit(format_table(rows, title="Ext-10: sampling over an unreliable transport"))

    budget = rows[0]["docs"]
    # Convergence preserved: every retried run reaches the full budget
    # and lands on the fault-free ctf ratio within ±0.02.
    for rate in FAULT_RATES:
        row = next(r for r in rows if r["fault_rate"] == rate and r["retries"] == "on")
        assert row["docs"] == budget, rows
        assert abs(ratios[rate] - ratios[0.0]) <= 0.02, rows

    # Query cost grows with the fault rate: retries happen and the
    # database sees more attempts than the sampler issued queries.
    assert metrics_by_rate[0.3].retries > metrics_by_rate[0.1].retries > 0, rows
    assert metrics_by_rate[0.3].attempts > metrics_by_rate[0.3].queries, rows
    assert metrics_by_rate[0.3].total_backoff > 0, rows
    assert metrics_by_rate[0.0].retries == 0, rows

    # Degraded runs are exactly reproducible for a fixed seed.
    assert deterministic, rows

    # Without retries the run still finishes and reports its abandoned
    # queries as failed — the sampler never crashes.
    no_retry_row = rows[-1]
    assert no_retry_row["abandoned"] > 0, rows
    assert no_retry_run.failed_queries >= no_retry_run.abandoned_queries > 0
    assert no_retry_run.documents_examined == budget, rows
