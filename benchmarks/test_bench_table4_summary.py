"""Table 4: summarizing database contents by sampling.

Paper reference: sampling the Microsoft Customer Support database (25
documents per query) and ranking the learned model's non-stopword terms
shows the database is "about" Microsoft software; the avg-tf ranking is
the most informative, surfacing product words like excel, foxpro,
microsoft, nt, access, and windows near the top.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.tables import table4_summary
from repro.summarize import format_summary_grid
from repro.synth.profiles import MSSUPPORT_DOMAIN_TERMS


def test_bench_table4(benchmark, testbed):
    summaries = benchmark.pedantic(
        lambda: table4_summary(testbed, k=50, docs_per_query=25),
        rounds=1,
        iterations=1,
    )
    emit(format_summary_grid(summaries["avg_tf"], columns=5))

    domain = set(MSSUPPORT_DOMAIN_TERMS)
    hits_by_ranking = {
        rank_by: len(domain & set(summary.words))
        for rank_by, summary in summaries.items()
    }
    emit(
        "Product terms in the top 50, by ranking metric: "
        + ", ".join(f"{k}={v}" for k, v in sorted(hits_by_ranking.items()))
    )

    # All three rankings reveal the database's subject...
    assert all(hits >= 5 for hits in hits_by_ranking.values()), hits_by_ranking
    # ...and the avg-tf ranking is informative: most of its top terms
    # are content words, with many recognizable product terms.
    assert hits_by_ranking["avg_tf"] >= 10, hits_by_ranking
