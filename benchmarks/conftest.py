"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it.  The corpora, indexes, and expensive multi-run experiments
are computed once per session and shared.

Scale: benchmarks honour ``REPRO_SCALE`` (default 1.0 — the profile
sizes of DESIGN.md).  Set e.g. ``REPRO_SCALE=0.1`` for a fast smoke
pass; the shapes survive scaling, only absolute document counts move.

Seeds: runs average over ``SEEDS`` (3 seeds) as a light version of the
paper's repeated trials.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure1_and_2_curves, figure3_strategy_curves
from repro.experiments.testbed import Testbed

#: Seeds averaged by the multi-run experiments.
SEEDS = (0, 1, 2)


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    return Testbed(seed=0)


@pytest.fixture(scope="session")
def fig12_curves(testbed):
    """Baseline curves shared by Figure 1a, 1b, and 2."""
    return figure1_and_2_curves(testbed, seeds=SEEDS)


@pytest.fixture(scope="session")
def fig3_results(testbed):
    """Strategy curves shared by Figure 3a, 3b, and Table 3."""
    return figure3_strategy_curves(testbed, seeds=SEEDS)


def shape_checks(testbed: Testbed) -> bool:
    """Whether paper-shape assertions apply.

    The expected orderings and crossovers are calibrated for scale ≥
    0.5; below that, corpora are so small that sampling covers large
    fractions of each database and the paper's regimes blur.  Benches
    still *print* everything at any scale.
    """
    return testbed.scale >= 0.5


def emit(text: str) -> None:
    """Print a regenerated table/figure, framed for easy grepping."""
    print()
    print(text)
    print()
